//! File I/O round trips: mining results are invariant under
//! serialization to the timed format and back, and FIMI-style files can
//! be segmented and mined.

use cyclic_association_rules::datagen::{generate_cyclic, CyclicConfig, QuestConfig};
use cyclic_association_rules::itemset::io::{
    read_fimi, read_timed, segment_evenly, write_fimi, write_timed,
};
use cyclic_association_rules::itemset::ItemSet;
use cyclic_association_rules::{Algorithm, CyclicRuleMiner, MiningConfig};

fn small_data() -> cyclic_association_rules::itemset::SegmentedDb {
    let config = CyclicConfig {
        quest: QuestConfig::default().with_num_items(80),
        num_units: 12,
        transactions_per_unit: 100,
        num_cyclic_patterns: 3,
        cyclic_pattern_len: 2,
        cycle_length_range: (2, 4),
        boost: 0.9,
        max_planted_per_transaction: 2,
    };
    generate_cyclic(&config, 99).db
}

fn config() -> MiningConfig {
    MiningConfig::builder()
        .min_support_fraction(0.3)
        .min_confidence(0.5)
        .cycle_bounds(2, 4)
        .build()
        .unwrap()
}

#[test]
fn mining_is_invariant_under_timed_roundtrip() {
    let db = small_data();
    let mut buf = Vec::new();
    write_timed(&mut buf, &db).unwrap();
    let back = read_timed(&buf[..]).unwrap();
    assert_eq!(db.num_transactions(), back.num_transactions());

    let miner = CyclicRuleMiner::new(config(), Algorithm::interleaved());
    let original = miner.mine(&db).unwrap();
    let roundtripped = miner.mine(&back).unwrap();
    assert_eq!(original.rules, roundtripped.rules);
}

#[test]
fn fimi_files_can_be_segmented_and_mined() {
    // Write a flat FIMI file whose order encodes time (blocks of 50).
    let mut flat: Vec<ItemSet> = Vec::new();
    for u in 0..8 {
        for _ in 0..50 {
            if u % 2 == 0 {
                flat.push(ItemSet::from_ids([1, 2]));
            } else {
                flat.push(ItemSet::from_ids([3]));
            }
        }
    }
    let mut buf = Vec::new();
    write_fimi(&mut buf, &flat).unwrap();
    let read_back = read_fimi(&buf[..]).unwrap();
    assert_eq!(read_back.len(), 400);

    let db = segment_evenly(read_back, 8);
    assert_eq!(db.num_units(), 8);
    let outcome =
        CyclicRuleMiner::new(config(), Algorithm::interleaved()).mine(&db).unwrap();
    assert!(
        outcome.rules.iter().any(|r| r.rule.to_string() == "{1} => {2}"
            && r.cycles.iter().any(|c| (c.length(), c.offset()) == (2, 0))),
        "{:?}",
        outcome.rules
    );
}

#[test]
fn malformed_input_is_rejected_not_mangled() {
    assert!(read_timed(&b"0 | 1 2\nbroken line\n"[..]).is_err());
    assert!(read_timed(&b"x | 1\n"[..]).is_err());
    assert!(read_fimi(&b"1 2\n3 four\n"[..]).is_err());
    // Comments and blanks are fine.
    let db = read_timed(&b"# comment\n\n0 | 1\n"[..]).unwrap();
    assert_eq!(db.num_transactions(), 1);
}
