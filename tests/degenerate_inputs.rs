//! Failure-mode and boundary-condition integration tests: the miners
//! must behave predictably on degenerate databases.

use cyclic_association_rules::itemset::{ItemSet, SegmentedDb};
use cyclic_association_rules::{
    Algorithm, ConfigError, CyclicRuleMiner, InterleavedOptions, MiningConfig,
};

fn config(l_min: u32, l_max: u32) -> MiningConfig {
    MiningConfig::builder()
        .min_support_fraction(0.5)
        .min_confidence(0.5)
        .cycle_bounds(l_min, l_max)
        .build()
        .unwrap()
}

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Sequential,
        Algorithm::Interleaved(InterleavedOptions::all()),
        Algorithm::Interleaved(InterleavedOptions::none()),
    ]
}

#[test]
fn zero_units_is_a_config_error() {
    let db = SegmentedDb::with_units(0);
    for algorithm in all_algorithms() {
        let err = CyclicRuleMiner::new(config(1, 1), algorithm).mine(&db).unwrap_err();
        assert_eq!(err, ConfigError::EmptyDatabase);
    }
}

#[test]
fn all_empty_units_yield_no_rules() {
    let db = SegmentedDb::with_units(6);
    for algorithm in all_algorithms() {
        let outcome = CyclicRuleMiner::new(config(2, 3), algorithm).mine(&db).unwrap();
        assert!(outcome.rules.is_empty());
    }
}

#[test]
fn single_unit_with_length_one_cycles() {
    let db = SegmentedDb::from_unit_itemsets(vec![vec![ItemSet::from_ids([1, 2]); 4]]);
    for algorithm in all_algorithms() {
        let outcome = CyclicRuleMiner::new(config(1, 1), algorithm).mine(&db).unwrap();
        // Rules hold in the only unit → cycle (1,0).
        assert_eq!(outcome.rules.len(), 2, "{algorithm:?}");
        for r in &outcome.rules {
            assert_eq!(
                r.cycles.iter().map(|c| (c.length(), c.offset())).collect::<Vec<_>>(),
                vec![(1, 0)]
            );
        }
    }
}

#[test]
fn identical_units_give_every_offset() {
    let db = SegmentedDb::from_unit_itemsets(vec![vec![ItemSet::from_ids([5, 6]); 3]; 6]);
    for algorithm in all_algorithms() {
        let outcome = CyclicRuleMiner::new(config(2, 3), algorithm).mine(&db).unwrap();
        let r = &outcome.rules[0];
        // Rule holds everywhere: every (l, o) within bounds is a cycle
        // and none is a multiple of another within [2,3].
        assert_eq!(r.cycles.len(), 5, "{algorithm:?}: {:?}", r.cycles);
    }
}

#[test]
fn transactions_with_no_pairs_give_no_rules() {
    // Singleton transactions can make items large but never a 2-itemset.
    let db = SegmentedDb::from_unit_itemsets(vec![
        vec![ItemSet::from_ids([1]), ItemSet::from_ids([2])],
        vec![ItemSet::from_ids([1]), ItemSet::from_ids([2])],
    ]);
    for algorithm in all_algorithms() {
        let outcome = CyclicRuleMiner::new(config(1, 2), algorithm).mine(&db).unwrap();
        assert!(outcome.rules.is_empty(), "{algorithm:?}");
    }
}

#[test]
fn empty_transactions_are_harmless() {
    let db = SegmentedDb::from_unit_itemsets(vec![
        vec![ItemSet::empty(), ItemSet::from_ids([1, 2]), ItemSet::from_ids([1, 2])],
        vec![ItemSet::empty(), ItemSet::from_ids([1, 2]), ItemSet::from_ids([1, 2])],
    ]);
    for algorithm in all_algorithms() {
        let outcome = CyclicRuleMiner::new(config(1, 2), algorithm).mine(&db).unwrap();
        assert!(
            outcome.rules.iter().any(|r| r.rule.to_string() == "{1} => {2}"),
            "{algorithm:?}"
        );
    }
}

#[test]
fn min_confidence_one_requires_perfect_rules() {
    let cfg = MiningConfig::builder()
        .min_support_fraction(0.25)
        .min_confidence(1.0)
        .cycle_bounds(1, 2)
        .build()
        .unwrap();
    // {1,2} twice and {1} twice per unit: conf({1}=>{2}) = 0.5, while
    // conf({2}=>{1}) = 1.
    let unit = vec![
        ItemSet::from_ids([1, 2]),
        ItemSet::from_ids([1, 2]),
        ItemSet::from_ids([1]),
        ItemSet::from_ids([1]),
    ];
    let db = SegmentedDb::from_unit_itemsets(vec![unit.clone(), unit]);
    for algorithm in all_algorithms() {
        let outcome = CyclicRuleMiner::new(cfg, algorithm).mine(&db).unwrap();
        let names: Vec<String> =
            outcome.rules.iter().map(|r| r.rule.to_string()).collect();
        assert!(names.contains(&"{2} => {1}".to_string()), "{algorithm:?}: {names:?}");
        assert!(!names.contains(&"{1} => {2}".to_string()), "{algorithm:?}: {names:?}");
    }
}

#[test]
fn support_count_threshold_is_per_unit() {
    // Units of different sizes: absolute count thresholds apply as-is in
    // each unit regardless of unit size.
    let cfg = MiningConfig::builder()
        .min_support_count(2)
        .min_confidence(0.5)
        .cycle_bounds(1, 2)
        .build()
        .unwrap();
    let db = SegmentedDb::from_unit_itemsets(vec![
        vec![ItemSet::from_ids([1, 2]); 2], // count 2 → large
        vec![ItemSet::from_ids([1, 2]); 1], // count 1 → small
        vec![ItemSet::from_ids([1, 2]); 5],
        vec![ItemSet::from_ids([1, 2]); 1],
    ]);
    for algorithm in all_algorithms() {
        let outcome = CyclicRuleMiner::new(cfg, algorithm).mine(&db).unwrap();
        let r = outcome
            .rules
            .iter()
            .find(|r| r.rule.to_string() == "{1} => {2}")
            .unwrap_or_else(|| panic!("{algorithm:?} missing rule"));
        assert_eq!(
            r.cycles.iter().map(|c| (c.length(), c.offset())).collect::<Vec<_>>(),
            vec![(2, 0)],
            "{algorithm:?}"
        );
    }
}

#[test]
fn max_itemset_size_one_yields_no_rules() {
    let db = SegmentedDb::from_unit_itemsets(vec![vec![ItemSet::from_ids([1, 2]); 3]; 2]);
    let mut cfg = config(1, 2);
    cfg.max_itemset_size = Some(1);
    for algorithm in all_algorithms() {
        let outcome = CyclicRuleMiner::new(cfg, algorithm).mine(&db).unwrap();
        assert!(outcome.rules.is_empty(), "{algorithm:?}");
    }
}
