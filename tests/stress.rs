//! Moderate-scale stress tests: the equivalence and recovery guarantees
//! at a scale closer to the benchmark workloads (a few seconds, release
//! or debug).

use cyclic_association_rules::datagen::{generate_cyclic, CyclicConfig, QuestConfig};
use cyclic_association_rules::{
    Algorithm, CyclicRuleMiner, InterleavedOptions, MiningConfig,
};

fn big_workload(seed: u64) -> cyclic_association_rules::itemset::SegmentedDb {
    generate_cyclic(
        &CyclicConfig {
            quest: QuestConfig::default().with_num_items(300),
            num_units: 96,
            transactions_per_unit: 120,
            num_cyclic_patterns: 12,
            cyclic_pattern_len: 2,
            cycle_length_range: (2, 10),
            boost: 0.8,
            max_planted_per_transaction: 2,
        },
        seed,
    )
    .db
}

#[test]
fn equivalence_holds_at_scale() {
    let db = big_workload(404);
    let config = MiningConfig::builder()
        .min_support_fraction(0.1)
        .min_confidence(0.6)
        .cycle_bounds(2, 12)
        .build()
        .unwrap();
    let seq = CyclicRuleMiner::new(config, Algorithm::Sequential).mine(&db).unwrap();
    let int = CyclicRuleMiner::new(config, Algorithm::interleaved()).mine(&db).unwrap();
    assert_eq!(seq.rules, int.rules);
    assert!(!seq.rules.is_empty());
    // The headline claim at this scale: the optimizations save most of
    // the support computations.
    let unopt =
        CyclicRuleMiner::new(config, Algorithm::Interleaved(InterleavedOptions::none()))
            .mine(&db)
            .unwrap();
    assert_eq!(unopt.rules, int.rules);
    assert!(
        int.stats.support_computations * 2 < unopt.stats.support_computations,
        "expected >2x work reduction: {} vs {}",
        int.stats.support_computations,
        unopt.stats.support_computations
    );
}

#[test]
fn deep_itemsets_mine_consistently() {
    // Force multi-level lattices: one strong 4-item pattern alternating
    // with quiet units, over background noise.
    use cyclic_association_rules::itemset::{ItemSet, SegmentedDb};
    let mut units = Vec::new();
    for u in 0..24usize {
        let mut unit = Vec::new();
        for t in 0..60usize {
            if u % 3 == 0 && t % 2 == 0 {
                unit.push(ItemSet::from_ids([1, 2, 3, 4]));
            } else {
                unit.push(ItemSet::from_ids([(10 + (t % 7)) as u32]));
            }
        }
        units.push(unit);
    }
    let db = SegmentedDb::from_unit_itemsets(units);
    let config = MiningConfig::builder()
        .min_support_fraction(0.3)
        .min_confidence(0.6)
        .cycle_bounds(2, 6)
        .build()
        .unwrap();
    let seq = CyclicRuleMiner::new(config, Algorithm::Sequential).mine(&db).unwrap();
    let int = CyclicRuleMiner::new(config, Algorithm::interleaved()).mine(&db).unwrap();
    assert_eq!(seq.rules, int.rules);
    // The 4-itemset yields rules with up to 3-item sides, all on (3,0).
    let deep = seq
        .rules
        .iter()
        .find(|r| r.rule.antecedent.len() + r.rule.consequent.len() == 4)
        .expect("4-item rules must surface");
    assert!(deep.cycles.iter().any(|c| (c.length(), c.offset()) == (3, 0)));
    // Every subset-split of {1,2,3,4} passes confidence 1 here: 2^4 - 2
    // = 14 rules from the quad itself.
    let quad_rules = seq
        .rules
        .iter()
        .filter(|r| r.rule.antecedent.len() + r.rule.consequent.len() == 4)
        .count();
    assert_eq!(quad_rules, 14);
}
