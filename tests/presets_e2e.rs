//! End-to-end over the canonical-shape presets: T10/T40/Retail analogues
//! segment, mine, and keep the algorithm-equivalence guarantee.

use cyclic_association_rules::datagen::presets::{retail_like, t10i4_like, t40i10_like};
use cyclic_association_rules::datagen::{generate_cyclic, CyclicConfig};
use cyclic_association_rules::{Algorithm, CyclicRuleMiner, MiningConfig};

fn mine_both(config: &CyclicConfig, seed: u64, min_support: f64) -> (usize, usize) {
    let data = generate_cyclic(config, seed);
    let mining = MiningConfig::builder()
        .min_support_fraction(min_support)
        .min_confidence(0.6)
        .cycle_bounds(2, config.cycle_length_range.1)
        .max_itemset_size(4)
        .build()
        .unwrap();
    let seq = CyclicRuleMiner::new(mining, Algorithm::Sequential).mine(&data.db).unwrap();
    let int =
        CyclicRuleMiner::new(mining, Algorithm::interleaved()).mine(&data.db).unwrap();
    assert_eq!(seq.rules, int.rules);
    (data.db.num_transactions(), seq.rules.len())
}

#[test]
fn t10i4_preset_mines_consistently() {
    // Scale divisor 50 → 2000 transactions over 8 units.
    let (transactions, rules) = mine_both(&t10i4_like(8, 50), 10, 0.1);
    assert_eq!(transactions, 2000);
    assert!(rules > 0, "planted cycles must surface");
}

#[test]
fn t40i10_preset_mines_consistently() {
    // Dense transactions: higher threshold keeps the lattice sane.
    let (transactions, rules) = mine_both(&t40i10_like(8, 100), 11, 0.3);
    assert_eq!(transactions, 1000);
    // Dense background with a high threshold may or may not yield rules;
    // the equivalence assertion inside mine_both is the real check.
    let _ = rules;
}

#[test]
fn retail_preset_mines_consistently() {
    let (transactions, rules) = mine_both(&retail_like(8, 50), 12, 0.08);
    assert_eq!(transactions, 1760);
    assert!(rules > 0);
}
