//! End-to-end integration: synthetic data with planted cyclic patterns →
//! both miners → identical results that include the planted structure.

use cyclic_association_rules::datagen::{generate_cyclic, CyclicConfig, QuestConfig};
use cyclic_association_rules::itemset::ItemSet;
use cyclic_association_rules::{
    Algorithm, CyclicRuleMiner, InterleavedOptions, MiningConfig,
};

fn workload(
    seed: u64,
) -> (cyclic_association_rules::itemset::SegmentedDb, Vec<car_datagen::PlantedPattern>) {
    let config = CyclicConfig {
        quest: QuestConfig::default().with_num_items(200),
        num_units: 24,
        transactions_per_unit: 300,
        num_cyclic_patterns: 5,
        cyclic_pattern_len: 2,
        cycle_length_range: (2, 6),
        boost: 0.85,
        max_planted_per_transaction: 2,
    };
    let data = generate_cyclic(&config, seed);
    (data.db, data.planted)
}

fn mining_config() -> MiningConfig {
    // On-cycle support of a planted pattern is boost * min(1, 2/active)
    // (offers are capped at 2 per transaction), i.e. >= 0.34 even when
    // all five schedules collide in one unit; 0.2 leaves a wide margin.
    MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(0.5)
        .cycle_bounds(2, 8)
        .build()
        .expect("valid config")
}

#[test]
fn sequential_and_interleaved_agree_on_generated_data() {
    for seed in [1u64, 2, 3] {
        let (db, _) = workload(seed);
        let config = mining_config();
        let seq = CyclicRuleMiner::new(config, Algorithm::Sequential).mine(&db).unwrap();
        for opts in [
            InterleavedOptions::all(),
            InterleavedOptions::none(),
            InterleavedOptions::all().without_skipping(),
        ] {
            let int = CyclicRuleMiner::new(config, Algorithm::Interleaved(opts))
                .mine(&db)
                .unwrap();
            assert_eq!(seq.rules, int.rules, "seed {seed} opts {opts:?}");
        }
        assert!(!seq.rules.is_empty(), "seed {seed}: planted cycles must yield rules");
    }
}

#[test]
fn planted_patterns_are_recovered() {
    let (db, planted) = workload(11);
    let outcome = CyclicRuleMiner::new(mining_config(), Algorithm::interleaved())
        .mine(&db)
        .unwrap();
    for p in &planted {
        let items: Vec<_> = p.items.iter().collect();
        let a = ItemSet::single(items[0]);
        let b = ItemSet::single(items[1]);
        // The rule {a} => {b} must exist with a cycle consistent with the
        // planted schedule: either exactly (length, offset), or a divisor
        // cycle covering it (e.g. the pattern drifted into holding in
        // more units than planted).
        let found = outcome.rules.iter().any(|r| {
            r.rule.antecedent == a
                && r.rule.consequent == b
                && r.cycles.iter().any(|c| {
                    (c.length() == p.length && c.offset() == p.offset)
                        || (p.length % c.length() == 0
                            && p.offset % c.length() == c.offset())
                })
        });
        assert!(
            found,
            "planted {} cycle ({},{}) not recovered; rules: {:?}",
            p.items,
            p.length,
            p.offset,
            outcome.rules.iter().filter(|r| r.rule.antecedent == a).collect::<Vec<_>>()
        );
    }
}

#[test]
fn interleaved_does_less_work_on_realistic_data() {
    let (db, _) = workload(5);
    let config = mining_config();
    let int = CyclicRuleMiner::new(config, Algorithm::interleaved()).mine(&db).unwrap();
    let unopt =
        CyclicRuleMiner::new(config, Algorithm::Interleaved(InterleavedOptions::none()))
            .mine(&db)
            .unwrap();
    assert_eq!(int.rules, unopt.rules);
    assert!(
        int.stats.support_computations < unopt.stats.support_computations,
        "optimizations must reduce support computations: {} vs {}",
        int.stats.support_computations,
        unopt.stats.support_computations
    );
    assert!(int.stats.skipped_counts > 0);
    assert!(int.stats.cycles_eliminated > 0);
}

#[test]
fn tightening_thresholds_shrinks_the_rule_set() {
    let (db, _) = workload(8);
    let loose = MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(0.4)
        .cycle_bounds(2, 8)
        .build()
        .unwrap();
    let tight = MiningConfig::builder()
        .min_support_fraction(0.5)
        .min_confidence(0.8)
        .cycle_bounds(2, 8)
        .build()
        .unwrap();
    let loose_rules =
        CyclicRuleMiner::new(loose, Algorithm::interleaved()).mine(&db).unwrap().rules;
    let tight_rules =
        CyclicRuleMiner::new(tight, Algorithm::interleaved()).mine(&db).unwrap().rules;
    assert!(tight_rules.len() <= loose_rules.len());
    // Every tight rule must appear among the loose ones (same rule; its
    // cycle set can only grow when thresholds loosen… in fact the loose
    // run's cycles for the same rule must cover the tight ones).
    for t in &tight_rules {
        assert!(
            loose_rules.iter().any(|l| l.rule == t.rule),
            "tight rule {} missing from loose run",
            t.rule
        );
    }
}
