//! Integration tests for the extension features: approximate cycles and
//! rule timeline analysis, driven end-to-end on generated data.

use cyclic_association_rules::core::analyze::analyze_rule;
use cyclic_association_rules::core::approx::mine_approx;
use cyclic_association_rules::datagen::{generate_cyclic, CyclicConfig, QuestConfig};
use cyclic_association_rules::itemset::{ItemSet, SegmentedDb};
use cyclic_association_rules::{Algorithm, CyclicRuleMiner, MiningConfig};

fn config() -> MiningConfig {
    MiningConfig::builder()
        .min_support_fraction(0.3)
        .min_confidence(0.5)
        .cycle_bounds(2, 6)
        .build()
        .unwrap()
}

fn generated() -> SegmentedDb {
    generate_cyclic(
        &CyclicConfig {
            quest: QuestConfig::default().with_num_items(120),
            num_units: 18,
            transactions_per_unit: 250,
            num_cyclic_patterns: 4,
            cyclic_pattern_len: 2,
            cycle_length_range: (2, 5),
            boost: 0.9,
            max_planted_per_transaction: 2,
        },
        31,
    )
    .db
}

#[test]
fn approx_with_zero_budget_covers_exact_rules() {
    let db = generated();
    let cfg = config();
    let exact = CyclicRuleMiner::new(cfg, Algorithm::Sequential).mine(&db).unwrap();
    let approx = mine_approx(&db, &cfg, 0).unwrap();
    // Every exact cyclic rule appears among the zero-budget approximate
    // rules with all its minimal cycles (the approximate result is
    // unfiltered, hence a superset per rule).
    for e in &exact.rules {
        let a = approx
            .rules
            .iter()
            .find(|a| a.rule == e.rule)
            .unwrap_or_else(|| panic!("exact rule {} missing from approx", e.rule));
        let a_cycles: Vec<_> = a.cycles.iter().map(|c| c.cycle).collect();
        for c in &e.cycles {
            assert!(a_cycles.contains(c), "{} lost cycle {}", e.rule, c);
        }
    }
    assert_eq!(exact.rules.len(), approx.rules.len());
}

#[test]
fn growing_budget_grows_rule_set_monotonically() {
    let db = generated();
    let cfg = config();
    let mut previous = 0usize;
    for budget in 0..4u32 {
        let outcome = mine_approx(&db, &cfg, budget).unwrap();
        assert!(
            outcome.rules.len() >= previous,
            "budget {budget} shrank the rule set: {} < {previous}",
            outcome.rules.len()
        );
        // Every reported cycle respects the budget.
        for r in &outcome.rules {
            for c in &r.cycles {
                assert!(c.misses <= budget);
                assert!(c.occurrences > 0);
            }
        }
        previous = outcome.rules.len();
    }
}

#[test]
fn timelines_explain_every_mined_rule() {
    let db = generated();
    let cfg = config();
    let outcome = CyclicRuleMiner::new(cfg, Algorithm::interleaved()).mine(&db).unwrap();
    assert!(!outcome.rules.is_empty());
    for mined in &outcome.rules {
        let timeline = analyze_rule(&db, &cfg, &mined.rule).unwrap();
        assert!(timeline.is_cyclic(), "{}", mined.rule);
        assert_eq!(timeline.cycles, mined.cycles, "{}", mined.rule);
        // Where the rule held, support and confidence clear thresholds.
        for u in timeline.holds.iter_ones() {
            assert!(timeline.supports[u] > 0.0);
            assert!(timeline.confidences[u] >= 0.5 - 1e-9);
        }
        assert!(timeline.mean_confidence_when_held() >= 0.5 - 1e-9);
        // No misses on any reported cycle.
        for &c in &timeline.cycles {
            assert!(timeline.misses_on(c).is_empty());
        }
    }
}

#[test]
fn analysis_of_unmined_rule_shows_why_not_cyclic() {
    // A deliberately absurd rule over sparse random items.
    let db = generated();
    let cfg = config();
    let rule = cyclic_association_rules::Rule::new(
        ItemSet::from_ids([118]),
        ItemSet::from_ids([119]),
    )
    .unwrap();
    let t = analyze_rule(&db, &cfg, &rule).unwrap();
    // Whatever the exact timeline, the invariants hold:
    assert_eq!(t.supports.len(), db.num_units());
    assert_eq!(t.confidences.len(), db.num_units());
    assert_eq!(t.holds.len(), db.num_units());
    if !t.is_cyclic() {
        // Every candidate cycle must have at least one miss explaining
        // its absence.
        for l in 2..=6u32 {
            for o in 0..l {
                let c = cyclic_association_rules::Cycle::make(l, o);
                assert!(
                    !t.misses_on(c).is_empty(),
                    "cycle {c} has no misses but was not reported"
                );
            }
        }
    }
}
