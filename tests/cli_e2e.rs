//! End-to-end CLI pipeline: `car gen` → `car stats` → `car mine` →
//! `car analyze` → `car detect`, all driven in-process through the
//! library entry point the binary wraps.

use std::path::PathBuf;

fn run(args: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    car_cli::run(&argv, &mut out).map_err(|e| e.to_string())?;
    Ok(String::from_utf8(out).expect("utf8 output"))
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("car-e2e-{tag}-{}.txt", std::process::id()))
}

#[test]
fn full_pipeline_gen_mine_analyze() {
    let data = temp_path("pipeline");
    let data_str = data.to_string_lossy().into_owned();

    // Generate a small database with planted cycles.
    let gen_out = run(&[
        "gen",
        "--units",
        "16",
        "--tx-per-unit",
        "200",
        "--items",
        "100",
        "--cyclic",
        "3",
        "--cycle-min",
        "2",
        "--cycle-max",
        "4",
        "--boost",
        "0.9",
        "--seed",
        "5",
        "--out",
        &data_str,
        "--show-planted",
    ])
    .expect("gen must succeed");
    assert!(gen_out.contains("wrote 3200 transactions in 16 units"), "{gen_out}");
    let planted: Vec<&str> =
        gen_out.lines().filter(|l| l.starts_with("# planted")).collect();
    assert_eq!(planted.len(), 3);

    // Stats over the generated file.
    let stats_out = run(&["stats", "--input", &data_str]).expect("stats");
    assert!(stats_out.contains("units:               16"), "{stats_out}");
    assert!(stats_out.contains("transactions:        3200"), "{stats_out}");

    // Mine with both algorithms; identical rule listings.
    let base_args = [
        "mine",
        "--input",
        &data_str,
        "--min-support",
        "0.3",
        "--min-confidence",
        "0.5",
        "--l-min",
        "2",
        "--l-max",
        "4",
    ];
    let mut seq_args = base_args.to_vec();
    seq_args.extend(["--algorithm", "sequential"]);
    let mut int_args = base_args.to_vec();
    int_args.extend(["--algorithm", "interleaved"]);
    let seq_out = run(&seq_args).expect("sequential mine");
    let int_out = run(&int_args).expect("interleaved mine");
    assert_eq!(seq_out, int_out);
    assert!(
        seq_out.lines().next().expect("header").contains("cyclic association rules"),
        "{seq_out}"
    );
    // At least one planted pair should show up as a rule line.
    let num_rules: usize = seq_out
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .expect("rule count in header");
    assert!(num_rules > 0, "{seq_out}");

    // Analyze the first mined rule's antecedent/consequent.
    let rule_line = seq_out.lines().nth(1).expect("at least one rule");
    // Format: "{a} => {b} @ (l,o)" — extract the singleton ids if simple.
    if let Some((lhs, rest)) = rule_line.split_once(" => ") {
        let lhs_ids = lhs.trim_matches(['{', '}']).replace(' ', ",");
        let rhs = rest.split(" @ ").next().expect("rule format");
        let rhs_ids = rhs.trim_matches(['{', '}']).replace(' ', ",");
        let analyze_out = run(&[
            "analyze",
            "--input",
            &data_str,
            "--antecedent",
            &lhs_ids,
            "--consequent",
            &rhs_ids,
            "--min-support",
            "0.3",
            "--min-confidence",
            "0.5",
            "--l-min",
            "2",
            "--l-max",
            "4",
        ])
        .expect("analyze");
        assert!(analyze_out.contains("cycles:"), "{analyze_out}");
        assert!(!analyze_out.contains("none within bounds"), "{analyze_out}");
    }

    std::fs::remove_file(&data).ok();
}

#[test]
fn detect_command_standalone() {
    let out =
        run(&["detect", "--sequence", "100100100100", "--l-min", "2", "--l-max", "6"])
            .expect("detect");
    assert!(out.contains("(3,0)"), "{out}");

    let approx = run(&[
        "detect",
        "--sequence",
        "100100000100",
        "--l-min",
        "3",
        "--l-max",
        "3",
        "--max-misses",
        "1",
    ])
    .expect("approx detect");
    assert!(approx.contains("misses 1/4"), "{approx}");
}

#[test]
fn help_and_errors() {
    assert!(run(&["help"]).expect("help").contains("USAGE"));
    assert!(run(&[]).is_err());
    assert!(run(&["frobnicate"]).unwrap_err().contains("unknown command"));
    assert!(run(&["mine"]).unwrap_err().contains("--input"));
}

#[test]
fn serve_command_boots_ingests_and_drains() {
    use std::io::Write;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    /// A `Write` the test can read while the serve command still owns it.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let mut thread_buf = buf.clone();
    let server = std::thread::spawn(move || {
        let argv: Vec<String> = [
            "serve",
            "--port",
            "0",
            "--threads",
            "2",
            "--window",
            "4",
            "--queue-capacity",
            "8",
            "--min-support",
            "0.5",
            "--min-confidence",
            "0.5",
            "--l-min",
            "2",
            "--l-max",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        car_cli::run(&argv, &mut thread_buf).map_err(|e| e.to_string())
    });

    // The daemon prints its bound address once listening.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        if let Some(line) = text.lines().find(|l| l.contains("listening on http://")) {
            break line.split("http://").nth(1).unwrap().trim().to_string();
        }
        assert!(Instant::now() < deadline, "server never reported its address");
        std::thread::sleep(Duration::from_millis(20));
    };

    let mut client = car_serve::Client::connect(&addr).expect("connect to daemon");
    let even = br#"{"transactions": [[1,2],[1,2],[1,2],[1,2]]}"#;
    let odd = br#"{"transactions": [[9],[9],[9],[9]]}"#;
    for day in 0..4 {
        let body: &[u8] = if day % 2 == 0 { even } else { odd };
        let resp =
            client.request("POST", "/v1/units?wait=true", Some(body)).expect("ingest");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    let resp = client.request("GET", "/v1/rules", None).expect("rules");
    assert_eq!(resp.status, 200);
    assert!(resp.body_text().contains("{1} => {2}"), "{}", resp.body_text());

    let resp = client.request("POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(resp.status, 200);
    server.join().unwrap().expect("serve command exits cleanly");

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert!(text.contains("drained and stopped"), "{text}");
    assert!(text.contains("ingested 4 units"), "{text}");
}
