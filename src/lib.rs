//! # Cyclic Association Rules
//!
//! A production-quality Rust implementation of
//!
//! > Banu Özden, Sridhar Ramaswamy, Abraham Silberschatz.
//! > **"Cyclic Association Rules."** ICDE 1998.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`itemset`] | `car-itemset` | items, itemsets, transactions, time-segmented databases, file I/O |
//! | [`cycles`] | `car-cycles` | binary sequences, cycles, candidate cycle sets, detection |
//! | [`apriori`] | `car-apriori` | Apriori, hash-tree counting, association rule generation |
//! | [`core`] | `car-core` | the SEQUENTIAL and INTERLEAVED cyclic-rule miners |
//! | [`datagen`] | `car-datagen` | Quest-style synthetic data with planted cyclic patterns |
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use cyclic_association_rules::{
//!     Algorithm, CyclicRuleMiner, MiningConfig,
//!     itemset::{ItemSet, SegmentedDb},
//! };
//!
//! let sale = vec![ItemSet::from_ids([1, 2]); 6];
//! let calm = vec![ItemSet::from_ids([9]); 6];
//! let db = SegmentedDb::from_unit_itemsets(vec![
//!     sale.clone(), calm.clone(), sale.clone(), calm.clone(), sale, calm,
//! ]);
//!
//! let config = MiningConfig::builder()
//!     .min_support_fraction(0.4)
//!     .min_confidence(0.6)
//!     .cycle_bounds(2, 3)
//!     .build()?;
//! let outcome = CyclicRuleMiner::new(config, Algorithm::interleaved()).mine(&db)?;
//! assert!(outcome.rules.iter().any(|r| r.rule.to_string() == "{1} => {2}"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use car_apriori as apriori;
pub use car_core as core;
pub use car_cycles as cycles;
pub use car_datagen as datagen;
pub use car_itemset as itemset;

pub use car_core::{
    Algorithm, ConfigBuilder, ConfigError, CountStrategy, Cycle, CycleBounds, CyclicRule,
    CyclicRuleMiner, InterleavedOptions, MinConfidence, MinSupport, MiningConfig,
    MiningOutcome, MiningStats, Rule,
};
