//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no route to a crates registry, so the real
//! `criterion` can never be fetched. This crate implements the API subset
//! the bench suite uses — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`],
//! [`Bencher::iter`] / [`iter_batched`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — as a
//! plain-text wall-clock harness: per benchmark it warms up, runs the
//! configured number of samples, and prints min/median/mean per
//! iteration. No statistical analysis, HTML reports, or baselines.
//!
//! Two environment variables drive CI integration:
//!
//! * `CAR_BENCH_JSON=<path>` — after every completed benchmark, rewrite
//!   `<path>` as a valid JSON array of all results so far (one object
//!   per benchmark: `group`, `name`, `n`, `min_ns`, `median_ns`,
//!   `mean_ns`). Rewriting the whole array each time means the file is
//!   parseable even if the bench binary is interrupted part-way.
//! * `CAR_BENCH_QUICK=1` — clamp warm-up to 50ms, measurement to 200ms,
//!   and samples to 10 per benchmark, regardless of what the bench
//!   source configures. CI smoke runs use this to prove the bench
//!   compiles and runs without paying full measurement time.
//!
//! [`bench_with_input`]: BenchmarkGroup::bench_with_input

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// All results reported so far, pre-rendered as JSON objects; the
/// `CAR_BENCH_JSON` file is rewritten from this registry after every
/// benchmark.
static JSON_RECORDS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Whether `CAR_BENCH_QUICK` asks for clamped warm-up and measurement.
fn quick_mode() -> bool {
    std::env::var("CAR_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The `CAR_BENCH_JSON` output path, if set and non-empty.
fn json_path() -> Option<std::path::PathBuf> {
    std::env::var_os("CAR_BENCH_JSON")
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends one result to the registry and rewrites the JSON file (when
/// `CAR_BENCH_JSON` is set) as a complete, valid array.
fn record_json(
    group: &str,
    name: &str,
    n: usize,
    min: Duration,
    median: Duration,
    mean: Duration,
) {
    let Some(path) = json_path() else { return };
    let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    let record = format!(
        "{{\"group\":\"{}\",\"name\":\"{}\",\"n\":{},\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{}}}",
        json_escape(group),
        json_escape(name),
        n,
        ns(min),
        ns(median),
        ns(mean)
    );
    let Ok(mut records) = JSON_RECORDS.lock() else { return };
    records.push(record);
    let body = format!("[\n  {}\n]\n", records.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("CAR_BENCH_JSON: failed to write {}: {e}", path.display());
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A benchmark's identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// How [`Bencher::iter_batched`] amortises setup cost. The shim runs one
/// routine call per setup regardless of the variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Time budget for the measured samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark with no per-benchmark input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let quick = quick_mode();
        let mut bencher = Bencher {
            sample_size: if quick { self.sample_size.min(10) } else { self.sample_size },
            warm_up_time: if quick {
                self.warm_up_time.min(Duration::from_millis(50))
            } else {
                self.warm_up_time
            },
            measurement_time: if quick {
                self.measurement_time.min(Duration::from_millis(200))
            } else {
                self.measurement_time
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Runs a benchmark against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Collects timed iterations of one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: `sample_size` samples within the time budget.
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("{group}/{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{group}/{label:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
        record_json(group, label, sorted.len(), min, median, mean);
    }
}

/// Declares a benchmark group function calling each listed bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("plain/label"), "plain/label");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t"), "x\\n\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn record_json_is_a_noop_without_the_env_var() {
        // No CAR_BENCH_JSON in the test environment: must not write
        // anywhere or grow the registry.
        let before = JSON_RECORDS.lock().unwrap().len();
        record_json(
            "g",
            "n",
            3,
            Duration::from_nanos(1),
            Duration::from_nanos(2),
            Duration::from_nanos(3),
        );
        assert_eq!(JSON_RECORDS.lock().unwrap().len(), before);
    }
}
