//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no route to a crates registry, so the real
//! `criterion` can never be fetched. This crate implements the API subset
//! the bench suite uses — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`],
//! [`Bencher::iter`] / [`iter_batched`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — as a
//! plain-text wall-clock harness: per benchmark it warms up, runs the
//! configured number of samples, and prints min/median/mean per
//! iteration. No statistical analysis, HTML reports, or baselines.
//!
//! [`bench_with_input`]: BenchmarkGroup::bench_with_input

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A benchmark's identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// How [`Bencher::iter_batched`] amortises setup cost. The shim runs one
/// routine call per setup regardless of the variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Time budget for the measured samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark with no per-benchmark input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Runs a benchmark against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Collects timed iterations of one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: `sample_size` samples within the time budget.
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("{group}/{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{group}/{label:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// Declares a benchmark group function calling each listed bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(runs > 0);
    }
}
