//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no route to a crates registry, so the real
//! `proptest` can never be fetched. This crate implements the subset its
//! property tests rely on:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`, implemented
//!   for integer and float ranges and tuples;
//! * [`collection::vec`], [`collection::btree_set`], [`option::of`], and
//!   [`any`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`
//!   header) plus [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: case generation is **deterministic** (seeded
//! from the test's module path, name, and case index) and there is **no
//! shrinking** — a failing case reports its case index and seed so it can
//! be re-run, but is not minimised. Sizes of generated sets may fall
//! short of the requested range when the element domain is too small,
//! matching upstream's documented `btree_set` behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test-case assertion (produced by [`prop_assert!`] /
/// [`prop_assert_eq!`]).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Derives the deterministic RNG for one test case.
pub fn test_rng(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// [`Strategy::prop_map`] adaptor.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adaptor.
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives (used through [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// The canonical strategy for `T` — `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Size specifications accepted by the [`collection`] strategies.
pub trait SizeRange {
    /// Draws a concrete size.
    fn sample_size(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_size(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    ///
    /// As with upstream proptest, the resulting set may be smaller than
    /// the drawn size when the element domain cannot supply enough
    /// distinct values.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample_size(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`: `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// The common imports property tests start with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(path, case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            path, case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_per_case() {
        let mut a = crate::test_rng("x::y", 3);
        let mut b = crate::test_rng("x::y", 3);
        let mut c = crate::test_rng("x::y", 4);
        use rand::Rng;
        let va: Vec<u64> = (0..4).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn collection_sizes_respected() {
        let strat = crate::collection::vec(0u32..5, 2..6);
        let mut rng = crate::test_rng("sizes", 0);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_exact_when_achievable() {
        let strat = crate::collection::btree_set(0u32..100, 5..=5);
        let mut rng = crate::test_rng("bts", 1);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut rng).len(), 5);
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let strat = crate::option::of(0u32..10);
        let mut rng = crate::test_rng("opt", 2);
        let samples: Vec<Option<u32>> =
            (0..100).map(|_| strat.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_some));
        assert!(samples.iter().any(Option::is_none));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(
            v in crate::collection::vec(0u32..10, 0..8),
            flag in any::<bool>(),
            x in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..5, n..=n)),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert_eq!(flag, flag);
            prop_assert!(!x.is_empty() && x.len() < 4);
        }

        /// Doc comments on property tests must parse.
        #[test]
        fn tuple_and_map(pair in (0u32..4, 0.0f64..=1.0).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.0 < 4);
            prop_assert!((0.0..=1.0).contains(&pair.1));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_reports_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
