//! Workspace-local stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no route to a crates registry, so the
//! external `rand` crate can never be fetched. This crate implements the
//! subset of the 0.8 API the workspace actually uses — [`Rng::gen`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! [`rngs::StdRng`], and [`SeedableRng::seed_from_u64`] — on top of a
//! deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! Determinism note: unlike upstream `StdRng` (which documents no
//! cross-version stream stability), this generator is fully deterministic
//! for a given seed across builds, which the datagen golden tests rely
//! on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an [`RngCore`] — the stand-in for
/// `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly — the stand-in for `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Draws a u64 uniformly below `bound` (debiased via rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening-multiply method (Lemire); reject the biased zone.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn rng_works_through_mut_reference() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let r = &mut rng;
        assert!(takes_generic(r) < 100);
    }
}
