//! car-shard: a consistent-hash sharded mining cluster.
//!
//! A zero-dependency router ([`router::run_router`]) fronts N
//! `car-serve` workers. Ingest is partitioned across workers by
//! rendezvous-hashing each transaction's partition-key item
//! ([`ring::ShardRing`]); rule queries fan out to every live worker in
//! parallel and the per-shard views are merged — cycles re-minimalized,
//! rules re-sorted — at the router ([`merge::merge_rule_views`]).
//!
//! Degradation is graceful: per-shard health probes with timeout and
//! backoff exclude a down worker from fan-out (responses then carry
//! `partial=true` and an `X-Car-Shards-Degraded` header), and a bounded
//! replay ring lets a recovered worker be caught up exactly and
//! re-admitted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod merge;
pub mod ring;
pub mod router;

pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use merge::{merge_rule_views, parse_rules_body, ShardView};
pub use ring::{PartitionKey, ShardRing};
pub use router::{
    run_router, RouterConfig, RouterError, RouterHandle, RouterState, RouterStats,
    WorkerState,
};
