//! The shard router: a standalone HTTP daemon that fronts a cluster of
//! `car-serve` workers.
//!
//! * `POST /v1/units` — parses the ingest body once, splits every unit
//!   into per-shard sub-units ([`crate::ring::ShardRing::split_unit`]),
//!   and forwards each worker its sub-batch in parallel. Every routed
//!   unit is also appended to a bounded replay ring so a worker that
//!   misses units can be caught up exactly. A batch is *always*
//!   answered `2xx` once it is committed to the replay ring — even when
//!   every worker is down the answer is `202` with `applied=false` and
//!   `partial=true`, never a retryable `503`, because a client retry
//!   would buffer (and later replay) the same units twice.
//! * `GET /v1/rules` — fans the query out to all live workers in
//!   parallel, merges their rule views ([`crate::merge`]), re-filters
//!   cycles at the router, and renders the merged rules through the
//!   worker serializer. Down shards are excluded; degraded responses
//!   carry `partial=true` and an `X-Car-Shards-Degraded` header. Each
//!   leg's `x-car-epoch` is collected and the merged body surfaces
//!   `epoch_min`/`epoch_max` so clients can detect cross-shard skew.
//! * `GET /v1/items` — fans out to all live workers and merges the
//!   per-item window support totals with a plain saturating sum: each
//!   transaction is owned by exactly one shard, so no support is
//!   counted twice. Degraded shards surface exactly as for rules.
//! * `GET /v1/health`, `GET /metrics`, `POST /v1/shutdown` — router
//!   health, Prometheus metrics (`car_shard_*`), graceful shutdown.
//! * `GET /v1/debug/traces` — tail-retained distributed traces: with no
//!   parameters, summaries of every retained trace (newest first); with
//!   `?trace_id=HEX`, the assembled span tree; with `&format=chrome`,
//!   the same trace as Chrome `trace_event` JSON (load it in
//!   `chrome://tracing` or Perfetto).
//!
//! ## Distributed tracing
//!
//! Every router request begins (or adopts, via `X-Car-Trace-Id` /
//! `X-Car-Parent-Span`) a trace. Fan-out legs — ingest sends, rule
//! queries, health probes — forward the trace id and a freshly minted
//! leg-span uid as the parent, so each worker's own spans (request
//! handling, mining stages, WAL appends) nest under the leg that caused
//! them. Workers return their spans in the `X-Car-Spans` response
//! header; the router decodes them, adds its own leg spans (attributed
//! with shard id, breaker state, outcome, and epoch), assembles the
//! whole tree, and offers it to a tail-based [`TraceStore`]: errored
//! and slow traces are always retained, plus a deterministic 1-in-N
//! sample of the rest.
//!
//! ## Worker lifecycle
//!
//! Worker admission is governed by a per-shard **circuit breaker**
//! ([`crate::breaker`]): a worker is `Up` while its breaker is Closed,
//! `Down` while it is Open or Half-Open, and `Stale` when it fell
//! further behind than the replay ring remembers (terminal until the
//! operator resets it). Failed exchanges — data-path sends, fan-out
//! legs, health probes — feed the breaker; at the consecutive-failure
//! threshold it opens and the worker is excluded. After the cooldown
//! the breaker admits a Half-Open probe trickle: the prober re-checks
//! the worker, computes exactly how many units it missed from its
//! accepted-unit count (`total_pushed + queue_depth`, baselined at
//! first contact), replays precisely those sub-units from the ring with
//! `?wait=true`, and only a fully caught-up probe closes the breaker
//! and re-admits the worker. Unit indices therefore stay aligned across
//! the cluster even through a worker crash and restart (WAL recovery
//! restores the acknowledged prefix; the router replays the rest).
//! Breaker states are exported as `car_shard_breaker_state` gauges and
//! a `breakers` block in `/v1/health`.
//!
//! ## Deadlines
//!
//! Every `/v1/rules` request gets a budget: the smaller of the router's
//! configured `request_budget` and the client's `X-Car-Deadline-Ms`
//! header. Each fan-out leg forwards the *remaining* budget as
//! `X-Car-Deadline-Ms`, and workers abort escalated re-detection when
//! it expires (answering `504 deadline_exceeded`), so one slow shard
//! cannot pin the whole merge past the deadline.
//!
//! ## Lock order
//!
//! `ingest` (the routing/replay state) is acquired before any
//! `workers[i]` mutex; a thread never holds two worker mutexes. The
//! rules fan-out takes worker mutexes only. `/v1/health` and `/metrics`
//! never take the ingest lock at all — they read lock-free gauge
//! mirrors — so external monitors stay responsive while a fan-out or a
//! catch-up replay holds `ingest` through slow network I/O.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use car_itemset::ItemSet;
use car_obs::counters::SHARD;
use car_obs::trace::{self, SpanRecord, SpanUid, TraceId, TraceStore, TraceStorePolicy};
use car_serve::http::{self, Response, DEFAULT_MAX_BODY_BYTES};
use car_serve::json::{object, Json};
use car_serve::metrics::{Metrics, Route};
use car_serve::sync::{log_warn, LockExt};
use car_serve::{RetryPolicy, RetryingClient};

use crate::breaker::{Breaker, BreakerConfig, BreakerState};
use crate::ring::{PartitionKey, ShardRing};

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Requests served per connection before forcing a close.
const MAX_REQUESTS_PER_CONNECTION: usize = 10_000;

/// Router startup/runtime errors.
#[derive(Debug)]
pub enum RouterError {
    /// Invalid router configuration.
    Config(String),
    /// Socket or thread-spawn failure.
    Io(std::io::Error),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Config(msg) => write!(f, "configuration error: {msg}"),
            RouterError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// Everything needed to boot a router.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address (port 0 for ephemeral).
    pub addr: String,
    /// Worker addresses; index in this list is the worker's shard id.
    pub workers: Vec<String>,
    /// Threads serving router connections.
    pub threads: usize,
    /// Which transaction item selects the owning shard.
    pub key: PartitionKey,
    /// Retry policy for data-path requests to workers (per-request
    /// timeout plus exponential backoff with jitter on failures).
    pub retry: RetryPolicy,
    /// How often the prober re-checks worker health.
    pub probe_interval: Duration,
    /// Full units kept for catch-up replay; a worker that falls further
    /// behind than this is marked stale and stays excluded.
    pub replay_capacity: usize,
    /// Propagate `POST /v1/shutdown` to workers when the router stops
    /// (spawn mode owns its workers; attach mode leaves them running).
    pub shutdown_workers: bool,
    /// Per-connection socket read/write timeout on the router side.
    pub io_timeout: Duration,
    /// Maximum accepted request body size.
    pub max_body_bytes: usize,
    /// Per-shard circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Upper bound on a request's total deadline budget; the effective
    /// deadline is the smaller of this and the client's
    /// `X-Car-Deadline-Ms` header.
    pub request_budget: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7979".into(),
            workers: Vec::new(),
            threads: 4,
            key: PartitionKey::MinItem,
            retry: RetryPolicy { max_retries: 2, timeout: Duration::from_secs(2) },
            probe_interval: Duration::from_millis(250),
            replay_capacity: 512,
            shutdown_workers: false,
            io_timeout: Duration::from_secs(10),
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            breaker: BreakerConfig::default(),
            request_budget: Duration::from_secs(10),
        }
    }
}

/// A worker's admission state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerState {
    /// Healthy: receives ingest and rule queries.
    Up,
    /// Unreachable or failing: excluded, probed for recovery.
    Down,
    /// Fell behind the replay ring; cannot be caught up exactly, so it
    /// stays excluded (restart the cluster or the worker's data dir).
    Stale,
}

impl WorkerState {
    fn label(self) -> &'static str {
        match self {
            WorkerState::Up => "up",
            WorkerState::Down => "down",
            WorkerState::Stale => "stale",
        }
    }
}

struct Worker {
    shard_id: u32,
    addr: String,
    client: RetryingClient,
    breaker: Breaker,
    /// Terminal: the worker fell behind the replay ring and cannot be
    /// caught up exactly.
    stale: bool,
    /// The worker's accepted-unit count at first contact; units routed
    /// by this router are measured relative to it, so a worker with
    /// pre-existing history (recovered WAL) accounts correctly.
    baseline: Option<u64>,
}

impl Worker {
    /// Admission state, derived from staleness and the breaker.
    fn state(&self) -> WorkerState {
        if self.stale {
            WorkerState::Stale
        } else if self.breaker.allows_traffic() {
            WorkerState::Up
        } else {
            WorkerState::Down
        }
    }

    /// Feeds a failed exchange to the breaker; opening it excludes the
    /// worker from the data path (`Stale` is terminal and ignores
    /// further evidence).
    fn record_failure(&mut self) {
        if self.stale {
            return;
        }
        if self.breaker.record_failure(Instant::now()) {
            SHARD.add_down_transition();
            car_obs::warn!(
                "shard",
                [
                    shard = self.shard_id,
                    addr = self.addr.as_str(),
                    failures = self.breaker.consecutive_failures()
                ],
                "circuit breaker opened; worker excluded"
            );
        }
    }

    /// Feeds a successful exchange to the breaker; returns `true` when
    /// this success closed a Half-Open breaker (re-admission).
    fn record_success(&mut self) -> bool {
        if self.stale {
            return false;
        }
        self.breaker.record_success()
    }
}

/// One worker's admission + breaker view, read under its mutex.
struct WorkerSnapshot {
    shard_id: u32,
    state: WorkerState,
    breaker: BreakerState,
    consecutive_failures: u32,
    opens: u64,
}

impl WorkerSnapshot {
    /// The `car_shard_breaker_state` gauge encoding; `Stale` extends
    /// the breaker encoding with 3 (terminally excluded).
    fn gauge_value(&self) -> u64 {
        if self.state == WorkerState::Stale {
            3
        } else {
            self.breaker.gauge_value()
        }
    }
}

/// A worker's parsed health answer, reduced to what the router needs.
struct HealthView {
    ready: bool,
    /// Units the worker has accepted responsibility for: applied
    /// (`total_pushed`) plus queued (`queue_depth`).
    accepted: u64,
}

fn probe_health(client: &mut RetryingClient) -> Option<HealthView> {
    // Probes run outside any request trace, so each one mints a fresh
    // context: probe traces are never retained router-side, but the
    // worker's request log carries a correlatable trace id.
    let headers = [
        (trace::TRACE_ID_HEADER, trace::mint_trace_id().to_hex()),
        (trace::PARENT_SPAN_HEADER, trace::mint_span_uid().to_hex()),
    ];
    let resp = client.request_once_with("GET", "/v1/health", &headers, None)?;
    if resp.status != 200 {
        return None;
    }
    let doc = Json::parse(&resp.body_text()).ok()?;
    let ready = doc.get("ready").and_then(Json::as_bool)?;
    let total = doc.get("total_pushed").and_then(Json::as_u64)?;
    let depth = doc.get("queue_depth").and_then(Json::as_u64)?;
    Some(HealthView { ready, accepted: total.saturating_add(depth) })
}

/// Routing state shared by ingest and the prober; guarded by one mutex
/// so catch-up replay and new ingest serialize.
struct IngestState {
    units_routed: u64,
    replay: VecDeque<Vec<ItemSet>>,
}

/// Everything the router's request handlers share.
pub struct RouterState {
    config: RouterConfig,
    ring: ShardRing,
    workers: Vec<Mutex<Worker>>,
    ingest: Mutex<IngestState>,
    /// Lock-free mirror of `ingest.units_routed`; `route_units` holds
    /// the ingest lock across worker sends (network I/O), so health and
    /// metrics read this instead of waiting behind it.
    units_routed_gauge: AtomicU64,
    /// Lock-free mirror of `ingest.replay.len()`, same reason.
    replay_depth_gauge: AtomicU64,
    metrics: Metrics,
    /// Tail-retained distributed traces, served by `/v1/debug/traces`.
    traces: TraceStore,
    shutdown: AtomicBool,
}

/// Outcome of routing one ingest batch.
struct RouteOutcome {
    applied: bool,
    units_routed: u64,
    /// Per worker, in shard order: post-send state plus whether this
    /// batch's send to it succeeded. The `ok` flag — not the state —
    /// decides degradation, so the very first failed send is already a
    /// `partial` response even while the breaker is still counting
    /// failures toward its threshold.
    shards: Vec<(u32, WorkerState, bool)>,
}

impl RouteOutcome {
    fn degraded(&self) -> Vec<u32> {
        self.shards.iter().filter(|(_, _, ok)| !ok).map(|(id, _, _)| *id).collect()
    }

    fn states(&self) -> Vec<(u32, WorkerState)> {
        self.shards.iter().map(|&(id, s, _)| (id, s)).collect()
    }
}

/// One fan-out leg's disposition.
enum Leg {
    Ok {
        view: crate::merge::ShardView,
        /// The worker's `x-car-epoch` (units applied when the body was
        /// rendered), used to surface cross-shard skew.
        epoch: Option<u64>,
    },
    Skipped(u32),
    Failed(u32),
    /// The leg's share of the deadline budget ran out (locally, or the
    /// worker answered `504 deadline_exceeded`). Not breaker evidence:
    /// a client-chosen tiny budget must not open breakers on healthy
    /// workers.
    TimedOut(u32),
    Warming,
    BadRequest(Response),
}

/// The leg's trace-attribute outcome label.
fn leg_outcome(leg: &Leg) -> &'static str {
    match leg {
        Leg::Ok { .. } => "ok",
        Leg::Skipped(_) => "skipped",
        Leg::Failed(_) => "failed",
        Leg::TimedOut(_) => "timed_out",
        Leg::Warming => "warming",
        Leg::BadRequest(_) => "bad_request",
    }
}

/// Elapsed wall time of a leg, saturating at `u64::MAX` microseconds.
fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The active trace context, copied before a fan-out so scoped leg
/// threads (which do not see the request thread's trace) can stamp
/// forwarded headers and time their legs as plain span records.
#[derive(Clone, Copy)]
struct LegTraceContext {
    trace_id: TraceId,
    root_uid: SpanUid,
}

impl LegTraceContext {
    fn capture() -> Option<LegTraceContext> {
        trace::current_context()
            .map(|(trace_id, root_uid)| LegTraceContext { trace_id, root_uid })
    }

    /// The forwarded headers for one leg: the trace id plus the leg
    /// span's uid as the worker's parent.
    fn headers(self, leg_uid: SpanUid) -> [(&'static str, String); 2] {
        [
            (trace::TRACE_ID_HEADER, self.trace_id.to_hex()),
            (trace::PARENT_SPAN_HEADER, leg_uid.to_hex()),
        ]
    }

    /// One finished leg span.
    fn leg_span(
        self,
        leg_uid: SpanUid,
        name: &str,
        start_us: u64,
        started: Instant,
        attrs: Vec<(String, String)>,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: self.trace_id,
            uid: leg_uid,
            parent: Some(self.root_uid),
            name: name.to_string(),
            start_us,
            dur_us: elapsed_us(started),
            attrs,
        }
    }

    /// Worker spans returned in a leg response's `X-Car-Spans` header.
    fn worker_spans(self, resp: Option<&car_serve::ClientResponse>) -> Vec<SpanRecord> {
        resp.and_then(|r| r.header(trace::SPANS_HEADER))
            .map(|raw| trace::decode_spans(self.trace_id, raw))
            .unwrap_or_default()
    }
}

fn units_to_body(units: &[Vec<ItemSet>]) -> Vec<u8> {
    let batch: Vec<Json> = units
        .iter()
        .map(|unit| {
            let txs: Vec<Json> = unit
                .iter()
                .map(|tx| {
                    Json::Array(tx.iter().map(|item| Json::from(item.id())).collect())
                })
                .collect();
            object([("transactions", Json::Array(txs))])
        })
        .collect();
    Json::Array(batch).render().into_bytes()
}

impl RouterState {
    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Begins shutdown (idempotent).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The router's tail-retained trace store (tests and embedders).
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// Per-worker admission + breaker snapshot (brief per-worker locks).
    fn worker_snapshots(&self) -> Vec<WorkerSnapshot> {
        self.workers
            .iter()
            .map(|w| {
                let w = w.lock_or_recover();
                WorkerSnapshot {
                    shard_id: w.shard_id,
                    state: w.state(),
                    breaker: w.breaker.state(),
                    consecutive_failures: w.breaker.consecutive_failures(),
                    opens: w.breaker.opens(),
                }
            })
            .collect()
    }

    /// Routes a batch of full units: records them for replay, then
    /// sends each live worker its aligned sub-batch in parallel.
    fn route_units(&self, units: Vec<Vec<ItemSet>>, wait: bool) -> RouteOutcome {
        let n = units.len();
        let count = self.ring.count() as usize;
        let mut ingest = self.ingest.lock_or_recover();

        // splits[shard] = this batch's sub-units for that shard.
        let mut splits: Vec<Vec<Vec<ItemSet>>> =
            (0..count).map(|_| Vec::with_capacity(n)).collect();
        for unit in &units {
            for (sub, per_shard) in
                self.ring.split_unit(unit, self.config.key).into_iter().zip(&mut splits)
            {
                per_shard.push(sub);
            }
        }
        for unit in units {
            if ingest.replay.len() >= self.config.replay_capacity {
                ingest.replay.pop_front();
            }
            ingest.replay.push_back(unit);
        }
        ingest.units_routed = ingest.units_routed.saturating_add(n as u64);
        SHARD.add_units_routed(n as u64);
        let units_routed = ingest.units_routed;
        self.units_routed_gauge.store(units_routed, Ordering::Relaxed);
        self.replay_depth_gauge.store(ingest.replay.len() as u64, Ordering::Relaxed);

        let target = if wait { "/v1/units?wait=true" } else { "/v1/units" };
        let leg_ctx = LegTraceContext::capture();
        // (shard_id, post-send state, send ok, batch applied, leg spans)
        type Send = (u32, WorkerState, bool, bool, Vec<SpanRecord>);
        let sends: Vec<Send> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter()
                .zip(splits)
                .map(|(worker, sub_batch)| {
                    scope.spawn(move || {
                        let mut w = worker.lock_or_recover();
                        let leg_uid = trace::mint_span_uid();
                        let start_us = trace::wall_now_us();
                        let started = Instant::now();
                        let breaker = w.breaker.state().label();
                        if w.state() != WorkerState::Up {
                            let spans = leg_ctx.map_or_else(Vec::new, |ctx| {
                                vec![ctx.leg_span(
                                    leg_uid,
                                    "router.leg.ingest",
                                    start_us,
                                    started,
                                    vec![
                                        ("shard".into(), w.shard_id.to_string()),
                                        ("breaker".into(), breaker.into()),
                                        ("outcome".into(), "skipped".into()),
                                    ],
                                )]
                            });
                            return (w.shard_id, w.state(), false, false, spans);
                        }
                        let body = units_to_body(&sub_batch);
                        let headers = leg_ctx
                            .map(|ctx| ctx.headers(leg_uid).to_vec())
                            .unwrap_or_default();
                        let response = w.client.request_with(
                            "POST",
                            target,
                            &headers,
                            Some(&body),
                            None,
                        );
                        let (ok, applied) = match &response {
                            Some(resp) if resp.status == 200 || resp.status == 202 => {
                                match batch_fully_accepted(&resp.body, n) {
                                    Some(applied) => {
                                        w.record_success();
                                        (true, applied)
                                    }
                                    None => {
                                        w.record_failure();
                                        (false, false)
                                    }
                                }
                            }
                            _ => {
                                w.record_failure();
                                (false, false)
                            }
                        };
                        let spans = leg_ctx.map_or_else(Vec::new, |ctx| {
                            let mut spans = ctx.worker_spans(response.as_ref());
                            spans.push(ctx.leg_span(
                                leg_uid,
                                "router.leg.ingest",
                                start_us,
                                started,
                                vec![
                                    ("shard".into(), w.shard_id.to_string()),
                                    ("breaker".into(), breaker.into()),
                                    (
                                        "outcome".into(),
                                        if ok { "ok" } else { "failed" }.into(),
                                    ),
                                ],
                            ));
                            spans
                        });
                        (w.shard_id, w.state(), ok, applied, spans)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(shard_id, h)| match h.join() {
                    Ok(send) => send,
                    Err(_) => {
                        log_warn("shard send thread panicked");
                        (shard_id as u32, WorkerState::Down, false, false, Vec::new())
                    }
                })
                .collect()
        });
        drop(ingest);
        // Back on the request thread: fold every leg's spans (its own
        // timing plus the worker spans it brought home) into the trace.
        for (_, _, _, _, spans) in &sends {
            for span in spans {
                trace::record_span(span.clone());
            }
        }

        let applied = wait
            && sends.iter().any(|(_, _, ok, _, _)| *ok)
            && sends.iter().all(|(_, _, ok, applied, _)| !ok || *applied);
        RouteOutcome {
            applied,
            units_routed,
            shards: sends.iter().map(|(id, s, ok, _, _)| (*id, *s, *ok)).collect(),
        }
    }

    /// Attempts to re-admit worker `i`: waits out the breaker cooldown,
    /// verifies the worker is healthy (the Half-Open trial), computes
    /// exactly how many routed units it has not accepted, replays those
    /// sub-units from the ring, and only then lets the breaker close.
    /// Holding the ingest lock throughout keeps new units from racing
    /// past the replay.
    fn try_readmit(&self, i: usize) {
        let Some(worker) = self.workers.get(i) else { return };
        let ingest = self.ingest.lock_or_recover();
        let mut w = worker.lock_or_recover();
        if w.state() != WorkerState::Down {
            return;
        }
        if !w.breaker.probe_ready(Instant::now()) {
            // Still cooling down; no probe traffic at all.
            return;
        }
        let Some(health) = probe_health(&mut w.client) else {
            w.record_failure();
            return;
        };
        if !health.ready {
            w.record_failure();
            return;
        }
        let baseline = *w.baseline.get_or_insert(health.accepted);
        let caught_up = health.accepted.saturating_sub(baseline);
        let behind = ingest.units_routed.saturating_sub(caught_up);
        if behind > ingest.replay.len() as u64 {
            w.stale = true;
            car_obs::error!(
                "shard",
                [shard = w.shard_id, behind = behind, ring = ingest.replay.len()],
                "worker is behind the replay ring; marking stale (cannot catch up)"
            );
            return;
        }
        if behind > 0 {
            let skip = ingest.replay.len().saturating_sub(behind as usize);
            let sub_units: Vec<Vec<ItemSet>> = ingest
                .replay
                .iter()
                .skip(skip)
                .filter_map(|unit| {
                    self.ring.split_unit(unit, self.config.key).into_iter().nth(i)
                })
                .collect();
            let body = units_to_body(&sub_units);
            let ok = match w.client.request("POST", "/v1/units?wait=true", Some(&body)) {
                Some(resp) if resp.status == 200 || resp.status == 202 => {
                    batch_fully_accepted(&resp.body, sub_units.len()).is_some()
                }
                _ => false,
            };
            if !ok {
                // Still flaky; reopen and restart the cooldown.
                w.record_failure();
                return;
            }
        }
        if w.record_success() {
            SHARD.add_readmission();
            SHARD.add_catchup_units(behind);
            car_obs::info!(
                "shard",
                [shard = w.shard_id, replayed = behind],
                "breaker closed; worker re-admitted after catch-up"
            );
        }
    }

    /// One prober pass: verify `Up` workers, try to re-admit `Down`
    /// ones.
    fn probe_once(&self) {
        for (i, worker) in self.workers.iter().enumerate() {
            let state = {
                let w = worker.lock_or_recover();
                w.state()
            };
            match state {
                WorkerState::Up => {
                    let mut w = worker.lock_or_recover();
                    if w.state() != WorkerState::Up {
                        continue;
                    }
                    match probe_health(&mut w.client) {
                        Some(h) if h.ready => {
                            w.record_success();
                        }
                        _ => w.record_failure(),
                    }
                }
                WorkerState::Down => self.try_readmit(i),
                WorkerState::Stale => {}
            }
        }
    }
}

/// Parses a worker's batch-ingest response and confirms every unit was
/// accepted; returns the response's `applied` flag, or `None` when the
/// worker rejected any unit (it must then be caught up via replay).
fn batch_fully_accepted(body: &[u8], expected: usize) -> Option<bool> {
    let text = std::str::from_utf8(body).ok()?;
    let doc = Json::parse(text).ok()?;
    let accepted = doc.get("accepted").and_then(Json::as_u64)?;
    if accepted != expected as u64 {
        return None;
    }
    Some(doc.get("applied").and_then(Json::as_bool).unwrap_or(false))
}

// ---------------------------------------------------------------------------
// Request handlers
// ---------------------------------------------------------------------------

/// Dispatches one router request.
pub fn handle(state: &Arc<RouterState>, req: &http::Request) -> (Route, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/units") => (Route::IngestUnits, ingest(state, req)),
        ("GET", "/v1/rules") => (Route::Rules, rules(state, req)),
        ("GET", "/v1/items") => (Route::Items, items(state, req)),
        ("GET", "/v1/health") => (Route::Health, health(state)),
        ("GET", "/metrics") => (Route::Metrics, metrics(state)),
        ("POST", "/v1/shutdown") => (Route::Shutdown, shutdown(state)),
        ("GET", "/v1/debug/traces") => (Route::DebugTraces, debug_traces(state, req)),
        (
            _,
            "/v1/units" | "/v1/rules" | "/v1/items" | "/v1/health" | "/metrics"
            | "/v1/shutdown" | "/v1/debug/traces",
        ) => (Route::Other, Response::error(405, "method not allowed")),
        _ => (Route::Other, Response::error(404, "no such endpoint")),
    }
}

/// Adds the degraded marker header and counts the partial response.
fn degrade(resp: Response, degraded: &[u32]) -> Response {
    if degraded.is_empty() {
        return resp;
    }
    SHARD.add_partial_response();
    resp.with_header("X-Car-Shards-Degraded", degraded.len().to_string())
}

fn shard_state_json(shards: &[(u32, WorkerState)]) -> Json {
    Json::Array(
        shards
            .iter()
            .map(|&(id, s)| {
                object([
                    ("shard_id", Json::from(u64::from(id))),
                    ("state", Json::from(s.label())),
                ])
            })
            .collect(),
    )
}

fn ingest(state: &Arc<RouterState>, req: &http::Request) -> Response {
    if state.is_shutting_down() {
        return Response::error(503, "router is shutting down");
    }
    let (units, _) = match car_serve::routes::parse_units_body(&req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::error(400, &msg),
    };
    if units.is_empty() {
        return Response::error(400, "empty unit batch");
    }
    let n = units.len();
    let wait = matches!(req.query_param("wait"), Some("true" | "1"));
    // The batch is committed to the replay ring inside route_units, so
    // from here the answer must be a non-retryable 2xx: a 503 would make
    // RetryingClient re-send a batch the router already owns, buffering
    // and replaying the same units twice. With every worker down this is
    // a 202 with applied=false and partial=true; replay catches the
    // workers up on re-admission.
    let outcome = state.route_units(units, wait);
    let degraded = outcome.degraded();
    let status = if wait && outcome.applied { 200 } else { 202 };
    let body = object([
        ("accepted", Json::from(n)),
        ("applied", Json::from(outcome.applied)),
        ("partial", Json::from(!degraded.is_empty())),
        ("units_routed", Json::from(outcome.units_routed)),
        ("shards", shard_state_json(&outcome.states())),
    ]);
    degrade(Response::json(status, &body), &degraded)
}

/// Builds the worker fan-out target from the router-validated
/// parameters only, re-rendered from their parsed values. Client query
/// strings arrive percent-DECODED and must never be copied verbatim
/// into the worker request line: a value like `%0d%0a...` would inject
/// CR/LF (request smuggling) into every worker connection. Rendering
/// `u32`/`f64` values emits only `[0-9.eE-]`, which is always safe in a
/// request target; parameters the router does not understand are
/// dropped (workers ignore unknown parameters anyway).
fn worker_rules_target(
    length: Option<u32>,
    offset: Option<u32>,
    min_confidence: Option<f64>,
) -> String {
    let mut target = String::from("/v1/rules");
    let params = [
        ("length", length.map(|v| v.to_string())),
        ("offset", offset.map(|v| v.to_string())),
        // f64 Display is the shortest string that round-trips to the
        // same bits, so the worker parses the exact client value.
        ("min_confidence", min_confidence.map(|v| v.to_string())),
    ];
    for (name, value) in params.iter().filter_map(|(n, v)| v.as_ref().map(|v| (n, v))) {
        target.push(if target.len() == "/v1/rules".len() { '?' } else { '&' });
        target.push_str(name);
        target.push('=');
        target.push_str(value);
    }
    target
}

fn parse_u32_param(req: &http::Request, name: &str) -> Result<Option<u32>, Response> {
    match req.query_param(name) {
        None => Ok(None),
        Some(raw) => raw.parse::<u32>().map(Some).map_err(|_| {
            Response::error(400, &format!("invalid {name} `{raw}` (need a u32)"))
        }),
    }
}

fn rules(state: &Arc<RouterState>, req: &http::Request) -> Response {
    let length = match parse_u32_param(req, "length") {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let offset = match parse_u32_param(req, "offset") {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    // Validated here so only a parsed value ever reaches the worker
    // request line; the stricter threshold check (against the worker's
    // mining configuration) still happens worker-side and surfaces as a
    // forwarded 400.
    let min_confidence = match req.query_param("min_confidence") {
        None => None,
        Some(raw) => match raw.parse::<f64>() {
            Ok(q) if (0.0..=1.0).contains(&q) => Some(q),
            _ => {
                return Response::error(
                    400,
                    &format!("invalid min_confidence `{raw}` (need 0..=1)"),
                )
            }
        },
    };
    let target = worker_rules_target(length, offset, min_confidence);
    // The request's deadline budget: the router's configured bound,
    // shrunk by the client's own deadline when one is propagated in.
    let budget = req
        .header("x-car-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .map_or(state.config.request_budget, |d| d.min(state.config.request_budget));
    let deadline = Instant::now() + budget;

    let leg_ctx = LegTraceContext::capture();
    let legs: Vec<Leg> = std::thread::scope(|scope| {
        let handles: Vec<_> = state
            .workers
            .iter()
            .map(|worker| {
                let target = target.as_str();
                scope.spawn(move || {
                    let mut w = worker.lock_or_recover();
                    let leg_uid = trace::mint_span_uid();
                    let start_us = trace::wall_now_us();
                    let started = Instant::now();
                    let breaker = w.breaker.state().label();
                    let mut worker_spans = Vec::new();
                    let mut epoch_attr = None;
                    let leg = (|w: &mut Worker| {
                        if w.state() != WorkerState::Up {
                            return Leg::Skipped(w.shard_id);
                        }
                        let remaining =
                            deadline.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            SHARD.add_fanout_failures(1);
                            SHARD.add_deadline_exceeded();
                            return Leg::TimedOut(w.shard_id);
                        }
                        // Forward the remaining budget so the worker can
                        // abort escalated re-detection instead of pinning
                        // the merge past the deadline — and the trace
                        // context, so the worker's spans nest under this
                        // leg.
                        let mut headers = vec![(
                            "X-Car-Deadline-Ms",
                            u64::try_from(remaining.as_millis())
                                .unwrap_or(u64::MAX)
                                .to_string(),
                        )];
                        if let Some(ctx) = leg_ctx {
                            headers.extend(ctx.headers(leg_uid));
                        }
                        SHARD.add_fanout_legs(1);
                        let response = w.client.request_with(
                            "GET",
                            target,
                            &headers,
                            None,
                            Some(deadline),
                        );
                        if let Some(ctx) = leg_ctx {
                            worker_spans = ctx.worker_spans(response.as_ref());
                        }
                        match response {
                            Some(resp) if resp.status == 200 => {
                                match crate::merge::parse_rules_body(&resp.body_text()) {
                                    Ok(view) => {
                                        w.record_success();
                                        let epoch = resp
                                            .header("x-car-epoch")
                                            .and_then(|v| v.parse::<u64>().ok());
                                        epoch_attr = epoch;
                                        Leg::Ok { view, epoch }
                                    }
                                    Err(msg) => {
                                        SHARD.add_fanout_failures(1);
                                        car_obs::warn!(
                                            "shard",
                                            [shard = w.shard_id],
                                            "unparsable rules body: {msg}"
                                        );
                                        Leg::Failed(w.shard_id)
                                    }
                                }
                            }
                            Some(resp) if resp.status == 409 => Leg::Warming,
                            Some(resp) if resp.status == 400 => {
                                // The worker's body is already a JSON error
                                // document; forward it untouched rather than
                                // re-wrapping (double-encoding) it.
                                Leg::BadRequest(Response::json_bytes(400, resp.body))
                            }
                            Some(resp) if resp.status == 504 => {
                                SHARD.add_fanout_failures(1);
                                SHARD.add_deadline_exceeded();
                                Leg::TimedOut(w.shard_id)
                            }
                            Some(_) => {
                                SHARD.add_fanout_failures(1);
                                w.record_failure();
                                Leg::Failed(w.shard_id)
                            }
                            None => {
                                SHARD.add_fanout_failures(1);
                                if Instant::now() >= deadline {
                                    // The attempt was cut short by the budget,
                                    // not necessarily by a sick worker.
                                    SHARD.add_deadline_exceeded();
                                    Leg::TimedOut(w.shard_id)
                                } else {
                                    w.record_failure();
                                    Leg::Failed(w.shard_id)
                                }
                            }
                        }
                    })(&mut w);
                    let spans = leg_ctx.map_or_else(Vec::new, |ctx| {
                        let mut attrs = vec![
                            ("shard".into(), w.shard_id.to_string()),
                            ("breaker".into(), breaker.to_string()),
                            ("outcome".into(), leg_outcome(&leg).into()),
                        ];
                        if let Some(epoch) = epoch_attr {
                            attrs.push(("epoch".into(), epoch.to_string()));
                        }
                        let mut spans = std::mem::take(&mut worker_spans);
                        spans.push(ctx.leg_span(
                            leg_uid,
                            "router.leg.rules",
                            start_us,
                            started,
                            attrs,
                        ));
                        spans
                    });
                    (leg, spans)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(shard_id, h)| match h.join() {
                Ok((leg, spans)) => {
                    for span in spans {
                        trace::record_span(span);
                    }
                    leg
                }
                Err(_) => {
                    log_warn("shard fan-out thread panicked");
                    Leg::Failed(shard_id as u32)
                }
            })
            .collect()
    });

    let mut views = Vec::new();
    let mut epochs = Vec::new();
    let mut degraded = Vec::new();
    let mut warming = false;
    let mut timed_out = false;
    for leg in legs {
        match leg {
            Leg::Ok { view, epoch } => {
                epochs.extend(epoch);
                views.push(view);
            }
            Leg::Skipped(id) | Leg::Failed(id) => degraded.push(id),
            Leg::TimedOut(id) => {
                timed_out = true;
                degraded.push(id);
            }
            Leg::Warming => warming = true,
            // A worker rejected the parameters; every worker shares the
            // configuration, so forward its answer as ours.
            Leg::BadRequest(resp) => return resp,
        }
    }
    degraded.sort_unstable();
    if warming {
        return degrade(
            Response::error(409, "the window holds fewer units than l_max"),
            &degraded,
        );
    }
    if views.is_empty() {
        if timed_out {
            return degrade(Response::error(504, "deadline_exceeded"), &degraded);
        }
        return degrade(Response::error(503, "no live shard workers"), &degraded);
    }

    let units_retained = views.iter().map(|v| v.units_retained).max().unwrap_or(0);
    let window = views.iter().map(|v| v.window).max().unwrap_or(0);
    // Ingest is applied asynchronously per worker, so legs can answer
    // at different epochs; surfacing the spread lets clients detect a
    // merged view that matches no single-node snapshot (epoch_min !=
    // epoch_max) and re-query if they need agreement.
    let epoch_json = |e: Option<&u64>| e.map_or(Json::Null, |&e| Json::from(e));
    let merged = crate::merge::merge_rule_views(views.into_iter().map(|v| v.rules));
    let rendered: Vec<Json> = merged
        .iter()
        .filter_map(|r| car_serve::routes::rule_to_json(r, length, offset))
        .collect();
    let body = object([
        ("units_retained", Json::from(units_retained)),
        ("window", Json::from(window)),
        ("epoch_min", epoch_json(epochs.iter().min())),
        ("epoch_max", epoch_json(epochs.iter().max())),
        ("count", Json::from(rendered.len())),
        ("partial", Json::from(!degraded.is_empty())),
        (
            "degraded",
            Json::Array(degraded.iter().map(|&id| Json::from(u64::from(id))).collect()),
        ),
        ("rules", Json::Array(rendered)),
    ]);
    degrade(Response::json(200, &body), &degraded)
}

/// One `/v1/items` fan-out leg's disposition. Unlike rules legs there
/// is no warming or bad-request case: workers answer item supports at
/// any window occupancy and the route takes no parameters.
enum ItemsLeg {
    Ok { view: crate::merge::ItemsView, epoch: Option<u64> },
    Skipped(u32),
    Failed(u32),
    TimedOut(u32),
}

fn items_leg_outcome(leg: &ItemsLeg) -> &'static str {
    match leg {
        ItemsLeg::Ok { .. } => "ok",
        ItemsLeg::Skipped(_) => "skipped",
        ItemsLeg::Failed(_) => "failed",
        ItemsLeg::TimedOut(_) => "timed_out",
    }
}

/// Fans `GET /v1/items` out to all live workers and merges the
/// per-item support totals with a plain sum — each transaction is
/// owned by exactly one shard, so no support is counted twice. Down
/// or deadline-blown shards are excluded and surface as `partial`.
fn items(state: &Arc<RouterState>, req: &http::Request) -> Response {
    let budget = req
        .header("x-car-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .map_or(state.config.request_budget, |d| d.min(state.config.request_budget));
    let deadline = Instant::now() + budget;

    let leg_ctx = LegTraceContext::capture();
    let legs: Vec<ItemsLeg> = std::thread::scope(|scope| {
        let handles: Vec<_> = state
            .workers
            .iter()
            .map(|worker| {
                scope.spawn(move || {
                    let mut w = worker.lock_or_recover();
                    let leg_uid = trace::mint_span_uid();
                    let start_us = trace::wall_now_us();
                    let started = Instant::now();
                    let breaker = w.breaker.state().label();
                    let mut worker_spans = Vec::new();
                    let mut epoch_attr = None;
                    let leg = (|w: &mut Worker| {
                        if w.state() != WorkerState::Up {
                            return ItemsLeg::Skipped(w.shard_id);
                        }
                        let remaining =
                            deadline.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            SHARD.add_fanout_failures(1);
                            SHARD.add_deadline_exceeded();
                            return ItemsLeg::TimedOut(w.shard_id);
                        }
                        let mut headers = vec![(
                            "X-Car-Deadline-Ms",
                            u64::try_from(remaining.as_millis())
                                .unwrap_or(u64::MAX)
                                .to_string(),
                        )];
                        if let Some(ctx) = leg_ctx {
                            headers.extend(ctx.headers(leg_uid));
                        }
                        SHARD.add_fanout_legs(1);
                        let response = w.client.request_with(
                            "GET",
                            "/v1/items",
                            &headers,
                            None,
                            Some(deadline),
                        );
                        if let Some(ctx) = leg_ctx {
                            worker_spans = ctx.worker_spans(response.as_ref());
                        }
                        match response {
                            Some(resp) if resp.status == 200 => {
                                match crate::merge::parse_items_body(&resp.body_text()) {
                                    Ok(view) => {
                                        w.record_success();
                                        let epoch = resp
                                            .header("x-car-epoch")
                                            .and_then(|v| v.parse::<u64>().ok());
                                        epoch_attr = epoch;
                                        ItemsLeg::Ok { view, epoch }
                                    }
                                    Err(msg) => {
                                        SHARD.add_fanout_failures(1);
                                        car_obs::warn!(
                                            "shard",
                                            [shard = w.shard_id],
                                            "unparsable items body: {msg}"
                                        );
                                        ItemsLeg::Failed(w.shard_id)
                                    }
                                }
                            }
                            Some(resp) if resp.status == 504 => {
                                SHARD.add_fanout_failures(1);
                                SHARD.add_deadline_exceeded();
                                ItemsLeg::TimedOut(w.shard_id)
                            }
                            Some(_) => {
                                SHARD.add_fanout_failures(1);
                                w.record_failure();
                                ItemsLeg::Failed(w.shard_id)
                            }
                            None => {
                                SHARD.add_fanout_failures(1);
                                if Instant::now() >= deadline {
                                    SHARD.add_deadline_exceeded();
                                    ItemsLeg::TimedOut(w.shard_id)
                                } else {
                                    w.record_failure();
                                    ItemsLeg::Failed(w.shard_id)
                                }
                            }
                        }
                    })(&mut w);
                    let spans = leg_ctx.map_or_else(Vec::new, |ctx| {
                        let mut attrs = vec![
                            ("shard".into(), w.shard_id.to_string()),
                            ("breaker".into(), breaker.to_string()),
                            ("outcome".into(), items_leg_outcome(&leg).into()),
                        ];
                        if let Some(epoch) = epoch_attr {
                            attrs.push(("epoch".into(), epoch.to_string()));
                        }
                        let mut spans = std::mem::take(&mut worker_spans);
                        spans.push(ctx.leg_span(
                            leg_uid,
                            "router.leg.items",
                            start_us,
                            started,
                            attrs,
                        ));
                        spans
                    });
                    (leg, spans)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(shard_id, h)| match h.join() {
                Ok((leg, spans)) => {
                    for span in spans {
                        trace::record_span(span);
                    }
                    leg
                }
                Err(_) => {
                    log_warn("shard fan-out thread panicked");
                    ItemsLeg::Failed(shard_id as u32)
                }
            })
            .collect()
    });

    let mut views = Vec::new();
    let mut epochs = Vec::new();
    let mut degraded = Vec::new();
    let mut timed_out = false;
    for leg in legs {
        match leg {
            ItemsLeg::Ok { view, epoch } => {
                epochs.extend(epoch);
                views.push(view);
            }
            ItemsLeg::Skipped(id) | ItemsLeg::Failed(id) => degraded.push(id),
            ItemsLeg::TimedOut(id) => {
                timed_out = true;
                degraded.push(id);
            }
        }
    }
    degraded.sort_unstable();
    if views.is_empty() {
        if timed_out {
            return degrade(Response::error(504, "deadline_exceeded"), &degraded);
        }
        return degrade(Response::error(503, "no live shard workers"), &degraded);
    }

    let units_retained = views.iter().map(|v| v.units_retained).max().unwrap_or(0);
    let window = views.iter().map(|v| v.window).max().unwrap_or(0);
    let epoch_json = |e: Option<&u64>| e.map_or(Json::Null, |&e| Json::from(e));
    let merged = crate::merge::merge_item_supports(views.into_iter().map(|v| v.items));
    let rendered: Vec<Json> = merged
        .iter()
        .map(|(id, support)| {
            object([("id", Json::from(*id)), ("support", Json::from(*support))])
        })
        .collect();
    let body = object([
        ("units_retained", Json::from(units_retained)),
        ("window", Json::from(window)),
        ("epoch_min", epoch_json(epochs.iter().min())),
        ("epoch_max", epoch_json(epochs.iter().max())),
        ("count", Json::from(rendered.len())),
        ("partial", Json::from(!degraded.is_empty())),
        (
            "degraded",
            Json::Array(degraded.iter().map(|&id| Json::from(u64::from(id))).collect()),
        ),
        ("items", Json::Array(rendered)),
    ]);
    degrade(Response::json(200, &body), &degraded)
}

fn health(state: &Arc<RouterState>) -> Response {
    let snapshots = state.worker_snapshots();
    let shards: Vec<(u32, WorkerState)> =
        snapshots.iter().map(|s| (s.shard_id, s.state)).collect();
    let degraded = shards.iter().filter(|(_, s)| *s != WorkerState::Up).count();
    // Gauge, not the ingest lock: health must answer promptly even
    // while a fan-out holds `ingest` through worker retries.
    // audit:allow(a6-relaxed-mirror) reason="documented staleness contract: the gauge is an advisory mirror of ingest-lock state so health never blocks behind a fan-out"
    let units_routed = state.units_routed_gauge.load(Ordering::Relaxed);
    let status = if state.is_shutting_down() { "shutting_down" } else { "ok" };
    let breakers = Json::Array(
        snapshots
            .iter()
            .map(|s| {
                object([
                    ("shard_id", Json::from(u64::from(s.shard_id))),
                    ("state", Json::from(s.breaker.label())),
                    (
                        "consecutive_failures",
                        Json::from(u64::from(s.consecutive_failures)),
                    ),
                    ("opens", Json::from(s.opens)),
                ])
            })
            .collect(),
    );
    Response::json(
        200,
        &object([
            ("status", Json::from(status)),
            ("ready", Json::from(!state.is_shutting_down())),
            ("role", Json::from("router")),
            ("shard_count", Json::from(u64::from(state.ring.count()))),
            ("degraded_shards", Json::from(degraded)),
            ("units_routed", Json::from(units_routed)),
            ("workers", shard_state_json(&shards)),
            ("breakers", breakers),
        ]),
    )
}

fn metrics(state: &Arc<RouterState>) -> Response {
    let snapshots = state.worker_snapshots();
    let shards: Vec<(u32, WorkerState)> =
        snapshots.iter().map(|s| (s.shard_id, s.state)).collect();
    let count_state =
        |s: WorkerState| shards.iter().filter(|(_, w)| *w == s).count() as f64;
    // audit:allow(a6-relaxed-mirror) reason="metrics scrape reads the advisory replay-depth mirror; exact depth is only meaningful under the ingest lock and a scrape must not take it"
    let replay_buffered = state.replay_depth_gauge.load(Ordering::Relaxed) as f64;
    let mut text = state.metrics.render_prometheus(&[
        ("car_shard_workers_up", "Shard workers currently admitted.", {
            count_state(WorkerState::Up)
        }),
        ("car_shard_workers_down", "Shard workers currently excluded.", {
            count_state(WorkerState::Down)
        }),
        (
            "car_shard_workers_stale",
            "Shard workers terminally behind the replay ring.",
            count_state(WorkerState::Stale),
        ),
        (
            "car_shard_replay_buffered_units",
            "Full units retained for catch-up replay.",
            replay_buffered,
        ),
    ]);
    // Per-shard breaker state as a labeled gauge; labeled samples are
    // rendered by hand because `render_prometheus` takes unlabeled
    // names only.
    text.push_str(
        "# HELP car_shard_breaker_state Per-shard circuit breaker state \
         (0=closed, 1=half_open, 2=open, 3=stale).\n\
         # TYPE car_shard_breaker_state gauge\n",
    );
    for snapshot in &snapshots {
        text.push_str("car_shard_breaker_state{shard=\"");
        text.push_str(&snapshot.shard_id.to_string());
        text.push_str("\"} ");
        text.push_str(&snapshot.gauge_value().to_string());
        text.push('\n');
    }
    let snap = SHARD.snapshot();
    for (name, help, value) in [
        (
            "car_shard_fanout_total",
            "Rule-query legs fanned out to live shard workers.",
            snap.fanout_legs,
        ),
        (
            "car_shard_fanout_failures_total",
            "Fan-out legs that failed or returned an unusable body.",
            snap.fanout_failures,
        ),
        (
            "car_shard_down_total",
            "Transitions of a worker into the down state.",
            snap.down_transitions,
        ),
        (
            "car_shard_readmissions_total",
            "Workers re-admitted after catch-up replay.",
            snap.readmissions,
        ),
        (
            "car_shard_catchup_units_total",
            "Units replayed to re-admitted workers.",
            snap.catchup_units,
        ),
        (
            "car_shard_units_routed_total",
            "Full units routed across the cluster.",
            snap.units_routed,
        ),
        (
            "car_shard_partial_responses_total",
            "Responses served with one or more shards excluded.",
            snap.partial_responses,
        ),
        (
            "car_shard_deadline_exceeded_total",
            "Fan-out legs lost to an exhausted deadline budget.",
            snap.deadline_exceeded,
        ),
    ] {
        text.push_str("# HELP ");
        text.push_str(name);
        text.push(' ');
        text.push_str(help);
        text.push_str("\n# TYPE ");
        text.push_str(name);
        text.push_str(" counter\n");
        text.push_str(name);
        text.push(' ');
        text.push_str(&value.to_string());
        text.push('\n');
    }
    // Trace tail-retention counters (car_trace_retained_total and
    // friends) come in via render_prometheus above — the router and
    // the store share the process-global TRACE counters, so rendering
    // them here as well would emit a duplicate family.
    Response::text(200, text)
}

/// `GET /v1/debug/traces`: retained-trace summaries, or — with
/// `?trace_id=HEX` — one assembled tree, as span JSON or (with
/// `&format=chrome`) Chrome `trace_event` JSON.
fn debug_traces(state: &Arc<RouterState>, req: &http::Request) -> Response {
    let Some(raw) = req.query_param("trace_id") else {
        let traces: Vec<Json> = state
            .traces
            .summaries()
            .iter()
            .map(|s| {
                object([
                    ("trace_id", Json::from(s.trace_id.to_hex())),
                    ("duration_us", Json::from(s.duration_us)),
                    ("spans", Json::from(s.spans)),
                    ("reason", Json::from(s.reason.label())),
                ])
            })
            .collect();
        return Response::json(
            200,
            &object([
                ("count", Json::from(traces.len())),
                ("capacity", Json::from(state.traces.policy().capacity)),
                ("traces", Json::Array(traces)),
            ]),
        );
    };
    let Some(trace_id) = TraceId::from_hex(raw) else {
        return Response::error(
            400,
            "invalid trace_id (need 32 lowercase hex digits, non-zero)",
        );
    };
    let Some(stored) = state.traces.get(trace_id) else {
        return Response::error(404, "no retained trace with that id");
    };
    if req.query_param("format") == Some("chrome") {
        return Response::json_bytes(
            200,
            trace::chrome_trace_json(&stored.trace).into_bytes(),
        );
    }
    let spans: Vec<Json> =
        stored.trace.spans.iter().map(car_serve::routes::span_to_json).collect();
    Response::json(
        200,
        &object([
            ("trace_id", Json::from(trace_id.to_hex())),
            ("reason", Json::from(stored.reason.label())),
            ("duration_us", Json::from(stored.trace.duration_us)),
            ("count", Json::from(spans.len())),
            ("spans", Json::Array(spans)),
        ]),
    )
}

fn shutdown(state: &Arc<RouterState>) -> Response {
    state.begin_shutdown();
    Response::json(200, &object([("status", Json::from("shutting_down"))])).with_close()
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/// Final statistics reported when the router exits.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RouterStats {
    /// HTTP requests served by the router.
    pub requests: u64,
    /// Full units routed across the cluster.
    pub units_routed: u64,
    /// Seconds the router ran.
    pub uptime: Duration,
}

/// A running router.
pub struct RouterHandle {
    /// The actually-bound address (resolves port 0).
    pub addr: SocketAddr,
    state: Arc<RouterState>,
    accept_thread: JoinHandle<()>,
    prober_thread: JoinHandle<()>,
    started: Instant,
}

impl RouterHandle {
    /// The shared state (tests and embedding callers).
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Asks the router to shut down gracefully (idempotent).
    pub fn trigger_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Blocks until the router has exited; optionally shuts workers
    /// down too (`RouterConfig::shutdown_workers`).
    pub fn wait(self) -> RouterStats {
        if self.accept_thread.join().is_err() {
            log_warn("router accept thread panicked");
        }
        if self.prober_thread.join().is_err() {
            log_warn("router prober thread panicked");
        }
        if self.state.config.shutdown_workers {
            for worker in &self.state.workers {
                let mut w = worker.lock_or_recover();
                let _ = w.client.request_once("POST", "/v1/shutdown", None);
            }
        }
        RouterStats {
            requests: self.state.metrics.total_requests(),
            // audit:allow(a6-relaxed-mirror) reason="final stats snapshot after worker shutdown; the routing threads that wrote under the ingest lock have already been joined"
            units_routed: self.state.units_routed_gauge.load(Ordering::Relaxed),
            uptime: self.started.elapsed(),
        }
    }
}

/// Boots the router: binds the listener, contacts every worker once
/// (workers that do not answer start `Down` and are re-admitted by the
/// prober), and spawns the accept and prober threads.
///
/// # Errors
///
/// [`RouterError::Config`] for an empty worker list,
/// [`RouterError::Io`] when the address cannot be bound or threads
/// cannot spawn.
pub fn run_router(config: RouterConfig) -> Result<RouterHandle, RouterError> {
    car_obs::init_from_env();
    let worker_count = u32::try_from(config.workers.len())
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| RouterError::Config("at least one worker is required".into()))?;
    let Some(ring) = ShardRing::new(worker_count) else {
        return Err(RouterError::Config("at least one worker is required".into()));
    };

    let workers: Vec<Mutex<Worker>> = config
        .workers
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let mut client = RetryingClient::new(addr.clone(), config.retry);
            let mut breaker = Breaker::new(config.breaker);
            let baseline = match probe_health(&mut client) {
                Some(h) if h.ready => Some(h.accepted),
                _ => {
                    // Never seen healthy: start Open; the prober's
                    // Half-Open trickle admits it once it answers.
                    breaker.open_immediately(Instant::now());
                    SHARD.add_down_transition();
                    None
                }
            };
            Mutex::new(Worker {
                shard_id: i as u32,
                addr: addr.clone(),
                client,
                breaker,
                stale: false,
                baseline,
            })
        })
        .collect();

    let state = Arc::new(RouterState {
        ring,
        workers,
        ingest: Mutex::new(IngestState {
            units_routed: 0,
            replay: VecDeque::with_capacity(config.replay_capacity),
        }),
        units_routed_gauge: AtomicU64::new(0),
        replay_depth_gauge: AtomicU64::new(0),
        metrics: Metrics::new(),
        traces: TraceStore::new(TraceStorePolicy::default()),
        shutdown: AtomicBool::new(false),
        config,
    });

    let addrs: Vec<SocketAddr> =
        state.config.addr.to_socket_addrs().map_err(RouterError::Io)?.collect();
    let listener = TcpListener::bind(&addrs[..]).map_err(RouterError::Io)?;
    listener.set_nonblocking(true).map_err(RouterError::Io)?;
    let addr = listener.local_addr().map_err(RouterError::Io)?;

    let pool = car_serve::pool::ThreadPool::new(state.config.threads, "car-shard-worker")
        .map_err(RouterError::Io)?;
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("car-shard-accept".into())
        .spawn(move || accept_loop(&listener, &accept_state, pool))
        .map_err(RouterError::Io)?;

    let prober_state = Arc::clone(&state);
    let prober_thread = std::thread::Builder::new()
        .name("car-shard-probe".into())
        .spawn(move || prober_loop(&prober_state))
        .map_err(|e| {
            // Unwind the accept loop before reporting the failure.
            state.begin_shutdown();
            RouterError::Io(e)
        })?;

    car_obs::info!(
        "shard",
        [addr = addr, shards = state.ring.count()],
        "shard router listening"
    );
    Ok(RouterHandle {
        addr,
        state,
        accept_thread,
        prober_thread,
        started: Instant::now(),
    })
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<RouterState>,
    pool: car_serve::pool::ThreadPool,
) {
    loop {
        if state.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                pool.execute(move || serve_connection(stream, &state));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    pool.join();
}

fn prober_loop(state: &Arc<RouterState>) {
    while !state.is_shutting_down() {
        // Sleep in short slices so shutdown is prompt.
        let mut remaining = state.config.probe_interval;
        while !remaining.is_zero() && !state.is_shutting_down() {
            let slice = remaining.min(ACCEPT_POLL);
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
        if state.is_shutting_down() {
            break;
        }
        state.probe_once();
    }
}

/// Serves one router connection until close, error, limit, or shutdown.
fn serve_connection(stream: TcpStream, state: &Arc<RouterState>) {
    let io_timeout = state.config.io_timeout;
    if stream.set_read_timeout(Some(io_timeout)).is_err()
        || stream.set_write_timeout(Some(io_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    for _ in 0..MAX_REQUESTS_PER_CONNECTION {
        let started = Instant::now();
        let request = match http::read_request(&mut reader, state.config.max_body_bytes) {
            Ok(request) => request,
            Err(http::ParseError::ConnectionClosed) => return,
            Err(e) => {
                state.metrics.record_parse_error();
                let (status, _) = e.status();
                // audit:allow(a4-discard) reason="best-effort courtesy reply on a connection that already failed parsing; the connection closes either way"
                let _ = Response::error(status, &e.to_string())
                    .with_close()
                    .write_to(&mut writer);
                if !matches!(e, http::ParseError::Timeout) {
                    state.metrics.record_request(Route::Other, status, started.elapsed());
                }
                return;
            }
        };
        let request_id = car_obs::next_request_id();
        // Adopt an inbound trace context (a client propagating its own
        // trace through the router) or mint a fresh one; malformed
        // headers start a fresh trace, never an error.
        let ctx = trace::TraceContext::from_headers(
            request.header(trace::TRACE_ID_HEADER),
            request.header(trace::PARENT_SPAN_HEADER),
        );
        let request_trace = trace::begin_request(ctx, "router.request");
        let trace_hex =
            request_trace.trace_id().map_or_else(String::new, |id| id.to_hex());
        let (route, mut response) = handle(state, &request);
        trace::annotate("route", route.label());
        trace::annotate("status", &response.status.to_string());
        // Finish before writing so the response can carry the trace id;
        // assemble the tree (router legs + worker spans) and offer it
        // for tail retention — errored traces are always kept.
        if let Some(finished) = request_trace.finish() {
            response =
                response.with_header(trace::TRACE_ID_HEADER, finished.trace_id.to_hex());
            let errored = response.status >= 500;
            let assembled =
                trace::assemble(finished.trace_id, finished.root_uid, finished.spans);
            state.traces.offer(assembled, errored);
        }
        if request.wants_close() || state.is_shutting_down() {
            response.close = true;
        }
        let close = response.close;
        let write_result = response.write_to(&mut writer);
        state.metrics.record_request(route, response.status, started.elapsed());
        car_obs::debug!(
            "shard",
            [
                id = request_id,
                trace_id = trace_hex,
                status = response.status,
                us = started.elapsed().as_micros()
            ],
            "{} {}",
            request.method,
            request.path
        );
        if close || write_result.is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_target_renders_only_validated_params() {
        assert_eq!(worker_rules_target(None, None, None), "/v1/rules");
        assert_eq!(worker_rules_target(Some(3), None, None), "/v1/rules?length=3");
        assert_eq!(
            worker_rules_target(Some(3), Some(1), Some(0.9)),
            "/v1/rules?length=3&offset=1&min_confidence=0.9"
        );
        assert_eq!(
            worker_rules_target(None, None, Some(0.125)),
            "/v1/rules?min_confidence=0.125"
        );
    }

    #[test]
    fn worker_target_never_contains_request_line_breakers() {
        // The target is rebuilt from parsed numbers, so no decoded
        // client bytes — CR/LF, spaces, separators — can appear even
        // for adversarial float shapes.
        for q in [0.0, 1.0, 1e-300, 0.1 + 0.2] {
            let target = worker_rules_target(Some(u32::MAX), Some(0), Some(q));
            assert!(
                target.bytes().all(|b| b.is_ascii_graphic()),
                "unsafe byte in {target:?}"
            );
            let parsed: f64 = target.rsplit('=').next().unwrap().parse().unwrap();
            assert_eq!(parsed.to_bits(), q.to_bits(), "must round-trip exactly");
        }
    }
}
