//! Item-space partitioning: rendezvous (highest-random-weight) hashing
//! of transactions onto shard workers.
//!
//! Every transaction is assigned to exactly one shard by hashing a
//! single *partition key* item ([`PartitionKey`]) against each shard id
//! and picking the highest weight. Rendezvous hashing was chosen over a
//! ring of virtual nodes because the shard count is small and static
//! per cluster run: it needs no ring state, gives perfectly
//! deterministic placement (the proptest oracle recomputes it
//! independently), and keeps the minimal-disruption property if a
//! resize is ever implemented.
//!
//! [`ShardRing::split_unit`] preserves the unit structure: every shard
//! receives a (possibly empty) sub-unit for *every* routed unit, so
//! unit indices — and therefore cycle offsets — stay aligned across the
//! cluster. An empty sub-unit is the mechanism that keeps a shard's
//! clock ticking even when no transaction hashed to it.

use car_itemset::ItemSet;

/// Which item of a transaction selects the shard it is routed to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionKey {
    /// The smallest item id in the transaction (the default). Under the
    /// partition-pure client contract — all items of a transaction drawn
    /// from one shard's item pool — any item of the transaction selects
    /// the same shard, so the choice is arbitrary but must be fixed.
    #[default]
    MinItem,
    /// The largest item id in the transaction.
    MaxItem,
}

impl std::str::FromStr for PartitionKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "min-item" => Ok(PartitionKey::MinItem),
            "max-item" => Ok(PartitionKey::MaxItem),
            other => Err(format!("unknown partition key `{other}` (min-item|max-item)")),
        }
    }
}

impl std::fmt::Display for PartitionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PartitionKey::MinItem => "min-item",
            PartitionKey::MaxItem => "max-item",
        })
    }
}

/// The splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fixed set of `count` shards with rendezvous-hash placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRing {
    count: u32,
}

impl ShardRing {
    /// Creates a ring over `count` shards; `None` when `count == 0`.
    pub fn new(count: u32) -> Option<ShardRing> {
        (count > 0).then_some(ShardRing { count })
    }

    /// Number of shards.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The shard owning `key`: the shard id whose mixed weight
    /// `mix(key ⊕ mix(shard))` is highest (ties broken toward the lower
    /// id, though the mixer makes them vanishingly rare).
    pub fn owner_of_key(&self, key: u64) -> u32 {
        let mut best = 0u32;
        let mut best_weight = 0u64;
        for shard in 0..self.count {
            let weight = mix(key ^ mix(u64::from(shard) | 1 << 32));
            if shard == 0 || weight > best_weight {
                best = shard;
                best_weight = weight;
            }
        }
        best
    }

    /// The shard owning a transaction, keyed by `key`. Empty
    /// transactions carry no item to hash and go to shard 0; they hold
    /// no itemset, so placement cannot affect any rule's counts.
    pub fn owner_of(&self, tx: &ItemSet, key: PartitionKey) -> u32 {
        let ids = tx.iter().map(|item| item.id());
        let keyed = match key {
            PartitionKey::MinItem => ids.min(),
            PartitionKey::MaxItem => ids.max(),
        };
        match keyed {
            Some(id) => self.owner_of_key(u64::from(id)),
            None => 0,
        }
    }

    /// Splits one time unit into `count` aligned sub-units: sub-unit
    /// `i` holds exactly the transactions owned by shard `i`, and every
    /// shard gets an entry (possibly empty) so unit indices advance in
    /// lockstep across the cluster.
    pub fn split_unit(&self, unit: &[ItemSet], key: PartitionKey) -> Vec<Vec<ItemSet>> {
        let mut out: Vec<Vec<ItemSet>> = (0..self.count).map(|_| Vec::new()).collect();
        for tx in unit {
            let owner = self.owner_of(tx, key) as usize;
            if let Some(sub) = out.get_mut(owner) {
                sub.push(tx.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_is_rejected() {
        assert!(ShardRing::new(0).is_none());
        assert!(ShardRing::new(1).is_some());
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let ring = ShardRing::new(5).unwrap();
        for key in 0..2_000u64 {
            let a = ring.owner_of_key(key);
            assert!(a < 5);
            assert_eq!(a, ring.owner_of_key(key), "placement must be stable");
        }
    }

    #[test]
    fn placement_spreads_keys_across_shards() {
        let ring = ShardRing::new(4).unwrap();
        let mut counts = [0usize; 4];
        for key in 0..4_000u64 {
            counts[ring.owner_of_key(key) as usize] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            // Perfect balance would be 1000; demand a loose band.
            assert!((700..1300).contains(&n), "shard {shard} got {n} of 4000 keys");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = ShardRing::new(1).unwrap();
        for key in 0..100 {
            assert_eq!(ring.owner_of_key(key), 0);
        }
    }

    #[test]
    fn min_and_max_item_keys_differ_when_items_span_shards() {
        let ring = ShardRing::new(3).unwrap();
        // Find an itemset whose min and max items land on different shards.
        let mut found = false;
        for a in 0..50u32 {
            for b in (a + 1)..50u32 {
                if ring.owner_of_key(u64::from(a)) != ring.owner_of_key(u64::from(b)) {
                    let tx = ItemSet::from_ids([a, b]);
                    assert_eq!(
                        ring.owner_of(&tx, PartitionKey::MinItem),
                        ring.owner_of_key(u64::from(a))
                    );
                    assert_eq!(
                        ring.owner_of(&tx, PartitionKey::MaxItem),
                        ring.owner_of_key(u64::from(b))
                    );
                    found = true;
                }
            }
        }
        assert!(found, "3 shards must split 50 items somewhere");
    }

    #[test]
    fn split_preserves_every_transaction_exactly_once() {
        let ring = ShardRing::new(3).unwrap();
        let unit: Vec<ItemSet> = (0..30u32)
            .map(|i| ItemSet::from_ids([i, i + 1, i + 2]))
            .chain([ItemSet::from_ids::<[u32; 0]>([])])
            .collect();
        let splits = ring.split_unit(&unit, PartitionKey::MinItem);
        assert_eq!(splits.len(), 3);
        let total: usize = splits.iter().map(Vec::len).sum();
        assert_eq!(total, unit.len());
        // Every transaction appears in its owner's sub-unit.
        for tx in &unit {
            let owner = ring.owner_of(tx, PartitionKey::MinItem) as usize;
            assert!(splits[owner].contains(tx));
        }
        // The empty transaction went to shard 0.
        assert!(splits[0].iter().any(|tx| tx.is_empty()));
    }

    #[test]
    fn split_emits_empty_subunits_to_keep_indices_aligned() {
        let ring = ShardRing::new(4).unwrap();
        // A unit whose single transaction lands on exactly one shard:
        // the other three shards still receive (empty) sub-units.
        let unit = vec![ItemSet::from_ids([7u32])];
        let splits = ring.split_unit(&unit, PartitionKey::MinItem);
        assert_eq!(splits.len(), 4);
        assert_eq!(splits.iter().filter(|s| !s.is_empty()).count(), 1);
    }
}
