//! Parsing and merging per-shard rule views at the router.
//!
//! Each live worker answers `GET /v1/rules` with its own view of the
//! cyclic rules over its item-space partition. The router parses those
//! JSON bodies back into real [`CyclicRule`] values, merges views that
//! report the same rule (possible only when the partition-purity client
//! contract is violated), re-establishes cycle minimality across the
//! union with [`merge_minimal_cycle_lists`], and sorts the result
//! exactly as a single node sorts its query output — so the merged
//! `rules` array is byte-identical, rule for rule, once re-rendered
//! through the worker's own serializer
//! ([`car_serve::routes::rule_to_json`]).

use std::collections::BTreeMap;

use car_core::{CyclicRule, Rule};
use car_cycles::{merge_minimal_cycle_lists, Cycle};
use car_itemset::ItemSet;
use car_serve::json::Json;

/// One worker's parsed `GET /v1/rules` response.
#[derive(Clone, Debug)]
pub struct ShardView {
    /// Units the worker currently retains.
    pub units_retained: u64,
    /// The worker's configured window length.
    pub window: u64,
    /// The worker's rules, in its own (sorted) order.
    pub rules: Vec<CyclicRule>,
}

/// Parses a worker's rules body back into typed rules.
///
/// # Errors
///
/// A message naming the first missing or malformed field. A worker
/// answering `200` with an unparsable body is treated by the router as
/// a failed fan-out leg, not as an empty view.
pub fn parse_rules_body(text: &str) -> Result<ShardView, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let units_retained = doc
        .get("units_retained")
        .and_then(Json::as_u64)
        .ok_or("missing units_retained")?;
    let window = doc.get("window").and_then(Json::as_u64).ok_or("missing window")?;
    let rules_json = doc.get("rules").and_then(Json::as_array).ok_or("missing rules")?;
    let mut rules = Vec::with_capacity(rules_json.len());
    for (i, entry) in rules_json.iter().enumerate() {
        rules.push(parse_rule(entry).map_err(|msg| format!("rule {i}: {msg}"))?);
    }
    Ok(ShardView { units_retained, window, rules })
}

/// One worker's parsed `GET /v1/items` response.
#[derive(Clone, Debug)]
pub struct ItemsView {
    /// Units the worker currently retains.
    pub units_retained: u64,
    /// The worker's configured window length.
    pub window: u64,
    /// `(item id, summed support)` pairs, sorted by id.
    pub items: Vec<(u32, u64)>,
}

/// Parses a worker's `GET /v1/items` body back into typed supports.
///
/// # Errors
///
/// A message naming the first missing or malformed field; as with
/// rules, an unparsable `200` body is a failed fan-out leg, never an
/// empty view.
pub fn parse_items_body(text: &str) -> Result<ItemsView, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let units_retained = doc
        .get("units_retained")
        .and_then(Json::as_u64)
        .ok_or("missing units_retained")?;
    let window = doc.get("window").and_then(Json::as_u64).ok_or("missing window")?;
    let items_json = doc.get("items").and_then(Json::as_array).ok_or("missing items")?;
    let mut items = Vec::with_capacity(items_json.len());
    for (i, entry) in items_json.iter().enumerate() {
        let id = entry
            .get("id")
            .and_then(Json::as_u64)
            .and_then(|id| u32::try_from(id).ok())
            .ok_or_else(|| format!("item {i}: invalid id"))?;
        let support = entry
            .get("support")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("item {i}: missing support"))?;
        items.push((id, support));
    }
    Ok(ItemsView { units_retained, window, items })
}

/// Sums per-item supports across shard views. Every transaction is
/// owned by exactly one shard ([`crate::ring::ShardRing::split_unit`]
/// routes each transaction whole), so the cluster-wide support of an
/// item is the plain saturating sum of its per-shard supports — no
/// cross-shard recount. Output is sorted by item id, matching the
/// single-node `/v1/items` ordering.
pub fn merge_item_supports<I>(views: I) -> Vec<(u32, u64)>
where
    I: IntoIterator<Item = Vec<(u32, u64)>>,
{
    let mut by_id: BTreeMap<u32, u64> = BTreeMap::new();
    for view in views {
        for (id, support) in view {
            let slot = by_id.entry(id).or_insert(0);
            *slot = slot.saturating_add(support);
        }
    }
    by_id.into_iter().collect()
}

fn parse_rule(entry: &Json) -> Result<CyclicRule, String> {
    let antecedent = parse_ids(entry.get("antecedent"))?;
    let consequent = parse_ids(entry.get("consequent"))?;
    let rule = Rule::new(antecedent, consequent)
        .ok_or("antecedent/consequent must be non-empty and disjoint")?;
    let cycles_json =
        entry.get("cycles").and_then(Json::as_array).ok_or("missing cycles array")?;
    let mut cycles = Vec::with_capacity(cycles_json.len());
    for c in cycles_json {
        let length = c.get("length").and_then(Json::as_u64).ok_or("missing length")?;
        let offset = c.get("offset").and_then(Json::as_u64).ok_or("missing offset")?;
        let length = u32::try_from(length).map_err(|_| "length out of range")?;
        let offset = u32::try_from(offset).map_err(|_| "offset out of range")?;
        cycles.push(Cycle::new(length, offset).ok_or("invalid cycle")?);
    }
    Ok(CyclicRule { rule, cycles })
}

fn parse_ids(value: Option<&Json>) -> Result<ItemSet, String> {
    let items = value.and_then(Json::as_array).ok_or("missing item id array")?;
    let mut ids = Vec::with_capacity(items.len());
    for item in items {
        let id = item
            .as_u64()
            .and_then(|id| u32::try_from(id).ok())
            .ok_or("invalid item id")?;
        ids.push(id);
    }
    Ok(ItemSet::from_ids(ids))
}

/// Merges several shard rule views into one, re-minimalizing cycle
/// lists for rules reported by more than one shard and sorting the
/// result in the single-node reporting order (the derived
/// [`CyclicRule`] ordering every worker sorts by).
///
/// A rule whose merged cycle list collapses to empty is dropped — it
/// cannot happen from well-formed worker views (workers never report a
/// rule without cycles), but a merge must not invent one.
pub fn merge_rule_views<I>(views: I) -> Vec<CyclicRule>
where
    I: IntoIterator<Item = Vec<CyclicRule>>,
{
    let mut by_rule: BTreeMap<Rule, Vec<Vec<Cycle>>> = BTreeMap::new();
    for view in views {
        for cr in view {
            by_rule.entry(cr.rule).or_default().push(cr.cycles);
        }
    }
    let mut merged: Vec<CyclicRule> = by_rule
        .into_iter()
        .filter_map(|(rule, lists)| {
            let cycles = merge_minimal_cycle_lists(lists.iter().map(Vec::as_slice));
            (!cycles.is_empty()).then_some(CyclicRule { rule, cycles })
        })
        .collect();
    merged.sort();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(a: &[u32], c: &[u32], cycles: &[(u32, u32)]) -> CyclicRule {
        CyclicRule {
            rule: Rule::new(
                ItemSet::from_ids(a.iter().copied()),
                ItemSet::from_ids(c.iter().copied()),
            )
            .unwrap(),
            cycles: cycles.iter().map(|&(l, o)| Cycle::make(l, o)).collect(),
        }
    }

    #[test]
    fn disjoint_views_concatenate_in_sorted_order() {
        let a = vec![rule(&[5], &[6], &[(2, 0)])];
        let b = vec![rule(&[1], &[2], &[(3, 1)])];
        let merged = merge_rule_views([a.clone(), b.clone()]);
        assert_eq!(merged.len(), 2);
        let mut expected = [b, a].concat();
        expected.sort();
        assert_eq!(merged, expected);
    }

    #[test]
    fn same_rule_across_shards_merges_cycles_minimally() {
        let a = vec![rule(&[1], &[2], &[(4, 1)])];
        let b = vec![rule(&[1], &[2], &[(2, 1), (3, 0)])];
        let merged = merge_rule_views([a, b]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].cycles, vec![Cycle::make(2, 1), Cycle::make(3, 0)]);
    }

    #[test]
    fn rules_body_round_trips_through_parse() {
        // Render through the worker serializer, parse back, compare.
        let original = vec![rule(&[1, 3], &[2], &[(2, 0), (3, 1)])];
        let rendered: Vec<Json> = original
            .iter()
            .filter_map(|r| car_serve::routes::rule_to_json(r, None, None))
            .collect();
        let body = car_serve::json::object([
            ("units_retained", Json::from(4u64)),
            ("window", Json::from(8u64)),
            ("count", Json::from(rendered.len())),
            ("rules", Json::Array(rendered)),
        ])
        .render();
        let view = parse_rules_body(&body).unwrap();
        assert_eq!(view.units_retained, 4);
        assert_eq!(view.window, 8);
        assert_eq!(view.rules, original);
    }

    #[test]
    fn malformed_bodies_are_errors_not_empty_views() {
        assert!(parse_rules_body("not json").is_err());
        assert!(parse_rules_body("{}").is_err());
        assert!(parse_rules_body(
            r#"{"units_retained":1,"window":2,"rules":[{"antecedent":[],"consequent":[1],"cycles":[]}]}"#
        )
        .is_err());
        assert!(parse_rules_body(
            r#"{"units_retained":1,"window":2,"rules":[{"antecedent":[1],"consequent":[2],"cycles":[{"length":0,"offset":0}]}]}"#
        )
        .is_err());
    }

    #[test]
    fn empty_views_merge_to_empty() {
        assert!(merge_rule_views([Vec::new(), Vec::new()]).is_empty());
    }

    #[test]
    fn item_supports_sum_across_shards_sorted_by_id() {
        let a = vec![(1u32, 5u64), (3, 2)];
        let b = vec![(2u32, 4u64), (3, 6)];
        assert_eq!(merge_item_supports([b, a]), vec![(1, 5), (2, 4), (3, 8)],);
        assert!(merge_item_supports([Vec::new(), Vec::new()]).is_empty());
    }

    #[test]
    fn items_body_round_trips_through_parse() {
        let body = r#"{"units_retained":3,"window":8,"count":2,"items":[{"id":1,"support":6},{"id":9,"support":2}]}"#;
        let view = parse_items_body(body).unwrap();
        assert_eq!(view.units_retained, 3);
        assert_eq!(view.window, 8);
        assert_eq!(view.items, vec![(1, 6), (9, 2)]);
    }

    #[test]
    fn malformed_items_bodies_are_errors() {
        assert!(parse_items_body("not json").is_err());
        assert!(parse_items_body("{}").is_err());
        assert!(parse_items_body(
            r#"{"units_retained":1,"window":2,"items":[{"id":-1,"support":0}]}"#
        )
        .is_err());
        assert!(parse_items_body(
            r#"{"units_retained":1,"window":2,"items":[{"id":1}]}"#
        )
        .is_err());
    }
}
