//! Per-shard circuit breaker: the router's replacement for binary
//! Up/Down worker health.
//!
//! State machine:
//!
//! ```text
//!            consecutive failures >= threshold
//!   Closed ─────────────────────────────────────► Open
//!     ▲                                            │ cooldown elapses
//!     │ probe successes >= probe_successes         ▼
//!     └──────────────────────────────────────── HalfOpen
//!                         (any failure reopens, restarting cooldown)
//! ```
//!
//! - **Closed**: the shard takes data-path traffic. Each success resets
//!   the consecutive-failure count; each failure increments it, and at
//!   the threshold the breaker opens.
//! - **Open**: no data-path traffic at all. After `cooldown`, the next
//!   prober tick is allowed through as a trial ([`Breaker::probe_ready`]
//!   transitions to Half-Open).
//! - **Half-Open**: only the prober trickle touches the worker. Enough
//!   consecutive probe successes close the breaker (the router performs
//!   replay catch-up before counting a probe as a success, so a close
//!   implies the shard is also caught up); any failure reopens it and
//!   restarts the cooldown.
//!
//! The breaker is a plain struct driven by its owner (the router holds
//! one per worker behind the existing worker mutex) and takes `now` as
//! an argument, which keeps every transition deterministic under test.

use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive data-path/probe failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker waits before allowing a trial probe.
    pub cooldown: Duration,
    /// Consecutive successful probes needed to close from Half-Open.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(500),
            probe_successes: 1,
        }
    }
}

/// The three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: data-path traffic flows.
    Closed,
    /// Tripped: no traffic; waiting out the cooldown.
    Open,
    /// Trial: prober trickle only.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for health JSON and metrics.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric encoding for the `car_shard_breaker_state` gauge:
    /// 0 = closed, 1 = half-open, 2 = open.
    pub fn gauge_value(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// One worker's circuit breaker.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_streak: u32,
    opened_at: Option<Instant>,
    opens: u64,
}

impl Breaker {
    /// A new breaker, Closed.
    pub fn new(config: BreakerConfig) -> Breaker {
        Breaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_streak: 0,
            opened_at: None,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether data-path traffic may be sent to this shard.
    pub fn allows_traffic(&self) -> bool {
        self.state == BreakerState::Closed
    }

    /// Current consecutive-failure count (diagnostic, for `/v1/health`).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// How many times this breaker has opened since boot.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Records a data-path or probe failure. Returns `true` when this
    /// failure tripped the breaker from a traffic-carrying state.
    pub fn record_failure(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                // A failed trial reopens immediately and restarts the
                // cooldown — no threshold counting in Half-Open.
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                self.trip(now);
                false
            }
            BreakerState::Open => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                false
            }
        }
    }

    /// Records a success. In Closed this clears the failure count; in
    /// Half-Open it advances the probe streak and may close the
    /// breaker. Returns `true` when the breaker closed.
    pub fn record_success(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                false
            }
            BreakerState::HalfOpen => {
                self.probe_streak = self.probe_streak.saturating_add(1);
                if self.probe_streak >= self.config.probe_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.probe_streak = 0;
                    self.opened_at = None;
                    return true;
                }
                false
            }
            // A success while Open (e.g. a straggler reply) is not a
            // trial result; ignore it rather than short-circuiting the
            // cooldown.
            BreakerState::Open => false,
        }
    }

    /// Whether the prober may touch this shard right now. An Open
    /// breaker whose cooldown has elapsed transitions to Half-Open and
    /// admits the probe; Half-Open always admits; Closed probing is the
    /// owner's choice (the router probes Closed workers for liveness).
    pub fn probe_ready(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let elapsed_ok = self
                    .opened_at
                    .map_or(true, |t| now.duration_since(t) >= self.config.cooldown);
                if elapsed_ok {
                    self.state = BreakerState::HalfOpen;
                    self.probe_streak = 0;
                }
                elapsed_ok
            }
        }
    }

    /// Opens the breaker unconditionally (boot-probe failure: the
    /// worker was never seen healthy).
    pub fn open_immediately(&mut self, now: Instant) {
        if self.state != BreakerState::Open {
            self.trip(now);
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.probe_streak = 0;
        self.opened_at = Some(now);
        self.opens = self.opens.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            probe_successes: 2,
        })
    }

    #[test]
    fn opens_after_consecutive_failures() {
        let mut b = breaker();
        let now = Instant::now();
        assert!(!b.record_failure(now));
        assert!(!b.record_failure(now));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure(now));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = breaker();
        let now = Instant::now();
        b.record_failure(now);
        b.record_failure(now);
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0);
        b.record_failure(now);
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_gates_the_half_open_transition() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        assert!(!b.probe_ready(t0 + Duration::from_millis(50)));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.probe_ready(t0 + Duration::from_millis(150)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_closes_after_probe_streak() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        assert!(b.probe_ready(t0 + Duration::from_millis(150)));
        assert!(!b.record_success());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_success());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_traffic());
    }

    #[test]
    fn half_open_failure_reopens_and_restarts_cooldown() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        let t1 = t0 + Duration::from_millis(150);
        assert!(b.probe_ready(t1));
        b.record_failure(t1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        // Cooldown restarted from t1, so shortly after it is still shut.
        assert!(!b.probe_ready(t1 + Duration::from_millis(50)));
        assert!(b.probe_ready(t1 + Duration::from_millis(150)));
    }

    #[test]
    fn open_immediately_skips_the_threshold() {
        let mut b = breaker();
        b.open_immediately(Instant::now());
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_traffic());
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.gauge_value(), 0);
        assert_eq!(BreakerState::HalfOpen.gauge_value(), 1);
        assert_eq!(BreakerState::Open.gauge_value(), 2);
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::HalfOpen.label(), "half_open");
        assert_eq!(BreakerState::Open.label(), "open");
    }
}
