//! In-process cluster tests: real workers and a real router on
//! ephemeral ports, driven over real sockets.
//!
//! The load-bearing properties:
//!
//! * routing units through the router and querying it returns exactly
//!   the rules a single node serves for the same units (byte-identical
//!   `rules` arrays), and
//! * a worker that dies degrades responses (`partial=true`, the
//!   `X-Car-Shards-Degraded` header) without losing the other shards,
//!   and is re-admitted with exact catch-up replay once it is back.

use std::time::{Duration, Instant};

use car_core::MiningConfig;
use car_itemset::ItemSet;
use car_serve::json::Json;
use car_serve::{serve, Client, ServerConfig, ServerHandle, ShardIdentity};
use car_shard::{run_router, PartitionKey, RouterConfig, RouterHandle, ShardRing};

fn mining_config() -> MiningConfig {
    MiningConfig::builder()
        .min_support_count(2)
        .min_confidence(0.5)
        .cycle_bounds(2, 4)
        .build()
        .unwrap()
}

fn spawn_worker(addr: &str, shard: Option<ShardIdentity>) -> ServerHandle {
    serve(ServerConfig {
        addr: addr.to_string(),
        threads: 2,
        window: 16,
        queue_capacity: 64,
        mining: mining_config(),
        io_timeout: Duration::from_secs(5),
        shard,
        ..ServerConfig::default()
    })
    .expect("worker boots")
}

fn spawn_cluster(count: u32) -> (Vec<ServerHandle>, RouterHandle) {
    let workers: Vec<ServerHandle> = (0..count)
        .map(|i| {
            spawn_worker(
                "127.0.0.1:0",
                Some(ShardIdentity { shard_id: i, shard_count: count }),
            )
        })
        .collect();
    let router = run_router(RouterConfig {
        addr: "127.0.0.1:0".into(),
        workers: workers.iter().map(|w| w.addr.to_string()).collect(),
        probe_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    })
    .expect("router boots");
    (workers, router)
}

/// Builds `n` partition-pure units over a `count`-shard ring: each
/// shard's first two pool items form a planted rule `{a} => {b}` that
/// holds on alternating units (cycle length 2), plus antecedent-only
/// noise on the off units.
fn pure_units(count: u32, n: usize) -> Vec<Vec<ItemSet>> {
    let ring = ShardRing::new(count).unwrap();
    let mut pools: Vec<Vec<u32>> = vec![Vec::new(); count as usize];
    for item in 0..64u32 {
        pools[ring.owner_of_key(u64::from(item)) as usize].push(item);
    }
    for (shard, pool) in pools.iter().enumerate() {
        assert!(pool.len() >= 2, "shard {shard} needs two pool items in 0..64");
    }
    (0..n)
        .map(|t| {
            let mut unit = Vec::new();
            for (shard, pool) in pools.iter().enumerate() {
                let (a, b) = (pool[0], pool[1]);
                if (t + shard) % 2 == 0 {
                    for _ in 0..3 {
                        unit.push(ItemSet::from_ids([a, b]));
                    }
                } else {
                    for _ in 0..3 {
                        unit.push(ItemSet::from_ids([a]));
                    }
                }
            }
            unit
        })
        .collect()
}

/// Renders units as the batch ingest wire format.
fn batch_body(units: &[Vec<ItemSet>]) -> Vec<u8> {
    let batch: Vec<Json> = units
        .iter()
        .map(|unit| {
            let txs: Vec<Json> = unit
                .iter()
                .map(|tx| {
                    Json::Array(tx.iter().map(|item| Json::from(item.id())).collect())
                })
                .collect();
            Json::Object(vec![("transactions".to_string(), Json::Array(txs))])
        })
        .collect();
    Json::Array(batch).render().into_bytes()
}

fn rules_array(body: &str) -> String {
    let doc = Json::parse(body).expect("rules body parses");
    doc.get("rules").expect("rules array").render()
}

#[test]
fn routed_rules_match_single_node_byte_for_byte() {
    let units = pure_units(3, 8);
    let (workers, router) = spawn_cluster(3);
    let oracle = spawn_worker("127.0.0.1:0", None);

    let body = batch_body(&units);
    let mut rc = Client::connect(&router.addr.to_string()).unwrap();
    let resp = rc.request("POST", "/v1/units?wait=true", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("applied").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));
    assert!(resp.header("x-car-shards-degraded").is_none());

    let mut oc = Client::connect(&oracle.addr.to_string()).unwrap();
    let resp = oc.request("POST", "/v1/units?wait=true", Some(&body)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body_text());

    let routed = rc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(routed.status, 200, "{}", routed.body_text());
    let single = oc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(single.status, 200, "{}", single.body_text());
    let routed_body = routed.body_text();
    let doc = Json::parse(&routed_body).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));
    // Every worker applied all 8 units (wait=true above), so the merged
    // view reports an agreed epoch — no cross-shard skew.
    assert_eq!(doc.get("epoch_min").and_then(Json::as_u64), Some(8));
    assert_eq!(doc.get("epoch_max").and_then(Json::as_u64), Some(8));
    assert!(!rules_array(&routed_body).contains("[]"), "planted rules must appear");
    assert_eq!(rules_array(&routed_body), rules_array(&single.body_text()));

    // min_conf escalation fans out too and stays equivalent.
    let routed = rc.request("GET", "/v1/rules?min_confidence=0.9", None).unwrap();
    let single = oc.request("GET", "/v1/rules?min_confidence=0.9", None).unwrap();
    assert_eq!((routed.status, single.status), (200, 200));
    assert_eq!(rules_array(&routed.body_text()), rules_array(&single.body_text()));

    // A query value decoding to CR/LF must not reach the worker request
    // line: the router rebuilds the fan-out target from validated
    // parameters only, so the smuggled `POST /v1/shutdown` below is
    // dropped and the workers keep serving.
    let routed = rc
        .request(
            "GET",
            "/v1/rules?min_confidence=0.9&evil=%0d%0aPOST%20/v1/shutdown%20HTTP/1.1",
            None,
        )
        .unwrap();
    assert_eq!(routed.status, 200, "{}", routed.body_text());
    assert_eq!(rules_array(&routed.body_text()), rules_array(&single.body_text()));
    let health = rc.request("GET", "/v1/health", None).unwrap();
    let doc = Json::parse(&health.body_text()).unwrap();
    assert_eq!(doc.get("degraded_shards").and_then(Json::as_u64), Some(0));

    // A below-threshold min_confidence is rejected worker-side; the
    // router forwards the worker's JSON error body as-is (a single
    // envelope, not a re-wrapped one).
    let resp = rc.request("GET", "/v1/rules?min_confidence=0.2", None).unwrap();
    assert_eq!(resp.status, 400);
    let doc = Json::parse(&resp.body_text()).unwrap();
    let msg = doc.get("error").and_then(Json::as_str).expect("plain error envelope");
    assert!(msg.contains("below the mining threshold"), "{msg}");

    // Router health and metrics expose the cluster.
    let health = rc.request("GET", "/v1/health", None).unwrap();
    let doc = Json::parse(&health.body_text()).unwrap();
    assert_eq!(doc.get("role").and_then(Json::as_str), Some("router"));
    assert_eq!(doc.get("shard_count").and_then(Json::as_u64), Some(3));
    assert_eq!(doc.get("degraded_shards").and_then(Json::as_u64), Some(0));
    let metrics = rc.request("GET", "/metrics", None).unwrap().body_text();
    assert!(metrics.contains("car_shard_fanout_total"));
    assert!(metrics.contains("car_shard_down_total"));
    // The car_shard_* counters are process-global (shared across the
    // tests in this binary), so assert presence rather than a value.
    assert!(metrics.contains("car_shard_units_routed_total"));

    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    router.wait();
    oracle.trigger_shutdown();
    oracle.wait();
    for w in workers {
        w.trigger_shutdown();
        w.wait();
    }
}

#[test]
fn routed_item_supports_match_single_node_and_degrade() {
    let units = pure_units(2, 6);
    let (mut workers, router) = spawn_cluster(2);
    let oracle = spawn_worker("127.0.0.1:0", None);
    let body = batch_body(&units);

    let mut rc = Client::connect(&router.addr.to_string()).unwrap();
    let resp = rc.request("POST", "/v1/units?wait=true", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let mut oc = Client::connect(&oracle.addr.to_string()).unwrap();
    let resp = oc.request("POST", "/v1/units?wait=true", Some(&body)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body_text());

    // The merged per-item supports are byte-identical to a single node
    // that saw the same units: each transaction lives on exactly one
    // shard, so the router's saturating sum reconstructs the oracle's
    // counts exactly (both arrays are sorted by item id).
    let routed = rc.request("GET", "/v1/items", None).unwrap();
    assert_eq!(routed.status, 200, "{}", routed.body_text());
    let single = oc.request("GET", "/v1/items", None).unwrap();
    assert_eq!(single.status, 200, "{}", single.body_text());
    let routed_doc = Json::parse(&routed.body_text()).unwrap();
    let single_doc = Json::parse(&single.body_text()).unwrap();
    assert_eq!(routed_doc.get("partial").and_then(Json::as_bool), Some(false));
    assert_eq!(routed_doc.get("epoch_min").and_then(Json::as_u64), Some(6));
    assert_eq!(routed_doc.get("epoch_max").and_then(Json::as_u64), Some(6));
    let items = routed_doc.get("items").expect("items array").render();
    assert_ne!(items, "[]", "planted items must appear");
    assert_eq!(items, single_doc.get("items").expect("items array").render());

    // Kill one worker: the merged supports degrade (partial=true, the
    // shard listed) instead of failing.
    let victim = workers.pop().unwrap();
    victim.trigger_shutdown();
    victim.wait();
    let deadline = Instant::now() + Duration::from_secs(10);
    let doc = loop {
        let resp = rc.request("GET", "/v1/items", None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let doc = Json::parse(&resp.body_text()).unwrap();
        if doc.get("partial").and_then(Json::as_bool) == Some(true) {
            break doc;
        }
        assert!(Instant::now() < deadline, "dead shard never degraded /v1/items");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(doc.get("degraded").map(Json::render), Some("[1]".to_string()));

    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    router.wait();
    oracle.trigger_shutdown();
    oracle.wait();
    for w in workers {
        w.trigger_shutdown();
        w.wait();
    }
}

#[test]
fn dead_worker_degrades_then_catchup_readmits() {
    let units = pure_units(2, 10);
    let (mut workers, router) = spawn_cluster(2);
    let mut rc = Client::connect(&router.addr.to_string()).unwrap();

    // Phase 1: all up, route the first six units.
    let resp = rc
        .request("POST", "/v1/units?wait=true", Some(&batch_body(&units[..6])))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    // Kill worker 1 (clean exit here; the CLI test covers SIGKILL).
    let victim = workers.pop().unwrap();
    let victim_addr = victim.addr;
    victim.trigger_shutdown();
    victim.wait();

    // Phase 2: ingest two more units; the router must degrade, not fail.
    let resp = rc.request("POST", "/v1/units", Some(&batch_body(&units[6..8]))).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.header("x-car-shards-degraded"), Some("1"));

    // Queries answer from the surviving shard, marked partial.
    let resp = rc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(true));
    assert_eq!(
        doc.get("degraded").map(Json::render),
        Some("[1]".to_string()),
        "shard 1 is the degraded one"
    );
    assert_eq!(resp.header("x-car-shards-degraded"), Some("1"));

    // Phase 3: resurrect worker 1 on the same address with an empty
    // window; the router must replay everything it missed and re-admit.
    let revived = spawn_worker(
        &victim_addr.to_string(),
        Some(ShardIdentity { shard_id: 1, shard_count: 2 }),
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = rc.request("GET", "/v1/health", None).unwrap();
        let doc = Json::parse(&resp.body_text()).unwrap();
        if doc.get("degraded_shards").and_then(Json::as_u64) == Some(0) {
            break;
        }
        assert!(Instant::now() < deadline, "worker 1 was never re-admitted");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Route the final two units, then check exactness against a single
    // node that saw all ten — catch-up replay must have restored
    // alignment.
    let resp = rc
        .request("POST", "/v1/units?wait=true", Some(&batch_body(&units[8..])))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));

    let oracle = spawn_worker("127.0.0.1:0", None);
    let mut oc = Client::connect(&oracle.addr.to_string()).unwrap();
    let resp =
        oc.request("POST", "/v1/units?wait=true", Some(&batch_body(&units))).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body_text());

    let routed = rc.request("GET", "/v1/rules", None).unwrap();
    let single = oc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!((routed.status, single.status), (200, 200));
    let routed_body = routed.body_text();
    let doc = Json::parse(&routed_body).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));
    assert_eq!(rules_array(&routed_body), rules_array(&single.body_text()));

    let metrics = rc.request("GET", "/metrics", None).unwrap().body_text();
    assert!(metrics.contains("car_shard_readmissions_total"));

    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    router.wait();
    for w in workers.into_iter().chain([revived, oracle]) {
        w.trigger_shutdown();
        w.wait();
    }
}

#[test]
fn all_workers_down_buffers_with_202_then_replays_once() {
    let units = pure_units(1, 6);
    let (mut workers, router) = spawn_cluster(1);
    let mut rc = Client::connect(&router.addr.to_string()).unwrap();

    // Kill the only worker, then ingest. The units are committed to the
    // replay ring, so the answer must be a non-retryable 202 — a 503
    // would make retrying clients buffer (and later replay) the batch
    // twice.
    let victim = workers.pop().unwrap();
    let victim_addr = victim.addr;
    victim.trigger_shutdown();
    victim.wait();

    let resp = rc.request("POST", "/v1/units", Some(&batch_body(&units))).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("applied").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("units_routed").and_then(Json::as_u64), Some(6));
    assert_eq!(resp.header("x-car-shards-degraded"), Some("1"));

    // Queries meanwhile have no live leg to serve from.
    let resp = rc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_text());

    // Revive the worker empty; re-admission must replay the buffered
    // units exactly once, restoring single-node equivalence.
    let revived = spawn_worker(
        &victim_addr.to_string(),
        Some(ShardIdentity { shard_id: 0, shard_count: 1 }),
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = rc.request("GET", "/v1/health", None).unwrap();
        let doc = Json::parse(&resp.body_text()).unwrap();
        if doc.get("degraded_shards").and_then(Json::as_u64) == Some(0) {
            break;
        }
        assert!(Instant::now() < deadline, "worker was never re-admitted");
        std::thread::sleep(Duration::from_millis(50));
    }

    let oracle = spawn_worker("127.0.0.1:0", None);
    let mut oc = Client::connect(&oracle.addr.to_string()).unwrap();
    let resp =
        oc.request("POST", "/v1/units?wait=true", Some(&batch_body(&units))).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body_text());

    let routed = rc.request("GET", "/v1/rules", None).unwrap();
    let single = oc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!((routed.status, single.status), (200, 200));
    let routed_body = routed.body_text();
    let doc = Json::parse(&routed_body).unwrap();
    assert_eq!(doc.get("partial").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("epoch_min").and_then(Json::as_u64),
        Some(6),
        "replayed exactly once — a duplicated replay would double the epoch"
    );
    assert_eq!(rules_array(&routed_body), rules_array(&single.body_text()));

    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    router.wait();
    for w in [revived, oracle] {
        w.trigger_shutdown();
        w.wait();
    }
}

#[test]
fn router_rejects_empty_worker_list_and_bad_bodies() {
    assert!(run_router(RouterConfig::default()).is_err());

    let (workers, router) = spawn_cluster(1);
    let mut rc = Client::connect(&router.addr.to_string()).unwrap();
    let resp = rc.request("POST", "/v1/units", Some(b"not json")).unwrap();
    assert_eq!(resp.status, 400);
    let resp = rc.request("GET", "/v1/rules?length=banana", None).unwrap();
    assert_eq!(resp.status, 400);
    // Querying before l_max units are retained mirrors the worker 409.
    let resp = rc.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 409, "{}", resp.body_text());
    let resp = rc.request("DELETE", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 405);

    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    router.wait();
    for w in workers {
        w.trigger_shutdown();
        w.wait();
    }
}

/// End-to-end distributed tracing: a client-chosen trace id (picked so
/// the deterministic 1-in-N sampler retains it) flows through the
/// router, fans out to both workers, and comes back as one assembled
/// tree — router root, one `router.leg.*` span per shard, and each
/// worker's own `serve.request` span nested under its leg.
#[test]
fn traced_requests_assemble_cross_shard_trees() {
    let units = pure_units(2, 8);
    let (workers, router) = spawn_cluster(2);
    let mut rc = Client::connect(&router.addr.to_string()).unwrap();

    // low64 = 0xa0 = 160; 160 % 16 == 0, so the sampler keeps it.
    let ingest_id = "000000000000000000000000000000a0";
    let body = batch_body(&units);
    let resp = rc
        .try_request(
            "POST",
            "/v1/units?wait=true",
            &[("x-car-trace-id", ingest_id.to_string())],
            Some(&body),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(resp.header("x-car-trace-id"), Some(ingest_id));

    // low64 = 0x10 = 16; 16 % 16 == 0 — retained too.
    let rules_id = "00000000000000000000000000000010";
    let resp = rc
        .try_request(
            "GET",
            "/v1/rules",
            &[("x-car-trace-id", rules_id.to_string())],
            None,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(resp.header("x-car-trace-id"), Some(rules_id));

    // The listing shows both retained traces, newest first.
    let list = rc.request("GET", "/v1/debug/traces", None).unwrap();
    assert_eq!(list.status, 200);
    let doc = Json::parse(&list.body_text()).unwrap();
    let traces = doc.get("traces").and_then(Json::as_array).unwrap();
    for id in [ingest_id, rules_id] {
        assert!(
            traces.iter().any(|t| t.get("trace_id").and_then(Json::as_str) == Some(id)),
            "trace {id} missing from {}",
            list.body_text()
        );
    }

    // The rules trace is a tree: one parentless router root, a
    // router.leg.rules span per shard (with shard/outcome/epoch attrs),
    // and each worker's serve.request span parented to its leg.
    let tree = rc
        .request("GET", &format!("/v1/debug/traces?trace_id={rules_id}"), None)
        .unwrap();
    assert_eq!(tree.status, 200, "{}", tree.body_text());
    let doc = Json::parse(&tree.body_text()).unwrap();
    let spans = doc.get("spans").and_then(Json::as_array).unwrap();
    let root = &spans[0];
    assert_eq!(root.get("name").and_then(Json::as_str), Some("router.request"));
    assert_eq!(root.get("parent"), Some(&Json::Null));
    let root_uid = root.get("uid").and_then(Json::as_str).unwrap();
    let attr = |s: &Json, key: &str| {
        s.get("attrs").and_then(|a| a.get(key)).and_then(Json::as_str).map(str::to_string)
    };
    assert_eq!(attr(root, "route").as_deref(), Some("rules"));
    let legs: Vec<&Json> = spans
        .iter()
        .filter(|s| s.get("name").and_then(Json::as_str) == Some("router.leg.rules"))
        .collect();
    assert_eq!(legs.len(), 2, "one rules leg per shard: {}", tree.body_text());
    let mut leg_shards: Vec<String> =
        legs.iter().filter_map(|l| attr(l, "shard")).collect();
    leg_shards.sort();
    assert_eq!(leg_shards, ["0", "1"]);
    for leg in &legs {
        assert_eq!(leg.get("parent").and_then(Json::as_str), Some(root_uid));
        assert_eq!(attr(leg, "outcome").as_deref(), Some("ok"));
        assert_eq!(attr(leg, "epoch").as_deref(), Some("8"));
        // The worker's own request span nests under this leg.
        let leg_uid = leg.get("uid").and_then(Json::as_str).unwrap();
        let worker_span = spans
            .iter()
            .find(|s| {
                s.get("parent").and_then(Json::as_str) == Some(leg_uid)
                    && s.get("name").and_then(Json::as_str) == Some("serve.request")
            })
            .unwrap_or_else(|| {
                panic!("no worker span under leg {leg_uid}: {}", tree.body_text())
            });
        assert_eq!(attr(worker_span, "route").as_deref(), Some("rules"));
    }

    // The ingest trace carries a leg per shard too.
    let tree = rc
        .request("GET", &format!("/v1/debug/traces?trace_id={ingest_id}"), None)
        .unwrap();
    assert_eq!(tree.status, 200, "{}", tree.body_text());
    let ingest_legs = tree.body_text().matches("router.leg.ingest").count();
    assert!(ingest_legs >= 2, "expected 2+ ingest legs, got {ingest_legs}");

    // Chrome export parses as JSON with one event per span.
    let chrome = rc
        .request(
            "GET",
            &format!("/v1/debug/traces?trace_id={rules_id}&format=chrome"),
            None,
        )
        .unwrap();
    assert_eq!(chrome.status, 200);
    let doc = Json::parse(&chrome.body_text()).expect("chrome export is valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    assert_eq!(events.len(), spans.len());
    assert!(events.iter().all(|e| e.get("ph").and_then(Json::as_str) == Some("X")));

    // The retention counter family is exported with the retained
    // reasons accounted for (both forced ids are in the 1-in-16
    // sample, though the slow threshold may claim them first) —
    // exactly once: the router shares the process-global counters
    // with the store, so a second render is a duplicate family.
    let metrics = rc.request("GET", "/metrics", None).unwrap().body_text();
    for family in ["car_trace_retained_total", "car_trace_discarded_total"] {
        let type_line = format!("# TYPE {family} counter");
        assert_eq!(metrics.matches(&type_line).count(), 1, "{family} family duplicated");
    }

    // Hostile and unknown ids: 400 / 404, never a 500.
    let resp = rc.request("GET", "/v1/debug/traces?trace_id=zz", None).unwrap();
    assert_eq!(resp.status, 400);
    let resp = rc
        .request(
            "GET",
            "/v1/debug/traces?trace_id=00000000000000000000000000000011",
            None,
        )
        .unwrap();
    assert_eq!(resp.status, 404);

    let resp = rc.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    router.wait();
    for w in workers {
        w.trigger_shutdown();
        w.wait();
    }
}

/// The `PartitionKey` re-export is part of the crate's public surface
/// used by the CLI; keep it honest.
#[test]
fn partition_key_parses_both_forms() {
    assert_eq!("min-item".parse::<PartitionKey>().unwrap(), PartitionKey::MinItem);
    assert_eq!("max-item".parse::<PartitionKey>().unwrap(), PartitionKey::MaxItem);
    assert!("ring".parse::<PartitionKey>().is_err());
}
