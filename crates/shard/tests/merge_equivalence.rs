//! The sharding correctness property: splitting partition-pure units
//! across shards by the real ring, mining each shard's sub-stream
//! independently, and merging the per-shard views at the router is
//! equivalent to mining the union window on a single node — for the
//! default query and for escalated `min_confidence` queries, and (in
//! the degraded case) dropping one shard's view equals mining the units
//! with that shard's transactions removed.
//!
//! Purity (every transaction's items drawn from one shard's item pool)
//! plus an absolute support *count* make the equivalence exact: any
//! transaction containing an itemset lives on the itemset's own shard,
//! so per-unit support and confidence counts are identical on the shard
//! and the single node.

use car_core::window::SlidingWindowMiner;
use car_core::{CyclicRule, MinConfidence, MiningConfig};
use car_itemset::ItemSet;
use car_shard::{merge_rule_views, PartitionKey, ShardRing};
use proptest::prelude::*;

const ITEM_SPACE: u32 = 32;

/// The ring's item pools: `pools[s]` holds the items shard `s` owns.
/// Only non-empty pools are returned (a shard that owns no item of the
/// space can never receive a transaction).
fn pools(ring: &ShardRing) -> Vec<Vec<u32>> {
    let mut pools: Vec<Vec<u32>> = (0..ring.count()).map(|_| Vec::new()).collect();
    for item in 0..ITEM_SPACE {
        pools[ring.owner_of_key(u64::from(item)) as usize].push(item);
    }
    pools.retain(|p| !p.is_empty());
    pools
}

/// Raw generated shape: per unit, per transaction, a pool selector and
/// item position selectors — resolved against the real ring's pools in
/// the test body so every transaction is partition-pure by construction.
type RawUnits = Vec<Vec<(usize, Vec<usize>)>>;

fn arb_raw_units() -> impl Strategy<Value = RawUnits> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0usize..16, proptest::collection::vec(0usize..16, 1..4)),
            0..7,
        ),
        4..10,
    )
}

fn arb_config() -> impl Strategy<Value = MiningConfig> {
    (1u64..4, 0.0f64..=1.0, 1u32..=3, 0u32..=1).prop_map(|(count, conf, lo, extra)| {
        let hi = (lo + extra).min(4);
        MiningConfig::builder()
            .min_support_count(count)
            .min_confidence(conf)
            .cycle_bounds(lo.min(hi), hi)
            .build()
            .expect("valid generated config")
    })
}

/// Resolves the raw shape into partition-pure units.
fn materialize(raw: &RawUnits, pools: &[Vec<u32>]) -> Vec<Vec<ItemSet>> {
    raw.iter()
        .map(|unit| {
            unit.iter()
                .map(|(pool_sel, positions)| {
                    let pool = &pools[pool_sel % pools.len()];
                    ItemSet::from_ids(positions.iter().map(|p| pool[p % pool.len()]))
                })
                .collect()
        })
        .collect()
}

fn mine(units: &[Vec<ItemSet>], config: &MiningConfig) -> SlidingWindowMiner {
    let mut miner =
        SlidingWindowMiner::new(config.clone(), units.len().max(1)).expect("valid miner");
    for unit in units {
        miner.push_unit(unit);
    }
    miner
}

fn query(miner: &SlidingWindowMiner, q: Option<MinConfidence>) -> Vec<CyclicRule> {
    miner.query_rules(q).expect("enough units retained").as_ref().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sharded_mining_plus_merge_equals_single_node(
        raw in arb_raw_units(),
        config in arb_config(),
        shards in 2u32..=4,
        use_max_key in any::<bool>(),
    ) {
        let key =
            if use_max_key { PartitionKey::MaxItem } else { PartitionKey::MinItem };
        let ring = ShardRing::new(shards).unwrap();
        let pools = pools(&ring);
        let units = materialize(&raw, &pools);

        let single = mine(&units, &config);
        let shard_miners: Vec<SlidingWindowMiner> = (0..shards as usize)
            .map(|s| {
                let sub_units: Vec<Vec<ItemSet>> = units
                    .iter()
                    .map(|unit| ring.split_unit(unit, key).swap_remove(s))
                    .collect();
                mine(&sub_units, &config)
            })
            .collect();

        for q in [None, MinConfidence::new(0.85)] {
            let expected = query(&single, q);
            let merged = merge_rule_views(
                shard_miners.iter().map(|m| query(m, q)),
            );
            prop_assert_eq!(
                &merged, &expected,
                "merged shard views diverged from the single node \
                 (shards {}, key {:?}, q {:?})",
                shards, key, q
            );
        }
    }

    #[test]
    fn degraded_merge_equals_single_node_without_that_shards_transactions(
        raw in arb_raw_units(),
        config in arb_config(),
        shards in 2u32..=4,
        dropped in 0u32..4,
    ) {
        let ring = ShardRing::new(shards).unwrap();
        let key = PartitionKey::MinItem;
        let dropped = (dropped % shards) as usize;
        let pools = pools(&ring);
        let units = materialize(&raw, &pools);

        // The oracle sees every unit, minus the dropped shard's
        // transactions — exactly what the surviving shards hold. Unit
        // boundaries are preserved (empty sub-units keep the clock).
        let surviving_units: Vec<Vec<ItemSet>> = units
            .iter()
            .map(|unit| {
                let mut splits = ring.split_unit(unit, key);
                splits.remove(dropped);
                splits.into_iter().flatten().collect()
            })
            .collect();
        let oracle = mine(&surviving_units, &config);

        let views: Vec<Vec<CyclicRule>> = (0..shards as usize)
            .filter(|&s| s != dropped)
            .map(|s| {
                let sub_units: Vec<Vec<ItemSet>> = units
                    .iter()
                    .map(|unit| ring.split_unit(unit, key).swap_remove(s))
                    .collect();
                query(&mine(&sub_units, &config), None)
            })
            .collect();
        let merged = merge_rule_views(views);
        prop_assert_eq!(
            &merged, &query(&oracle, None),
            "degraded merge diverged (shards {}, dropped {})", shards, dropped
        );
    }
}
