//! Property tests for trace assembly.
//!
//! Whatever span soup the cluster throws at it — duplicate uids,
//! dangling parents, parent cycles, spans wildly outside their parent's
//! window — [`assemble`] must return a *single rooted tree*: the root
//! first with no parent, every other span's parent resolving to a span
//! in the tree, every parent chain reaching the root without cycling,
//! and every child nested within its parent's interval modulo the
//! cross-process clock-skew tolerance.

use std::collections::BTreeSet;

use car_obs::trace::{
    assemble, mint_trace_id, SpanRecord, SpanUid, CLOCK_SKEW_TOLERANCE_US,
};
use proptest::prelude::*;

/// A deterministic non-zero uid from a small index.
fn uid(n: u64) -> SpanUid {
    SpanUid::from_hex(&format!("{n:016x}")).expect("non-zero index")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn assembled_traces_are_single_rooted_trees(
        // (uid index, parent index [0 = None, may dangle], start µs, dur µs).
        // Uid indexes collide on purpose to exercise deduplication; index 1
        // doubles as the root so some soups contain a root record and some
        // force synthesis.
        raw in proptest::collection::vec(
            (1u64..10, 0u64..14, 0u64..1_000_000, 0u64..1_000_000),
            0..24,
        ),
    ) {
        let trace_id = mint_trace_id();
        let root = uid(1);
        let spans: Vec<SpanRecord> = raw
            .iter()
            .map(|&(u, p, start_us, dur_us)| SpanRecord {
                trace_id,
                uid: uid(u),
                parent: if p == 0 { None } else { Some(uid(p)) },
                name: format!("s{u}"),
                start_us,
                dur_us,
                attrs: Vec::new(),
            })
            .collect();
        let input_unique: BTreeSet<String> =
            spans.iter().map(|s| s.uid.to_hex()).collect();
        let assembled = assemble(trace_id, root, spans);

        // Exactly one root: first, parentless, carrying the root uid; no
        // span is lost to deduplication beyond true uid collisions.
        prop_assert!(!assembled.spans.is_empty());
        prop_assert_eq!(assembled.spans[0].uid, root);
        prop_assert!(assembled.spans[0].parent.is_none());
        let mut count = input_unique.len();
        if !input_unique.contains(&root.to_hex()) {
            count += 1; // synthesized root
        }
        prop_assert_eq!(assembled.spans.len(), count);

        // Uids are unique and every span carries the trace id.
        let uids: BTreeSet<String> =
            assembled.spans.iter().map(|s| s.uid.to_hex()).collect();
        prop_assert_eq!(uids.len(), assembled.spans.len());
        prop_assert!(assembled.spans.iter().all(|s| s.trace_id == trace_id));

        for span in &assembled.spans[1..] {
            // Every parent resolves within the tree.
            let parent_uid = span.parent.expect("non-root spans have parents");
            let parent = assembled
                .spans
                .iter()
                .find(|s| s.uid == parent_uid)
                .expect("parent resolves");

            // Nesting modulo clock-skew tolerance.
            prop_assert!(
                span.start_us.saturating_add(CLOCK_SKEW_TOLERANCE_US)
                    >= parent.start_us,
                "child {} starts {}µs before parent {} ({}µs)",
                span.uid, span.start_us, parent.uid, parent.start_us,
            );
            prop_assert!(
                span.end_us()
                    <= parent.end_us().saturating_add(CLOCK_SKEW_TOLERANCE_US),
                "child {} ends {}µs after parent {} ends ({}µs)",
                span.uid, span.end_us(), parent.uid, parent.end_us(),
            );

            // Every parent chain reaches the root without cycling.
            let mut cursor = span.uid;
            let mut steps = 0usize;
            while cursor != root {
                cursor = assembled
                    .spans
                    .iter()
                    .find(|s| s.uid == cursor)
                    .and_then(|s| s.parent)
                    .expect("chain resolves");
                steps += 1;
                prop_assert!(
                    steps <= assembled.spans.len(),
                    "parent cycle survived assembly at {}", span.uid
                );
            }
        }
    }

    #[test]
    fn assembly_is_idempotent(
        raw in proptest::collection::vec(
            (1u64..8, 0u64..10, 0u64..100_000, 0u64..100_000),
            0..16,
        ),
    ) {
        let trace_id = mint_trace_id();
        let root = uid(1);
        let spans: Vec<SpanRecord> = raw
            .iter()
            .map(|&(u, p, start_us, dur_us)| SpanRecord {
                trace_id,
                uid: uid(u),
                parent: if p == 0 { None } else { Some(uid(p)) },
                name: format!("s{u}"),
                start_us,
                dur_us,
                attrs: Vec::new(),
            })
            .collect();
        let once = assemble(trace_id, root, spans);
        let twice = assemble(trace_id, root, once.spans.clone());
        prop_assert_eq!(once.spans, twice.spans, "a repaired tree needs no repair");
    }
}
