//! car-trace: per-request distributed trace trees.
//!
//! A *trace* follows one client request across the cluster: the router
//! mints a 128-bit trace id plus a root span, forwards the context on
//! every fan-out leg as `X-Car-Trace-Id` / `X-Car-Parent-Span`, and
//! each worker adopts it, records its own child spans, and returns them
//! in a compact `X-Car-Spans` response header. The router assembles the
//! per-leg payloads into one rooted tree and applies tail-based
//! retention: every errored or slow trace is kept, plus a deterministic
//! 1-in-N sample of the rest.
//!
//! The per-request machinery is thread-local: [`begin_request`] arms a
//! `Cell<bool>` fast flag and an `Option<ActiveTrace>`; `time_span!`
//! call sites check the flag (one thread-local read) and, when a trace
//! is live, append a child span to the active tree. When no trace is
//! live and the flat profile is disabled, span sites stay inert — one
//! relaxed atomic load plus one `Cell` read, preserving the <2%
//! disarmed-overhead budget of the flat profile.
//!
//! Finished spans are also published into a fixed-capacity per-process
//! ring ([`publish_spans`]) so a debug endpoint can answer "what did
//! this process record for trace T" even when the response header was
//! truncated.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::counters::TRACE;

/// Request header carrying the 128-bit trace id as 32 lowercase hex.
pub const TRACE_ID_HEADER: &str = "x-car-trace-id";
/// Request header carrying the parent span uid as 16 lowercase hex.
pub const PARENT_SPAN_HEADER: &str = "x-car-parent-span";
/// Response header carrying the process's spans for the request.
pub const SPANS_HEADER: &str = "x-car-spans";

/// Spans a single process may attach to one trace; excess spans are
/// dropped at the recorder, never mid-tree.
pub const MAX_TRACE_SPANS: usize = 128;
/// Records encoded into / decoded from one `X-Car-Spans` header.
pub const MAX_WIRE_SPANS: usize = 48;
/// Byte budget for one `X-Car-Spans` header value.
pub const MAX_WIRE_BYTES: usize = 8 * 1024;
/// Attributes one span may carry.
pub const MAX_SPAN_ATTRS: usize = 16;
/// Cross-process clock-skew tolerance applied when nesting child spans
/// into their parents at assembly time, in microseconds.
pub const CLOCK_SKEW_TOLERANCE_US: u64 = 2_000;
/// Capacity of the per-process finished-span ring.
pub const SPAN_RING_CAPACITY: usize = 512;

/// A 128-bit trace identifier, never zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u128);

impl TraceId {
    /// Parses exactly 32 lowercase hex digits; anything else (wrong
    /// length, uppercase, stray bytes, all-zero) is rejected so a
    /// hostile header starts a fresh trace instead of poisoning one.
    pub fn from_hex(raw: &str) -> Option<TraceId> {
        if raw.len() != 32 {
            return None;
        }
        let mut value: u128 = 0;
        for byte in raw.bytes() {
            let digit = hex_digit(byte)?;
            value = value.wrapping_shl(4) | u128::from(digit);
        }
        if value == 0 {
            None
        } else {
            Some(TraceId(value))
        }
    }

    /// The canonical 32-digit lowercase hex rendering.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// The low 64 bits, used for deterministic 1-in-N sampling.
    pub fn low64(self) -> u64 {
        (self.0 & u128::from(u64::MAX)) as u64
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A 64-bit span identifier, unique within a trace, never zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanUid(u64);

impl SpanUid {
    /// Parses exactly 16 lowercase hex digits, rejecting zero.
    pub fn from_hex(raw: &str) -> Option<SpanUid> {
        if raw.len() != 16 {
            return None;
        }
        let mut value: u64 = 0;
        for byte in raw.bytes() {
            let digit = hex_digit(byte)?;
            value = value.wrapping_shl(4) | u64::from(digit);
        }
        if value == 0 {
            None
        } else {
            Some(SpanUid(value))
        }
    }

    /// The canonical 16-digit lowercase hex rendering.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for SpanUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn hex_digit(byte: u8) -> Option<u8> {
    match byte {
        b'0'..=b'9' => Some(byte.wrapping_sub(b'0')),
        b'a'..=b'f' => Some(byte.wrapping_sub(b'a').wrapping_add(10)),
        _ => None,
    }
}

/// splitmix64: a tiny, well-mixed permutation used to derive ids from
/// the wall clock, the pid, and a process-local counter. Not secret,
/// not cryptographic — ids only need to be unique in practice.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

fn mint_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
        .unwrap_or(0);
    // Relaxed: the counter only feeds id uniqueness.
    let count = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
    nanos ^ u64::from(std::process::id()).rotate_left(32) ^ count.rotate_left(17)
}

/// Mints a fresh, non-zero 128-bit trace id.
pub fn mint_trace_id() -> TraceId {
    let hi = splitmix64(mint_seed());
    let lo = splitmix64(hi ^ mint_seed());
    let value = (u128::from(hi) << 64) | u128::from(lo);
    if value == 0 {
        TraceId(1)
    } else {
        TraceId(value)
    }
}

/// Mints a fresh, non-zero span uid.
pub fn mint_span_uid() -> SpanUid {
    let value = splitmix64(mint_seed());
    if value == 0 {
        SpanUid(1)
    } else {
        SpanUid(value)
    }
}

/// An adopted propagation context: the trace this request belongs to
/// and, when the caller recorded a span for this leg, its uid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span of this request joins.
    pub trace_id: TraceId,
    /// The caller's span for this leg; the adopting process's root span
    /// becomes its child.
    pub parent: Option<SpanUid>,
}

impl TraceContext {
    /// Parses the propagation headers. Any malformation — bad length,
    /// non-hex bytes, a parent that fails to parse — rejects the whole
    /// context, so the server starts a fresh trace rather than grafting
    /// spans onto a hostile id.
    pub fn from_headers(
        trace_id: Option<&str>,
        parent: Option<&str>,
    ) -> Option<TraceContext> {
        let trace_id = TraceId::from_hex(trace_id?.trim())?;
        let parent = match parent {
            None => None,
            Some(raw) => Some(SpanUid::from_hex(raw.trim())?),
        };
        Some(TraceContext { trace_id, parent })
    }
}

/// One finished span: a named interval with wall-clock start, duration,
/// parent linkage, and free-form string attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's uid.
    pub uid: SpanUid,
    /// The enclosing span, `None` for a root.
    pub parent: Option<SpanUid>,
    /// The span name, e.g. `serve.request` or `router.leg.rules`.
    pub name: String,
    /// Wall-clock start in microseconds since the Unix epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Attribute pairs, e.g. `("shard", "2")`, `("cache", "hit")`.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// End of the span (`start + dur`), saturating.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

struct OpenSpan {
    uid: SpanUid,
    parent: SpanUid,
    name: &'static str,
    start_us: u64,
    attrs: Vec<(String, String)>,
}

struct ActiveTrace {
    trace_id: TraceId,
    root_uid: SpanUid,
    root_name: &'static str,
    root_parent: Option<SpanUid>,
    root_start_us: u64,
    started: Instant,
    root_attrs: Vec<(String, String)>,
    open: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
}

thread_local! {
    static TRACE_ON: Cell<bool> = const { Cell::new(false) };
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Whether this thread currently has a live request trace. One `Cell`
/// read; the span-site fast path.
pub fn trace_active() -> bool {
    TRACE_ON.with(Cell::get)
}

fn with_active<R>(f: impl FnOnce(&mut ActiveTrace) -> R) -> Option<R> {
    ACTIVE.with(|slot| {
        let mut guard = slot.try_borrow_mut().ok()?;
        guard.as_mut().map(f)
    })
}

/// Wall-clock now in microseconds since the Unix epoch (0 if the clock
/// is before the epoch).
pub fn wall_now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Guard for one request's trace. Obtained from [`begin_request`];
/// consumed by [`RequestTrace::finish`]. Dropping without finishing
/// discards the trace and disarms the thread.
#[must_use = "the trace ends when the guard is finished or dropped"]
pub struct RequestTrace {
    finished: bool,
}

/// Begins a request trace on this thread. With a context the request
/// joins the caller's trace (the new root span is a child of
/// `ctx.parent`); without one a fresh trace id is minted.
pub fn begin_request(ctx: Option<TraceContext>, root_name: &'static str) -> RequestTrace {
    let (trace_id, parent) = match ctx {
        Some(ctx) => (ctx.trace_id, ctx.parent),
        None => (mint_trace_id(), None),
    };
    let trace = ActiveTrace {
        trace_id,
        root_uid: mint_span_uid(),
        root_name,
        root_parent: parent,
        root_start_us: wall_now_us(),
        started: Instant::now(),
        root_attrs: Vec::new(),
        open: Vec::new(),
        done: Vec::new(),
    };
    ACTIVE.with(|slot| {
        if let Ok(mut guard) = slot.try_borrow_mut() {
            *guard = Some(trace);
        }
    });
    TRACE_ON.with(|flag| flag.set(true));
    RequestTrace { finished: false }
}

/// A request's finished trace: every span this process recorded, root
/// first.
#[derive(Clone, Debug)]
pub struct FinishedTrace {
    /// The trace id all spans share.
    pub trace_id: TraceId,
    /// The root span's uid.
    pub root_uid: SpanUid,
    /// All spans, the root span first.
    pub spans: Vec<SpanRecord>,
}

impl RequestTrace {
    /// The live trace's id, for response headers and log fields.
    pub fn trace_id(&self) -> Option<TraceId> {
        with_active(|t| t.trace_id)
    }

    /// The root span's uid, the default parent for externally timed
    /// child spans.
    pub fn root_uid(&self) -> Option<SpanUid> {
        with_active(|t| t.root_uid)
    }

    /// Closes the root span and returns everything recorded. Spans
    /// still open (a guard leaked across the finish) are closed as of
    /// now.
    pub fn finish(mut self) -> Option<FinishedTrace> {
        self.finished = true;
        TRACE_ON.with(|flag| flag.set(false));
        let trace =
            ACTIVE.with(|slot| slot.try_borrow_mut().ok().and_then(|mut g| g.take()))?;
        let root_dur_us =
            u64::try_from(trace.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let now_us = wall_now_us();
        let mut spans = Vec::with_capacity(
            trace.done.len().saturating_add(trace.open.len()).saturating_add(1),
        );
        spans.push(SpanRecord {
            trace_id: trace.trace_id,
            uid: trace.root_uid,
            parent: trace.root_parent,
            name: trace.root_name.to_string(),
            start_us: trace.root_start_us,
            dur_us: root_dur_us,
            attrs: trace.root_attrs,
        });
        spans.extend(trace.done);
        for open in trace.open {
            spans.push(SpanRecord {
                trace_id: trace.trace_id,
                uid: open.uid,
                parent: Some(open.parent),
                name: open.name.to_string(),
                start_us: open.start_us,
                dur_us: now_us.saturating_sub(open.start_us),
                attrs: open.attrs,
            });
        }
        Some(FinishedTrace { trace_id: trace.trace_id, root_uid: trace.root_uid, spans })
    }
}

impl Drop for RequestTrace {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        TRACE_ON.with(|flag| flag.set(false));
        ACTIVE.with(|slot| {
            if let Ok(mut guard) = slot.try_borrow_mut() {
                *guard = None;
            }
        });
    }
}

/// Opens a child span under the innermost open span (or the root).
/// Returns `None` when no trace is live or the per-trace span budget is
/// spent. Called by `time_span!` sites via `span_site`.
pub(crate) fn start_child(name: &'static str) -> Option<SpanUid> {
    if !trace_active() {
        return None;
    }
    with_active(|trace| {
        if trace.done.len().saturating_add(trace.open.len()) >= MAX_TRACE_SPANS {
            return None;
        }
        let uid = mint_span_uid();
        let parent = trace.open.last().map(|o| o.uid).unwrap_or(trace.root_uid);
        trace.open.push(OpenSpan {
            uid,
            parent,
            name,
            start_us: wall_now_us(),
            attrs: Vec::new(),
        });
        Some(uid)
    })
    .flatten()
}

/// Closes the child span `uid` with the guard-measured `elapsed`.
pub(crate) fn end_child(uid: SpanUid, elapsed: Duration) {
    with_active(|trace| {
        let Some(pos) = trace.open.iter().rposition(|o| o.uid == uid) else {
            return;
        };
        let open = trace.open.remove(pos);
        if trace.done.len() >= MAX_TRACE_SPANS {
            return;
        }
        trace.done.push(SpanRecord {
            trace_id: trace.trace_id,
            uid: open.uid,
            parent: Some(open.parent),
            name: open.name.to_string(),
            start_us: open.start_us,
            dur_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            attrs: open.attrs,
        });
    });
}

/// Attaches `key=value` to the innermost open span, or to the root when
/// no child is open. No-op without a live trace; attribute count per
/// span is bounded.
pub fn annotate(key: &str, value: &str) {
    if !trace_active() {
        return;
    }
    with_active(|trace| {
        let attrs = match trace.open.last_mut() {
            Some(open) => &mut open.attrs,
            None => &mut trace.root_attrs,
        };
        if attrs.len() < MAX_SPAN_ATTRS {
            attrs.push((key.to_string(), value.to_string()));
        }
    });
}

/// The live trace id and innermost span uid on this thread — what an
/// outgoing request should propagate as `X-Car-Trace-Id` /
/// `X-Car-Parent-Span`.
pub fn current_context() -> Option<(TraceId, SpanUid)> {
    if !trace_active() {
        return None;
    }
    with_active(|trace| {
        let parent = trace.open.last().map(|o| o.uid).unwrap_or(trace.root_uid);
        (trace.trace_id, parent)
    })
}

/// Appends an externally timed span (e.g. a router fan-out leg measured
/// on a worker thread, or spans decoded from a leg's `X-Car-Spans`
/// header) to this thread's live trace. No-op without one.
pub fn record_span(record: SpanRecord) {
    with_active(|trace| {
        if trace.done.len() < MAX_TRACE_SPANS {
            trace.done.push(record);
        }
    });
}

// ---------------------------------------------------------------------
// Wire codec: the `X-Car-Spans` header value.
//
// Records are joined by `|`; fields within a record by `;`:
//
//   uid;parent;name;start_us;dur_us;k=v,k=v
//
// `parent` is `-` for a root. Names, keys, and values are sanitized to
// a header-safe alphabet (the delimiters and control bytes map to `_`),
// so the value never needs quoting and can never smuggle CR/LF.
// ---------------------------------------------------------------------

fn sanitize(raw: &str, out: &mut String) {
    for ch in raw.chars() {
        let ok = ch.is_ascii_alphanumeric() || matches!(ch, '.' | '_' | '-' | ':' | '/');
        out.push(if ok { ch } else { '_' });
    }
}

/// Encodes `spans` as an `X-Car-Spans` header value, truncating at
/// [`MAX_WIRE_SPANS`] records or [`MAX_WIRE_BYTES`] bytes — whichever
/// comes first. The trace id is not repeated per record; it rides in
/// `X-Car-Trace-Id`.
pub fn encode_spans(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for record in spans.iter().take(MAX_WIRE_SPANS) {
        let mut piece = String::new();
        piece.push_str(&record.uid.to_hex());
        piece.push(';');
        match record.parent {
            Some(parent) => piece.push_str(&parent.to_hex()),
            None => piece.push('-'),
        }
        piece.push(';');
        sanitize(&record.name, &mut piece);
        piece.push(';');
        piece.push_str(&record.start_us.to_string());
        piece.push(';');
        piece.push_str(&record.dur_us.to_string());
        piece.push(';');
        for (i, (key, value)) in record.attrs.iter().enumerate() {
            if i > 0 {
                piece.push(',');
            }
            sanitize(key, &mut piece);
            piece.push('=');
            sanitize(value, &mut piece);
        }
        let sep = usize::from(!out.is_empty());
        if out.len().saturating_add(piece.len()).saturating_add(sep) > MAX_WIRE_BYTES {
            break;
        }
        if !out.is_empty() {
            out.push('|');
        }
        out.push_str(&piece);
    }
    out
}

/// Decodes an `X-Car-Spans` header value. Malformed records are skipped
/// (never an error — the header crosses a trust boundary); at most
/// [`MAX_WIRE_SPANS`] records are returned, stamped with `trace_id`.
pub fn decode_spans(trace_id: TraceId, raw: &str) -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for piece in raw.split('|') {
        if out.len() >= MAX_WIRE_SPANS {
            break;
        }
        let mut fields = piece.splitn(6, ';');
        let Some(uid) = fields.next().and_then(SpanUid::from_hex) else {
            continue;
        };
        let parent = match fields.next() {
            Some("-") => None,
            Some(raw_parent) => match SpanUid::from_hex(raw_parent) {
                Some(parent) => Some(parent),
                None => continue,
            },
            None => continue,
        };
        let Some(name) = fields.next() else { continue };
        let Some(start_us) = fields.next().and_then(|f| f.parse::<u64>().ok()) else {
            continue;
        };
        let Some(dur_us) = fields.next().and_then(|f| f.parse::<u64>().ok()) else {
            continue;
        };
        let mut attrs = Vec::new();
        if let Some(raw_attrs) = fields.next() {
            for pair in raw_attrs.split(',') {
                if pair.is_empty() || attrs.len() >= MAX_SPAN_ATTRS {
                    break;
                }
                if let Some((key, value)) = pair.split_once('=') {
                    attrs.push((key.to_string(), value.to_string()));
                }
            }
        }
        out.push(SpanRecord {
            trace_id,
            uid,
            parent,
            name: name.to_string(),
            start_us,
            dur_us,
            attrs,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Assembly: raw span soup -> one rooted tree.
// ---------------------------------------------------------------------

/// A fully assembled trace: a single rooted tree of spans.
#[derive(Clone, Debug)]
pub struct AssembledTrace {
    /// The trace id all spans share.
    pub trace_id: TraceId,
    /// The root span's uid; its record is `spans[0]`.
    pub root: SpanUid,
    /// All spans, root first, the rest ordered by start time.
    pub spans: Vec<SpanRecord>,
    /// The root span's duration — the end-to-end request latency.
    pub duration_us: u64,
}

/// Assembles `spans` into a single rooted tree under `root_uid`:
/// duplicate uids collapse (first wins), unresolvable or missing
/// parents re-parent to the root, parent cycles break to the root, and
/// child intervals are clamped into their parent's window whenever they
/// overhang by more than [`CLOCK_SKEW_TOLERANCE_US`] (cross-process
/// clocks are only loosely aligned). If no record carries `root_uid` a
/// synthetic root envelope is created, so the result is always a tree.
pub fn assemble(
    trace_id: TraceId,
    root_uid: SpanUid,
    spans: Vec<SpanRecord>,
) -> AssembledTrace {
    // Deduplicate by uid, first record wins; drop zero uids outright.
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut unique: Vec<SpanRecord> = Vec::with_capacity(spans.len());
    for span in spans {
        if span.uid.0 == 0 || !seen.insert(span.uid.0) {
            continue;
        }
        unique.push(span);
    }

    // Ensure the root record exists and is a true root.
    let root_pos = unique.iter().position(|s| s.uid == root_uid);
    let mut root = match root_pos {
        Some(pos) => unique.remove(pos),
        None => {
            let start = unique.iter().map(|s| s.start_us).min().unwrap_or(0);
            let end = unique.iter().map(SpanRecord::end_us).max().unwrap_or(start);
            SpanRecord {
                trace_id,
                uid: root_uid,
                parent: None,
                name: "(root)".to_string(),
                start_us: start,
                dur_us: end.saturating_sub(start),
                attrs: Vec::new(),
            }
        }
    };
    root.trace_id = trace_id;
    root.parent = None;

    // Re-parent: every non-root span must name a resolvable parent, and
    // walking parents must reach the root without cycling.
    for span in unique.iter_mut() {
        span.trace_id = trace_id;
        if span.parent.is_none() {
            span.parent = Some(root_uid);
        }
    }
    let uids: BTreeSet<u64> = unique.iter().map(|s| s.uid.0).collect();
    for span in unique.iter_mut() {
        if let Some(parent) = span.parent {
            if parent != root_uid && !uids.contains(&parent.0) {
                span.parent = Some(root_uid);
            }
        }
    }
    // Break cycles: follow each span's parent chain; a chain that does
    // not reach the root within the span count is cyclic, and the span
    // at its head re-parents to the root.
    let parent_of = |list: &[SpanRecord], uid: SpanUid| -> Option<SpanUid> {
        list.iter().find(|s| s.uid == uid).and_then(|s| s.parent)
    };
    for i in 0..unique.len() {
        let Some(start) = unique.get(i).map(|s| s.uid) else { break };
        let mut cursor = start;
        let mut steps = 0usize;
        let cyclic = loop {
            let Some(parent) = parent_of(&unique, cursor) else {
                break false;
            };
            if parent == root_uid {
                break false;
            }
            steps = steps.saturating_add(1);
            if steps > unique.len() {
                break true;
            }
            cursor = parent;
        };
        if cyclic {
            if let Some(span) = unique.get_mut(i) {
                span.parent = Some(root_uid);
            }
        }
    }

    // Clamp children into their parent's window, parents before
    // children (BFS from the root), tolerating small cross-process
    // clock skew: only overhangs beyond the tolerance are clamped.
    let mut ordered: Vec<SpanRecord> = Vec::with_capacity(unique.len().saturating_add(1));
    ordered.push(root);
    let mut frontier = vec![root_uid];
    let mut remaining = unique;
    while let Some(parent_uid) = frontier.pop() {
        let (parent_start, parent_end) = ordered
            .iter()
            .find(|s| s.uid == parent_uid)
            .map(|s| (s.start_us, s.end_us()))
            .unwrap_or((0, u64::MAX));
        let mut rest = Vec::with_capacity(remaining.len());
        for mut span in remaining {
            if span.parent == Some(parent_uid) {
                if span.start_us.saturating_add(CLOCK_SKEW_TOLERANCE_US) < parent_start {
                    span.start_us = parent_start;
                }
                if span.start_us > parent_end {
                    span.start_us = parent_end;
                }
                if span.end_us() > parent_end.saturating_add(CLOCK_SKEW_TOLERANCE_US) {
                    span.dur_us = parent_end.saturating_sub(span.start_us);
                }
                frontier.push(span.uid);
                ordered.push(span);
            } else {
                rest.push(span);
            }
        }
        remaining = rest;
    }
    // Anything left is unreachable (its parent chain was dropped with a
    // duplicate); attach directly to the root rather than losing it,
    // clamped into the root envelope like any other child.
    let (root_start, root_end) =
        ordered.first().map(|s| (s.start_us, s.end_us())).unwrap_or((0, u64::MAX));
    for mut span in remaining {
        span.parent = Some(root_uid);
        if span.start_us.saturating_add(CLOCK_SKEW_TOLERANCE_US) < root_start {
            span.start_us = root_start;
        }
        if span.start_us > root_end {
            span.start_us = root_end;
        }
        if span.end_us() > root_end.saturating_add(CLOCK_SKEW_TOLERANCE_US) {
            span.dur_us = root_end.saturating_sub(span.start_us);
        }
        ordered.push(span);
    }

    let duration_us = ordered.first().map(|s| s.dur_us).unwrap_or(0);
    if let Some(tail) = ordered.get_mut(1..) {
        tail.sort_by(|a, b| a.start_us.cmp(&b.start_us).then(a.uid.0.cmp(&b.uid.0)));
    }
    AssembledTrace { trace_id, root: root_uid, spans: ordered, duration_us }
}

// ---------------------------------------------------------------------
// Tail-based retention.
// ---------------------------------------------------------------------

/// Why a trace was kept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetainReason {
    /// The request errored, tripped a breaker, or was deadline-aborted.
    Error,
    /// End-to-end latency exceeded the slow threshold.
    Slow,
    /// Kept by the deterministic 1-in-N sample.
    Sampled,
}

impl RetainReason {
    /// The metrics label for this reason.
    pub fn label(self) -> &'static str {
        match self {
            RetainReason::Error => "error",
            RetainReason::Slow => "slow",
            RetainReason::Sampled => "sampled",
        }
    }
}

/// Tail-sampling policy knobs for a [`TraceStore`].
#[derive(Clone, Copy, Debug)]
pub struct TraceStorePolicy {
    /// Retained traces kept (FIFO eviction beyond this).
    pub capacity: usize,
    /// Keep 1 in this many healthy traces (`0` disables sampling).
    pub sample_every: u64,
    /// Traces at or above this end-to-end latency are always kept.
    pub slow_threshold_us: u64,
}

impl Default for TraceStorePolicy {
    fn default() -> Self {
        TraceStorePolicy { capacity: 256, sample_every: 16, slow_threshold_us: 250_000 }
    }
}

/// A retained trace with the reason it survived tail sampling.
#[derive(Clone, Debug)]
pub struct StoredTrace {
    /// The assembled tree.
    pub trace: AssembledTrace,
    /// Why it was kept.
    pub reason: RetainReason,
}

/// Bounded store of retained traces with tail-based retention: errored
/// and slow traces always survive; the rest survive 1-in-N, decided by
/// the trace id's low bits so every process samples identically.
pub struct TraceStore {
    policy: TraceStorePolicy,
    inner: Mutex<std::collections::VecDeque<StoredTrace>>,
}

impl TraceStore {
    /// A store with the given policy.
    pub fn new(policy: TraceStorePolicy) -> TraceStore {
        TraceStore { policy, inner: Mutex::new(std::collections::VecDeque::new()) }
    }

    fn lock(&self) -> MutexGuard<'_, std::collections::VecDeque<StoredTrace>> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The store's policy.
    pub fn policy(&self) -> TraceStorePolicy {
        self.policy
    }

    /// Offers a finished trace. `errored` marks a trace that must be
    /// kept (5xx, breaker trip, deadline abort). Returns the retention
    /// reason, or `None` when the trace was sampled out; the global
    /// `TRACE` counters record the outcome either way.
    pub fn offer(&self, trace: AssembledTrace, errored: bool) -> Option<RetainReason> {
        let reason = if errored {
            RetainReason::Error
        } else if self.policy.slow_threshold_us > 0
            && trace.duration_us >= self.policy.slow_threshold_us
        {
            RetainReason::Slow
        } else if self.policy.sample_every > 0
            && trace.trace_id.low64().checked_rem(self.policy.sample_every).unwrap_or(1)
                == 0
        {
            RetainReason::Sampled
        } else {
            TRACE.add_discarded();
            return None;
        };
        match reason {
            RetainReason::Error => TRACE.add_retained_error(),
            RetainReason::Slow => TRACE.add_retained_slow(),
            RetainReason::Sampled => TRACE.add_retained_sampled(),
        }
        let mut traces = self.lock();
        traces.push_back(StoredTrace { trace, reason });
        while traces.len() > self.policy.capacity {
            traces.pop_front();
        }
        Some(reason)
    }

    /// Summaries of every retained trace, newest first.
    pub fn summaries(&self) -> Vec<TraceSummary> {
        self.lock()
            .iter()
            .rev()
            .map(|stored| TraceSummary {
                trace_id: stored.trace.trace_id,
                duration_us: stored.trace.duration_us,
                spans: stored.trace.spans.len(),
                reason: stored.reason,
            })
            .collect()
    }

    /// The retained trace with this id, if any.
    pub fn get(&self, trace_id: TraceId) -> Option<StoredTrace> {
        self.lock().iter().find(|s| s.trace.trace_id == trace_id).cloned()
    }
}

/// One row of [`TraceStore::summaries`].
#[derive(Clone, Copy, Debug)]
pub struct TraceSummary {
    /// The trace id.
    pub trace_id: TraceId,
    /// End-to-end latency (root span duration), microseconds.
    pub duration_us: u64,
    /// Spans in the assembled tree.
    pub spans: usize,
    /// Why the trace was retained.
    pub reason: RetainReason,
}

// ---------------------------------------------------------------------
// Chrome trace_event export.
// ---------------------------------------------------------------------

fn json_escape(raw: &str, out: &mut String) {
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders an assembled trace as Chrome `trace_event` JSON — complete
/// `X`-phase events loadable in `about:tracing` or Perfetto. Spans map
/// to one event each; the uid, parent, and attributes ride in `args`.
pub fn chrome_trace_json(trace: &AssembledTrace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape(&span.name, &mut out);
        out.push_str("\",\"cat\":\"car\",\"ph\":\"X\",\"ts\":");
        out.push_str(&span.start_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&span.dur_us.to_string());
        let tid = span
            .attrs
            .iter()
            .find(|(k, _)| k == "shard")
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .map(|shard| shard.saturating_add(1))
            .unwrap_or(0);
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"args\":{\"uid\":\"");
        json_escape(&span.uid.to_hex(), &mut out);
        out.push_str("\",\"parent\":\"");
        match span.parent {
            Some(parent) => json_escape(&parent.to_hex(), &mut out),
            None => out.push('-'),
        }
        out.push('"');
        for (key, value) in &span.attrs {
            out.push_str(",\"");
            json_escape(key, &mut out);
            out.push_str("\":\"");
            json_escape(value, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("],\"otherData\":{\"trace_id\":\"");
    json_escape(&trace.trace_id.to_hex(), &mut out);
    out.push_str("\"}}");
    out
}

// ---------------------------------------------------------------------
// Per-process finished-span ring.
// ---------------------------------------------------------------------

#[allow(clippy::declare_interior_mutable_const)] // template for array init only
const EMPTY_RING_SLOT: Mutex<Option<SpanRecord>> = Mutex::new(None);
static RING: [Mutex<Option<SpanRecord>>; SPAN_RING_CAPACITY] =
    [EMPTY_RING_SLOT; SPAN_RING_CAPACITY];
static RING_HEAD: AtomicUsize = AtomicUsize::new(0);

/// Publishes finished spans into the per-process ring, overwriting the
/// oldest entries. Slot reservation is a wait-free `fetch_add`; each
/// slot copy holds an uncontended per-slot mutex for the clone only.
pub fn publish_spans(spans: &[SpanRecord]) {
    for span in spans {
        // Relaxed: the head only reserves a slot index; slot contents
        // are guarded by the per-slot mutex.
        let index = RING_HEAD
            .fetch_add(1, Ordering::Relaxed)
            .checked_rem(SPAN_RING_CAPACITY)
            .unwrap_or(0);
        if let Some(slot) = RING.get(index) {
            let mut guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            *guard = Some(span.clone());
        }
    }
}

/// Every span in the ring belonging to `trace_id`, oldest first.
pub fn spans_for_trace(trace_id: TraceId) -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for slot in &RING {
        let guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(span) = guard.as_ref() {
            if span.trace_id == trace_id {
                out.push(span.clone());
            }
        }
    }
    out.sort_by(|a, b| a.start_us.cmp(&b.start_us).then(a.uid.0.cmp(&b.uid.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_hex_round_trips() {
        let id = mint_trace_id();
        assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        let uid = mint_span_uid();
        assert_eq!(SpanUid::from_hex(&uid.to_hex()), Some(uid));
    }

    #[test]
    fn hostile_headers_are_rejected() {
        for bad in [
            "",
            "00000000000000000000000000000000",  // zero
            "0123456789abcdef0123456789abcde",   // short
            "0123456789abcdef0123456789abcdef0", // long
            "0123456789ABCDEF0123456789abcdef",  // uppercase
            "0123456789abcdef0123456789abcdeg",  // non-hex
            "0123456789abcdef0123456789abcde\u{7f}", // control
            "'; DROP TABLE traces; --",          // garbage
        ] {
            assert_eq!(TraceId::from_hex(bad), None, "{bad:?}");
            assert!(TraceContext::from_headers(Some(bad), None).is_none(), "{bad:?}");
        }
        let good = mint_trace_id().to_hex();
        assert!(TraceContext::from_headers(Some(&good), Some("xyz")).is_none());
        assert!(TraceContext::from_headers(Some(&good), Some("")).is_none());
        let ctx = TraceContext::from_headers(Some(&good), None).expect("valid id");
        assert_eq!(ctx.parent, None);
    }

    #[test]
    fn context_round_trips_through_headers() {
        let trace_id = mint_trace_id();
        let parent = mint_span_uid();
        let ctx =
            TraceContext::from_headers(Some(&trace_id.to_hex()), Some(&parent.to_hex()))
                .expect("well-formed context");
        assert_eq!(ctx, TraceContext { trace_id, parent: Some(parent) });
    }

    #[test]
    fn begin_finish_produces_rooted_spans() {
        let trace = begin_request(None, "test.root");
        assert!(trace_active());
        let trace_id = trace.trace_id().expect("live trace");
        {
            let uid = start_child("test.child").expect("child opens");
            annotate("k", "v");
            end_child(uid, Duration::from_micros(5));
        }
        let finished = trace.finish().expect("finishes");
        assert!(!trace_active());
        assert_eq!(finished.trace_id, trace_id);
        assert_eq!(finished.spans.len(), 2);
        let root = &finished.spans[0];
        assert_eq!(root.uid, finished.root_uid);
        assert_eq!(root.parent, None);
        let child = &finished.spans[1];
        assert_eq!(child.parent, Some(finished.root_uid));
        assert_eq!(child.attrs, vec![("k".to_string(), "v".to_string())]);
    }

    #[test]
    fn adopted_context_parents_the_root() {
        let upstream = mint_trace_id();
        let leg = mint_span_uid();
        let trace = begin_request(
            Some(TraceContext { trace_id: upstream, parent: Some(leg) }),
            "test.adopted",
        );
        let finished = trace.finish().expect("finishes");
        assert_eq!(finished.trace_id, upstream);
        assert_eq!(finished.spans[0].parent, Some(leg));
    }

    #[test]
    fn dropping_unfinished_disarms_the_thread() {
        let trace = begin_request(None, "test.dropped");
        assert!(trace_active());
        drop(trace);
        assert!(!trace_active());
        assert!(current_context().is_none());
    }

    #[test]
    fn wire_codec_round_trips() {
        let trace_id = mint_trace_id();
        let spans = vec![
            SpanRecord {
                trace_id,
                uid: mint_span_uid(),
                parent: None,
                name: "serve.request".to_string(),
                start_us: 1_000,
                dur_us: 50,
                attrs: vec![("shard".to_string(), "2".to_string())],
            },
            SpanRecord {
                trace_id,
                uid: mint_span_uid(),
                parent: Some(mint_span_uid()),
                name: "wal.append".to_string(),
                start_us: 1_010,
                dur_us: 7,
                attrs: Vec::new(),
            },
        ];
        let encoded = encode_spans(&spans);
        assert!(!encoded.contains('\r') && !encoded.contains('\n'));
        let decoded = decode_spans(trace_id, &encoded);
        assert_eq!(decoded, spans);
    }

    #[test]
    fn wire_codec_sanitizes_hostile_names() {
        let trace_id = mint_trace_id();
        let spans = vec![SpanRecord {
            trace_id,
            uid: mint_span_uid(),
            parent: None,
            name: "evil|;=\r\nname".to_string(),
            start_us: 0,
            dur_us: 0,
            attrs: vec![("a|b".to_string(), "c\r\nd".to_string())],
        }];
        let encoded = encode_spans(&spans);
        assert!(!encoded.contains('\r') && !encoded.contains('\n'));
        let decoded = decode_spans(trace_id, &encoded);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].name, "evil_____name");
        assert_eq!(decoded[0].attrs, vec![("a_b".to_string(), "c__d".to_string())]);
    }

    #[test]
    fn wire_codec_skips_malformed_records() {
        let trace_id = mint_trace_id();
        let uid = mint_span_uid();
        let raw = format!(
            "garbage|{};-;ok;5;6;|;;;;|{};zz;bad;1;2;",
            uid.to_hex(),
            mint_span_uid().to_hex()
        );
        let decoded = decode_spans(trace_id, &raw);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].uid, uid);
        assert_eq!(decoded[0].name, "ok");
    }

    #[test]
    fn assemble_repairs_orphans_and_cycles() {
        let trace_id = mint_trace_id();
        let root = mint_span_uid();
        let (a, b, c) = (mint_span_uid(), mint_span_uid(), mint_span_uid());
        let make = |uid: SpanUid, parent: Option<SpanUid>| SpanRecord {
            trace_id,
            uid,
            parent,
            name: "s".to_string(),
            start_us: 10,
            dur_us: 5,
            attrs: Vec::new(),
        };
        let spans = vec![
            SpanRecord { start_us: 0, dur_us: 100, ..make(root, None) },
            make(a, Some(b)), // cycle a <-> b
            make(b, Some(a)),
            make(c, Some(mint_span_uid())), // unresolvable parent
        ];
        let assembled = assemble(trace_id, root, spans);
        assert_eq!(assembled.spans.len(), 4);
        assert_eq!(assembled.spans[0].uid, root);
        // Every span reaches the root without cycling.
        for span in &assembled.spans[1..] {
            let mut cursor = span.uid;
            let mut steps = 0;
            while cursor != root {
                let parent = assembled
                    .spans
                    .iter()
                    .find(|s| s.uid == cursor)
                    .and_then(|s| s.parent)
                    .expect("parent resolves");
                cursor = parent;
                steps += 1;
                assert!(steps <= assembled.spans.len(), "cycle survived assembly");
            }
        }
    }

    #[test]
    fn assemble_synthesizes_a_missing_root() {
        let trace_id = mint_trace_id();
        let root = mint_span_uid();
        let child = SpanRecord {
            trace_id,
            uid: mint_span_uid(),
            parent: None,
            name: "only".to_string(),
            start_us: 40,
            dur_us: 10,
            attrs: Vec::new(),
        };
        let assembled = assemble(trace_id, root, vec![child]);
        assert_eq!(assembled.spans[0].uid, root);
        assert_eq!(assembled.spans[0].name, "(root)");
        assert_eq!(assembled.spans[0].start_us, 40);
        assert_eq!(assembled.spans[0].dur_us, 10);
        assert_eq!(assembled.spans[1].parent, Some(root));
    }

    #[test]
    fn assemble_clamps_children_beyond_skew_tolerance() {
        let trace_id = mint_trace_id();
        let root = mint_span_uid();
        let child_uid = mint_span_uid();
        let spans = vec![
            SpanRecord {
                trace_id,
                uid: root,
                parent: None,
                name: "root".to_string(),
                start_us: 100_000,
                dur_us: 10_000,
                attrs: Vec::new(),
            },
            SpanRecord {
                trace_id,
                uid: child_uid,
                parent: Some(root),
                name: "child".to_string(),
                start_us: 10_000, // 90ms before the root: beyond tolerance
                dur_us: 500_000,  // and far past its end
                attrs: Vec::new(),
            },
        ];
        let assembled = assemble(trace_id, root, spans);
        let child = &assembled.spans[1];
        assert_eq!(child.start_us, 100_000);
        assert!(child.end_us() <= 110_000 + CLOCK_SKEW_TOLERANCE_US);
    }

    #[test]
    fn tail_retention_keeps_errors_slow_and_samples() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 8,
            sample_every: 1, // keep every healthy trace
            slow_threshold_us: 1_000,
        });
        let make = |dur_us: u64| {
            let trace_id = mint_trace_id();
            let root = mint_span_uid();
            assemble(
                trace_id,
                root,
                vec![SpanRecord {
                    trace_id,
                    uid: root,
                    parent: None,
                    name: "r".to_string(),
                    start_us: 0,
                    dur_us,
                    attrs: Vec::new(),
                }],
            )
        };
        assert_eq!(store.offer(make(10), true), Some(RetainReason::Error));
        assert_eq!(store.offer(make(5_000), false), Some(RetainReason::Slow));
        assert_eq!(store.offer(make(10), false), Some(RetainReason::Sampled));
        let summaries = store.summaries();
        assert_eq!(summaries.len(), 3);
        // Newest first.
        assert_eq!(summaries[0].reason, RetainReason::Sampled);
        let id = summaries[0].trace_id;
        assert!(store.get(id).is_some());
        assert!(store.get(mint_trace_id()).is_none());
    }

    #[test]
    fn tail_retention_samples_deterministically() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 64,
            sample_every: 4,
            slow_threshold_us: u64::MAX,
        });
        for _ in 0..64 {
            let trace_id = mint_trace_id();
            let root = mint_span_uid();
            let trace = assemble(
                trace_id,
                root,
                vec![SpanRecord {
                    trace_id,
                    uid: root,
                    parent: None,
                    name: "r".to_string(),
                    start_us: 0,
                    dur_us: 1,
                    attrs: Vec::new(),
                }],
            );
            let expected = trace_id.low64() % 4 == 0;
            let kept = store.offer(trace, false).is_some();
            assert_eq!(kept, expected, "sampling must be a pure function of the id");
        }
    }

    #[test]
    fn store_evicts_beyond_capacity() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 2,
            sample_every: 1,
            slow_threshold_us: u64::MAX,
        });
        for _ in 0..5 {
            let trace_id = mint_trace_id();
            let root = mint_span_uid();
            store.offer(assemble(trace_id, root, Vec::new()), false);
        }
        assert_eq!(store.summaries().len(), 2);
    }

    #[test]
    fn chrome_export_shape() {
        let trace_id = mint_trace_id();
        let root = mint_span_uid();
        let trace = assemble(
            trace_id,
            root,
            vec![SpanRecord {
                trace_id,
                uid: root,
                parent: None,
                name: "router.request \"q\"".to_string(),
                start_us: 7,
                dur_us: 3,
                attrs: vec![("shard".to_string(), "1".to_string())],
            }],
        );
        let json = chrome_trace_json(&trace);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\"q\\\""));
        assert!(json.contains(&trace_id.to_hex()));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn span_ring_publishes_and_filters_by_trace() {
        let trace_id = mint_trace_id();
        let other = mint_trace_id();
        let make = |tid: TraceId, start_us: u64| SpanRecord {
            trace_id: tid,
            uid: mint_span_uid(),
            parent: None,
            name: "ring".to_string(),
            start_us,
            dur_us: 1,
            attrs: Vec::new(),
        };
        publish_spans(&[make(trace_id, 2), make(other, 1), make(trace_id, 1)]);
        let got = spans_for_trace(trace_id);
        assert!(got.len() >= 2);
        assert!(got.iter().all(|s| s.trace_id == trace_id));
        let starts: Vec<u64> = got.iter().map(|s| s.start_us).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "oldest (by start) first");
    }

    #[test]
    fn ring_wraps_without_losing_the_newest() {
        let trace_id = mint_trace_id();
        let spans: Vec<SpanRecord> = (0..SPAN_RING_CAPACITY + 8)
            .map(|i| SpanRecord {
                trace_id,
                uid: mint_span_uid(),
                parent: None,
                name: "wrap".to_string(),
                start_us: i as u64,
                dur_us: 1,
                attrs: Vec::new(),
            })
            .collect();
        publish_spans(&spans);
        let got = spans_for_trace(trace_id);
        assert!(!got.is_empty());
        let newest = spans.last().map(|s| s.uid).expect("nonempty");
        assert!(got.iter().any(|s| s.uid == newest), "newest span survives the wrap");
    }

    #[test]
    fn span_budget_is_bounded() {
        let trace = begin_request(None, "test.budget");
        for _ in 0..MAX_TRACE_SPANS + 10 {
            if let Some(uid) = start_child("test.budget.child") {
                end_child(uid, Duration::from_micros(1));
            }
        }
        let finished = trace.finish().expect("finishes");
        assert!(finished.spans.len() <= MAX_TRACE_SPANS + 1);
    }
}
