//! # car-obs — zero-dependency observability
//!
//! The shared observability layer for the cyclic-association-rules
//! workspace. Three facilities, each designed to cost one relaxed
//! atomic load when disabled:
//!
//! * **Structured logging** ([`logger`], the [`error!`]…[`trace!`]
//!   macros) — leveled, per-target events rendered as logfmt (default)
//!   or JSON lines on stderr, filtered at runtime through the `CAR_LOG`
//!   environment variable (`CAR_LOG=mine=debug,wal=info`). A bounded
//!   ring buffer can capture recent events for a debug endpoint.
//! * **Span timing** ([`span`], the [`time_span!`] macro) — RAII guards
//!   that accumulate `(count, total ns, max ns)` per span name into a
//!   lock-free flat profile; recording is plain relaxed atomics, and a
//!   disabled span never even reads the clock.
//! * **Mining counters** ([`counters`]) — process-global, monotonic
//!   counters for the ICDE'98 INTERLEAVED optimizations (candidates
//!   pruned by cycle pruning, unit-counts avoided by cycle skipping,
//!   candidate cycles killed by cycle elimination), fed by the mining
//!   kernels and exported by `car mine --stats` and the daemon's
//!   `/metrics` endpoint.
//! * **Distributed tracing** ([`trace`]) — per-request trace trees
//!   propagated across processes as `X-Car-Trace-Id` /
//!   `X-Car-Parent-Span` headers. `time_span!` call sites feed the live
//!   trace as named child spans; finished spans travel back in a
//!   compact `X-Car-Spans` response header, are assembled into one
//!   rooted tree, and survive tail-based retention (errored, slow, or
//!   1-in-N sampled).
//!
//! The crate has no dependencies (the workspace builds offline) and its
//! non-test code is in car-audit's A1 panic-freedom and A3
//! checked-arithmetic scopes: no unwraps, no index expressions, no
//! unchecked counter arithmetic.
//!
//! ## Quick start
//!
//! ```
//! car_obs::init_from_env();
//! car_obs::info!("mine", [units = 64], "mining run starting");
//! {
//!     let _span = car_obs::time_span!("doc.example");
//!     // ... timed work ...
//! }
//! let profile = car_obs::profile_snapshot();
//! assert!(profile.iter().any(|s| s.name == "doc.example"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod logger;
pub mod span;
pub mod trace;

pub use logger::{
    init_from_env, log_enabled, recent_events, set_capture, set_filter, set_json_format,
    EventRecord, Level,
};
pub use span::{
    profile_snapshot, register_span, reset_profile, set_spans_enabled, span, span_site,
    spans_enabled, SpanGuard, SpanId, SpanStat,
};

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket upper bounds shared by every latency histogram in
/// the workspace (the daemon's server-side `/metrics` histogram and
/// car-load's client-side report), in microseconds. Keeping both sides
/// on one const keeps their distributions directly comparable.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 10] =
    [100, 250, 500, 1_000, 2_500, 5_000, 10_000, 100_000, 1_000_000, 2_500_000];

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates the next process-unique request id (monotonic from 1),
/// used to correlate log events belonging to one request.
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    #[test]
    fn latency_bounds_are_sorted() {
        assert!(LATENCY_BUCKET_BOUNDS_US.windows(2).all(|w| w[0] < w[1]));
    }
}
