//! RAII span timing backed by a lock-free flat profile.
//!
//! A *span* is a named region of code. Entering it (via [`time_span!`]
//! or [`span`]) returns a guard; when the guard drops, the elapsed
//! wall-clock time is folded into a fixed-size table of
//! `(count, total ns, max ns)` slots keyed by span id. Recording is
//! three relaxed atomic RMWs on pre-registered slots — no allocation,
//! no locks — so spans are safe inside the mining kernels and the
//! daemon's request path.
//!
//! The name registry *is* behind a mutex, but it is only touched the
//! first time each call site runs ([`time_span!`] caches the id in a
//! `OnceLock`) and when a snapshot is taken.
//!
//! Spans are globally disabled by default: [`span`] checks one relaxed
//! `AtomicBool` and, when disabled, returns an inert guard without even
//! reading the clock. The daemon enables them at boot; the CLI enables
//! them for `--stats` runs; `CAR_SPANS=1` enables them anywhere.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Capacity of the flat profile. Registrations past this return a
/// sentinel id whose guards record nothing; with a handful of spans per
/// crate this is generous.
pub const MAX_SPANS: usize = 64;

/// Sentinel for "registry full" — guards with this id are inert.
const OVERFLOW: u32 = u32::MAX;

/// Identifies a registered span. Obtained from [`register_span`] and
/// cheap to copy; [`time_span!`] manages one per call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

struct Slot {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // template for array init only
const EMPTY_SLOT: Slot = Slot {
    count: AtomicU64::new(0),
    total_ns: AtomicU64::new(0),
    max_ns: AtomicU64::new(0),
};

static SLOTS: [Slot; MAX_SPANS] = [EMPTY_SLOT; MAX_SPANS];
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);

fn names_lock() -> std::sync::MutexGuard<'static, Vec<&'static str>> {
    NAMES.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Turns span recording on or off process-wide. Guards created while
/// disabled stay inert even if recording is enabled before they drop.
pub fn set_spans_enabled(enabled: bool) {
    SPANS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Registers `name` in the profile (idempotent — the same name returns
/// the same id). Cold path: takes the registry mutex. Prefer
/// [`time_span!`], which calls this once per call site.
pub fn register_span(name: &'static str) -> SpanId {
    let mut names = names_lock();
    if let Some(pos) = names.iter().position(|n| *n == name) {
        return SpanId(u32::try_from(pos).unwrap_or(OVERFLOW));
    }
    if names.len() >= MAX_SPANS {
        return SpanId(OVERFLOW);
    }
    names.push(name);
    let pos = names.len().saturating_sub(1);
    SpanId(u32::try_from(pos).unwrap_or(OVERFLOW))
}

/// Enters the span: returns a guard that records elapsed time into
/// `id`'s slot when dropped. When spans are disabled (or `id` overflowed
/// the registry) the guard is inert and the clock is never read.
#[must_use = "the span ends when the guard drops; binding to _ ends it immediately"]
pub fn span(id: SpanId) -> SpanGuard {
    // audit:allow(a6-relaxed-control) reason="span capture is sampling-tolerant: a stale enabled flag loses or adds one span around the toggle, and the slot counters are monotonic atomics"
    if !SPANS_ENABLED.load(Ordering::Relaxed) || id.0 == OVERFLOW {
        return SpanGuard { flat: None, traced: None, started: None };
    }
    SpanGuard { flat: Some(id), traced: None, started: Some(Instant::now()) }
}

/// Enters a span that records into the flat profile (when spans are
/// enabled) *and* into this thread's live request trace (when one is
/// active — see [`crate::trace::begin_request`]). Either sink may be
/// armed independently; with both disarmed the guard is inert and the
/// clock is never read, so the cost is one relaxed atomic load plus one
/// thread-local flag read. This is what [`time_span!`] expands to.
#[must_use = "the span ends when the guard drops; binding to _ ends it immediately"]
pub fn span_site(id: SpanId, name: &'static str) -> SpanGuard {
    // audit:allow(a6-relaxed-control) reason="span capture is sampling-tolerant: a stale enabled flag loses or adds one span around the toggle, and the slot counters are monotonic atomics"
    let enabled = SPANS_ENABLED.load(Ordering::Relaxed);
    let flat = if enabled && id.0 != OVERFLOW { Some(id) } else { None };
    let traced =
        if crate::trace::trace_active() { crate::trace::start_child(name) } else { None };
    if flat.is_none() && traced.is_none() {
        return SpanGuard { flat: None, traced: None, started: None };
    }
    SpanGuard { flat, traced, started: Some(Instant::now()) }
}

/// RAII guard returned by [`span`] / [`span_site`]; records on drop.
pub struct SpanGuard {
    flat: Option<SpanId>,
    traced: Option<crate::trace::SpanUid>,
    started: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started.take() else { return };
        let elapsed = started.elapsed();
        if let Some(id) = self.flat.take() {
            if let Some(slot) = SLOTS.get(id.0 as usize) {
                let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
                slot.count.fetch_add(1, Ordering::Relaxed);
                slot.total_ns.fetch_add(ns, Ordering::Relaxed);
                slot.max_ns.fetch_max(ns, Ordering::Relaxed);
            }
        }
        if let Some(uid) = self.traced.take() {
            crate::trace::end_child(uid, elapsed);
        }
    }
}

/// One row of the flat profile.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// The span name as registered.
    pub name: &'static str,
    /// How many guards for this span have dropped.
    pub count: u64,
    /// Total elapsed nanoseconds across all drops.
    pub total_ns: u64,
    /// The single longest recorded duration, in nanoseconds.
    pub max_ns: u64,
}

/// A snapshot of every registered span, in registration order. Rows
/// with `count == 0` are included so callers can see which spans exist
/// even before they fire.
pub fn profile_snapshot() -> Vec<SpanStat> {
    let names = names_lock();
    let mut out = Vec::with_capacity(names.len());
    for (pos, name) in names.iter().enumerate() {
        let Some(slot) = SLOTS.get(pos) else { break };
        out.push(SpanStat {
            name,
            count: slot.count.load(Ordering::Relaxed),
            total_ns: slot.total_ns.load(Ordering::Relaxed),
            max_ns: slot.max_ns.load(Ordering::Relaxed),
        });
    }
    out
}

/// Zeroes every slot's statistics. Registered names are kept (ids
/// remain valid). Guards in flight may still record into the zeroed
/// slots; the profile is diagnostic, not transactional.
pub fn reset_profile() {
    for slot in &SLOTS {
        slot.count.store(0, Ordering::Relaxed);
        slot.total_ns.store(0, Ordering::Relaxed);
        slot.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Times the enclosing scope under `name` (a `&'static str`). Expands
/// to a guard binding, so assign it: `let _span = time_span!("wal.append");`.
/// The span id is resolved once per call site via a `OnceLock`. The
/// guard feeds the flat profile and, when this thread carries a live
/// request trace, a named child span of that trace.
#[macro_export]
macro_rules! time_span {
    ($name:expr) => {{
        static SPAN_ID: ::std::sync::OnceLock<$crate::SpanId> =
            ::std::sync::OnceLock::new();
        $crate::span_site(*SPAN_ID.get_or_init(|| $crate::register_span($name)), $name)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // SPANS_ENABLED is a process global; tests that toggle it hold this
    // lock so they cannot observe each other's state.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn register_is_idempotent() {
        let a = register_span("test.idempotent");
        let b = register_span("test.idempotent");
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = guard();
        let id = register_span("test.disabled");
        set_spans_enabled(false);
        drop(span(id));
        let stat = profile_snapshot()
            .into_iter()
            .find(|s| s.name == "test.disabled")
            .expect("registered span appears in snapshot");
        assert_eq!(stat.count, 0);
    }

    #[test]
    fn enabled_spans_accumulate_count_total_and_max() {
        let _g = guard();
        let id = register_span("test.enabled");
        set_spans_enabled(true);
        for _ in 0..3 {
            let guard = span(id);
            std::thread::sleep(std::time::Duration::from_millis(1));
            drop(guard);
        }
        set_spans_enabled(false);
        let stat = profile_snapshot()
            .into_iter()
            .find(|s| s.name == "test.enabled")
            .expect("span registered");
        assert!(stat.count >= 3);
        assert!(stat.total_ns > 0);
        assert!(stat.max_ns > 0);
        assert!(stat.max_ns <= stat.total_ns);
    }

    #[test]
    fn time_span_macro_times_a_scope() {
        let _g = guard();
        set_spans_enabled(true);
        {
            let _span = crate::time_span!("test.macro");
        }
        set_spans_enabled(false);
        let stat = profile_snapshot()
            .into_iter()
            .find(|s| s.name == "test.macro")
            .expect("macro registered the span");
        assert!(stat.count >= 1);
    }

    #[test]
    fn overflow_ids_are_inert() {
        drop(span(SpanId(OVERFLOW)));
    }

    #[test]
    fn span_site_records_into_a_live_trace_even_with_flat_profile_off() {
        let _g = guard();
        set_spans_enabled(false);
        let trace = crate::trace::begin_request(None, "test.trace.root");
        {
            let _span = crate::time_span!("test.trace.child");
        }
        let finished = trace.finish().expect("trace finishes");
        assert!(
            finished.spans.iter().any(|s| s.name == "test.trace.child"),
            "time_span! must feed the live trace"
        );
    }
}
