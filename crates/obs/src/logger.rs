//! Leveled, per-target structured logging with a runtime filter.
//!
//! Events carry a level, a target (`"serve"`, `"wal"`, `"mine"`,
//! `"recovery"`, …), a message, and optional key=value fields. They are
//! rendered to stderr as logfmt (default) or JSON lines, and optionally
//! captured into a bounded ring buffer for `GET /v1/debug/events`.
//!
//! ## Filtering
//!
//! The filter is a comma-separated spec, each clause either a bare
//! level (the default for unnamed targets) or `target=level`:
//!
//! ```text
//! CAR_LOG=warn                   # default: warnings and errors only
//! CAR_LOG=mine=debug,wal=info    # per-target overrides
//! CAR_LOG=off                    # nothing at all
//! ```
//!
//! Unknown clauses are ignored rather than fatal — a typo in an env var
//! must never take the daemon down.
//!
//! ## Hot-path cost
//!
//! [`log_enabled`] first compares the event's level against a global
//! maximum held in one `AtomicU8` (relaxed load). Only events that
//! could pass the filter take the short critical section that consults
//! per-target levels, so a disabled `debug!` in a mining kernel costs
//! one atomic load and no formatting.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, Once};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed and data or availability may be affected.
    Error = 1,
    /// Something surprising happened but the daemon carries on.
    Warn = 2,
    /// High-level lifecycle events (boot, recovery, shutdown).
    Info = 3,
    /// Per-request / per-unit detail.
    Debug = 4,
    /// Inner-loop detail; expensive, off except when chasing a bug.
    Trace = 5,
}

impl Level {
    /// The lowercase name used in filters and rendered events.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    #[cfg(test)]
    fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

/// `0` disables the target entirely; `1..=5` map to [`Level`].
fn parse_level(s: &str) -> Option<u8> {
    match s.trim() {
        "off" | "none" => Some(0),
        "error" => Some(Level::Error as u8),
        "warn" | "warning" => Some(Level::Warn as u8),
        "info" => Some(Level::Info as u8),
        "debug" => Some(Level::Debug as u8),
        "trace" => Some(Level::Trace as u8),
        _ => None,
    }
}

/// The default ceiling when `CAR_LOG` is unset: operational warnings
/// stay visible, everything chattier is off.
const DEFAULT_LEVEL: u8 = Level::Warn as u8;

struct Filter {
    default: u8,
    targets: Vec<(String, u8)>,
}

impl Filter {
    const fn unset() -> Filter {
        Filter { default: DEFAULT_LEVEL, targets: Vec::new() }
    }

    fn level_for(&self, target: &str) -> u8 {
        for (name, level) in &self.targets {
            if name == target {
                return *level;
            }
        }
        self.default
    }

    fn max_level(&self) -> u8 {
        let mut max = self.default;
        for (_, level) in &self.targets {
            max = max.max(*level);
        }
        max
    }
}

/// Global ceiling consulted before anything else; kept equal to the
/// filter's most verbose level so one relaxed load rejects events no
/// target could accept.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(DEFAULT_LEVEL);
static FILTER: Mutex<Filter> = Mutex::new(Filter::unset());
static JSON_FORMAT: AtomicBool = AtomicBool::new(false);
static INIT: Once = Once::new();

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Initializes the logger from the environment: `CAR_LOG` (filter
/// spec), `CAR_LOG_FORMAT=json|logfmt`, and `CAR_SPANS=1` (span
/// profiling). Idempotent — later calls are no-ops, so every entry
/// point (CLI, daemon, tests) may call it unconditionally.
pub fn init_from_env() {
    INIT.call_once(|| {
        if let Ok(spec) = std::env::var("CAR_LOG") {
            set_filter(&spec);
        }
        if let Ok(fmt) = std::env::var("CAR_LOG_FORMAT") {
            set_json_format(fmt.trim() == "json");
        }
        if let Ok(spans) = std::env::var("CAR_SPANS") {
            let v = spans.trim();
            crate::span::set_spans_enabled(v == "1" || v == "true" || v == "on");
        }
    });
}

/// Installs a filter spec (`"mine=debug,wal=info"`, `"debug"`,
/// `"off"`). Clauses that fail to parse are skipped; an empty spec
/// leaves the warn-by-default filter in place.
pub fn set_filter(spec: &str) {
    let mut filter = Filter::unset();
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        match clause.split_once('=') {
            Some((target, level)) => {
                if let Some(level) = parse_level(level) {
                    let target = target.trim().to_string();
                    filter.targets.retain(|(name, _)| *name != target);
                    filter.targets.push((target, level));
                }
            }
            None => {
                if let Some(level) = parse_level(clause) {
                    filter.default = level;
                }
            }
        }
    }
    let max = filter.max_level();
    *lock_recovering(&FILTER) = filter;
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Switches event rendering between logfmt (`false`, default) and JSON
/// lines (`true`).
pub fn set_json_format(json: bool) {
    JSON_FORMAT.store(json, Ordering::Relaxed);
}

/// Whether an event at `level` for `target` would be emitted. The fast
/// path is one relaxed atomic load.
pub fn log_enabled(target: &str, level: Level) -> bool {
    // audit:allow(a6-relaxed-control) reason="level filter is advisory by design: a stale ceiling drops or admits a handful of events around a set_max_level call, never corrupts state"
    let ceiling = MAX_LEVEL.load(Ordering::Relaxed);
    if (level as u8) > ceiling {
        return false;
    }
    (level as u8) <= lock_recovering(&FILTER).level_for(target)
}

// ---------------------------------------------------------------------
// Event capture ring
// ---------------------------------------------------------------------

/// Events retained for `GET /v1/debug/events`.
const RING_CAPACITY: usize = 256;

/// One captured log event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Microseconds since the Unix epoch at emission.
    pub ts_us: u64,
    /// Severity.
    pub level: Level,
    /// Target subsystem.
    pub target: String,
    /// The formatted message.
    pub message: String,
    /// Structured fields, in emission order.
    pub fields: Vec<(String, String)>,
}

static CAPTURE: AtomicBool = AtomicBool::new(false);
static RING: Mutex<VecDeque<EventRecord>> = Mutex::new(VecDeque::new());
#[cfg(test)]
static SILENCE_STDERR: AtomicBool = AtomicBool::new(false);

/// Turns ring-buffer capture on or off (the daemon turns it on at
/// boot). Disabling does not clear already-captured events.
pub fn set_capture(capture: bool) {
    CAPTURE.store(capture, Ordering::Relaxed);
}

/// The captured events, oldest first (at most the ring capacity).
pub fn recent_events() -> Vec<EventRecord> {
    lock_recovering(&RING).iter().cloned().collect()
}

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Appends `value` with logfmt quoting: bare when it is a simple
/// token, double-quoted with `\`-escapes otherwise.
fn push_logfmt_value(out: &mut String, value: &str) {
    let bare = !value.is_empty()
        && value
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | ':'));
    if bare {
        out.push_str(value);
        return;
    }
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` as a JSON string literal.
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats and writes one event. Callers go through the level macros,
/// which check [`log_enabled`] first — `emit` itself does not filter.
pub fn emit(
    target: &str,
    level: Level,
    fields: &[(&str, &dyn fmt::Display)],
    args: fmt::Arguments<'_>,
) {
    let ts_us = unix_micros();
    let message = args.to_string();
    let thread = std::thread::current();
    let thread_name = thread.name().unwrap_or("?").to_string();

    let mut line = String::with_capacity(96);
    // audit:allow(a6-relaxed-control) reason="format flag is set once at init; a racing reader at worst emits one line in the old format"
    if JSON_FORMAT.load(Ordering::Relaxed) {
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"level\":");
        push_json_string(&mut line, level.as_str());
        line.push_str(",\"target\":");
        push_json_string(&mut line, target);
        line.push_str(",\"thread\":");
        push_json_string(&mut line, &thread_name);
        line.push_str(",\"msg\":");
        push_json_string(&mut line, &message);
        for (key, value) in fields {
            line.push(',');
            push_json_string(&mut line, key);
            line.push(':');
            push_json_string(&mut line, &value.to_string());
        }
        line.push('}');
    } else {
        line.push_str("ts_us=");
        line.push_str(&ts_us.to_string());
        line.push_str(" level=");
        line.push_str(level.as_str());
        line.push_str(" target=");
        push_logfmt_value(&mut line, target);
        line.push_str(" thread=");
        push_logfmt_value(&mut line, &thread_name);
        line.push_str(" msg=");
        push_logfmt_value(&mut line, &message);
        for (key, value) in fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            push_logfmt_value(&mut line, &value.to_string());
        }
    }
    line.push('\n');

    // A full stderr (or a closed pipe) must not take the caller down;
    // the event is simply lost. Unit tests write straight to the real
    // stderr fd (libtest cannot capture it), so they may silence it.
    #[cfg(test)]
    let silenced = SILENCE_STDERR.load(Ordering::Relaxed);
    #[cfg(not(test))]
    let silenced = false;
    if !silenced {
        let stderr = std::io::stderr();
        let _ = stderr.lock().write_all(line.as_bytes());
    }

    // audit:allow(a6-relaxed-control) reason="capture toggle is test-harness plumbing; missing one event around the flip is acceptable and the ring buffer itself is lock-guarded"
    if CAPTURE.load(Ordering::Relaxed) {
        let record = EventRecord {
            ts_us,
            level,
            target: target.to_string(),
            message,
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        };
        let mut ring = lock_recovering(&RING);
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

/// The shared body of the level macros: filter check, then emission.
/// Fields come first (optional, in brackets), then the format string:
///
/// ```
/// car_obs::log_event!(car_obs::Level::Info, "wal", [seq = 7], "append ok");
/// car_obs::log_event!(car_obs::Level::Warn, "serve", "queue full");
/// ```
#[macro_export]
macro_rules! log_event {
    ($level:expr, $target:expr, [$($key:ident = $value:expr),* $(,)?], $($arg:tt)+) => {{
        let level = $level;
        let target = $target;
        if $crate::log_enabled(target, level) {
            $crate::logger::emit(
                target,
                level,
                &[$((stringify!($key), &$value as &dyn ::std::fmt::Display)),*],
                ::std::format_args!($($arg)+),
            );
        }
    }};
    ($level:expr, $target:expr, $($arg:tt)+) => {
        $crate::log_event!($level, $target, [], $($arg)+)
    };
}

/// Logs at [`Level::Error`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! error {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::Level::Error, $target, $($rest)+)
    };
}

/// Logs at [`Level::Warn`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::Level::Warn, $target, $($rest)+)
    };
}

/// Logs at [`Level::Info`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! info {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::Level::Info, $target, $($rest)+)
    };
}

/// Logs at [`Level::Debug`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::Level::Debug, $target, $($rest)+)
    };
}

/// Logs at [`Level::Trace`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! trace {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::Level::Trace, $target, $($rest)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The filter, ring, and format switches are process globals, so the
    // tests below run under one lock to avoid interleaving.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn reset() {
        set_filter("warn");
        set_json_format(false);
        set_capture(false);
        SILENCE_STDERR.store(true, Ordering::Relaxed);
        lock_recovering(&RING).clear();
    }

    #[test]
    fn default_filter_admits_warn_rejects_info() {
        let _g = guard();
        reset();
        assert!(log_enabled("serve", Level::Warn));
        assert!(log_enabled("serve", Level::Error));
        assert!(!log_enabled("serve", Level::Info));
        assert!(!log_enabled("mine", Level::Debug));
    }

    #[test]
    fn per_target_spec_overrides_default() {
        let _g = guard();
        reset();
        set_filter("mine=debug,wal=info");
        assert!(log_enabled("mine", Level::Debug));
        assert!(!log_enabled("mine", Level::Trace));
        assert!(log_enabled("wal", Level::Info));
        assert!(!log_enabled("wal", Level::Debug));
        // Unnamed targets keep the warn default.
        assert!(log_enabled("serve", Level::Warn));
        assert!(!log_enabled("serve", Level::Info));
        reset();
    }

    #[test]
    fn bare_level_sets_the_default_and_off_silences() {
        let _g = guard();
        reset();
        set_filter("debug");
        assert!(log_enabled("anything", Level::Debug));
        set_filter("off");
        assert!(!log_enabled("anything", Level::Error));
        set_filter("serve=off,error");
        assert!(!log_enabled("serve", Level::Error));
        assert!(log_enabled("other", Level::Error));
        reset();
    }

    #[test]
    fn malformed_clauses_are_ignored() {
        let _g = guard();
        reset();
        set_filter("bogus-level,mine=nope,,wal=info");
        assert!(log_enabled("wal", Level::Info));
        assert!(log_enabled("mine", Level::Warn)); // fell back to default
        reset();
    }

    #[test]
    fn ring_captures_with_fields_and_is_bounded() {
        let _g = guard();
        reset();
        set_filter("trace");
        set_capture(true);
        for i in 0..(RING_CAPACITY + 10) {
            crate::info!("test", [seq = i], "event number {i}");
        }
        let events = recent_events();
        assert_eq!(events.len(), RING_CAPACITY);
        let last = events.last().expect("ring is non-empty");
        assert_eq!(last.target, "test");
        assert_eq!(last.level, Level::Info);
        assert_eq!(last.message, format!("event number {}", RING_CAPACITY + 9));
        assert_eq!(
            last.fields,
            vec![("seq".to_string(), (RING_CAPACITY + 9).to_string())]
        );
        assert!(last.ts_us > 0);
        reset();
    }

    #[test]
    fn disabled_events_are_not_captured() {
        let _g = guard();
        reset();
        set_capture(true);
        crate::debug!("test", "should be filtered out");
        assert!(recent_events().is_empty());
        reset();
    }

    #[test]
    fn logfmt_quoting() {
        let mut out = String::new();
        push_logfmt_value(&mut out, "simple-token_1.0");
        assert_eq!(out, "simple-token_1.0");
        let mut out = String::new();
        push_logfmt_value(&mut out, "two words \"quoted\"");
        assert_eq!(out, "\"two words \\\"quoted\\\"\"");
        let mut out = String::new();
        push_logfmt_value(&mut out, "");
        assert_eq!(out, "\"\"");
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn level_parsing_round_trips() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace]
        {
            assert_eq!(parse_level(level.as_str()), Some(level as u8));
            assert_eq!(Level::from_u8(level as u8), Some(level));
        }
        assert_eq!(parse_level("off"), Some(0));
        assert_eq!(parse_level("garbage"), None);
        assert_eq!(Level::from_u8(0), None);
    }
}
