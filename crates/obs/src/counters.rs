//! Process-global, monotonic mining counters.
//!
//! The mining kernels already keep exact per-run statistics in
//! `MiningStats`; these globals exist so long-lived processes (the
//! daemon, a CLI run with `--stats`) can expose cumulative totals
//! without holding every run's stats. Kernels accumulate locally as
//! before and flush once per run via [`MiningCounters::record_run`] —
//! the hot loops never touch these atomics.
//!
//! The three INTERLEAVED optimization counters mirror the ICDE'98
//! techniques by name: *cycle pruning* (candidates discarded because
//! they inherit no cycles), *cycle skipping* (unit support counts
//! avoided), and *cycle elimination* (candidate cycles killed early by
//! below-threshold counts). Under SEQUENTIAL all three stay zero —
//! that algorithm does the full work and detects cycles a posteriori —
//! which is exactly the paper's comparison, now visible in `/metrics`.
//!
//! All updates use relaxed ordering: each counter is an independent
//! statistic, nothing synchronizes *through* them, and a scrape that is
//! a few events stale is fine (see DESIGN.md §9).

use std::sync::atomic::{AtomicU64, Ordering};

/// The global mining counters; use the [`MINE`] static.
pub struct MiningCounters {
    runs: AtomicU64,
    candidates_generated: AtomicU64,
    candidates_pruned: AtomicU64,
    unit_counts_skipped: AtomicU64,
    cycles_eliminated: AtomicU64,
    support_computations: AtomicU64,
    detect_eliminations: AtomicU64,
    online_holds: AtomicU64,
    online_eliminations: AtomicU64,
}

/// Process-wide totals across every mining run since start.
pub static MINE: MiningCounters = MiningCounters {
    runs: AtomicU64::new(0),
    candidates_generated: AtomicU64::new(0),
    candidates_pruned: AtomicU64::new(0),
    unit_counts_skipped: AtomicU64::new(0),
    cycles_eliminated: AtomicU64::new(0),
    support_computations: AtomicU64::new(0),
    detect_eliminations: AtomicU64::new(0),
    online_holds: AtomicU64::new(0),
    online_eliminations: AtomicU64::new(0),
};

impl MiningCounters {
    /// Folds one finished run's totals into the globals. Called once
    /// per `mine_interleaved` / `mine_sequential` invocation, after the
    /// run completes.
    pub fn record_run(
        &self,
        candidates_generated: u64,
        candidates_pruned: u64,
        unit_counts_skipped: u64,
        cycles_eliminated: u64,
        support_computations: u64,
    ) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.candidates_generated.fetch_add(candidates_generated, Ordering::Relaxed);
        self.candidates_pruned.fetch_add(candidates_pruned, Ordering::Relaxed);
        self.unit_counts_skipped.fetch_add(unit_counts_skipped, Ordering::Relaxed);
        self.cycles_eliminated.fetch_add(cycles_eliminated, Ordering::Relaxed);
        self.support_computations.fetch_add(support_computations, Ordering::Relaxed);
    }

    /// Counts candidate cycles discarded inside `detect_cycles` — the
    /// a-posteriori detector shared by SEQUENTIAL and the window
    /// miner's query path. Kept separate from the INTERLEAVED
    /// `cycles_eliminated` optimization counter so the latter stays
    /// zero under SEQUENTIAL.
    pub fn add_detect_eliminations(&self, n: u64) {
        self.detect_eliminations.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `(rule, unit)` hold entries folded into online cycle
    /// state by the sliding-window miner at push time — the work the
    /// query fast path amortises away.
    pub fn add_online_holds(&self, n: u64) {
        self.online_holds.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts candidate cycle classes found dead while assembling a
    /// rule view from online state (hold count behind the class
    /// total). The online path never eliminates eagerly — absent rules
    /// are not visited at push time — so this is observed at view
    /// assembly, once per window epoch.
    pub fn add_online_eliminations(&self, n: u64) {
        self.online_eliminations.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter (relaxed loads; fields may
    /// be mutually inconsistent by a few in-flight events).
    pub fn snapshot(&self) -> MiningCounterSnapshot {
        MiningCounterSnapshot {
            runs: self.runs.load(Ordering::Relaxed),
            candidates_generated: self.candidates_generated.load(Ordering::Relaxed),
            candidates_pruned: self.candidates_pruned.load(Ordering::Relaxed),
            unit_counts_skipped: self.unit_counts_skipped.load(Ordering::Relaxed),
            cycles_eliminated: self.cycles_eliminated.load(Ordering::Relaxed),
            support_computations: self.support_computations.load(Ordering::Relaxed),
            detect_eliminations: self.detect_eliminations.load(Ordering::Relaxed),
            online_holds: self.online_holds.load(Ordering::Relaxed),
            online_eliminations: self.online_eliminations.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`MiningCounters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MiningCounterSnapshot {
    /// Completed mining runs.
    pub runs: u64,
    /// Candidate itemsets generated across all runs and time units.
    pub candidates_generated: u64,
    /// Candidates discarded by cycle pruning before counting.
    pub candidates_pruned: u64,
    /// Per-unit support counts avoided by cycle skipping.
    pub unit_counts_skipped: u64,
    /// Candidate cycles killed by interleaved cycle elimination.
    pub cycles_eliminated: u64,
    /// Itemset-per-unit support computations actually performed.
    pub support_computations: u64,
    /// Cycles discarded by the a-posteriori detector (`detect_cycles`).
    pub detect_eliminations: u64,
    /// `(rule, unit)` hold entries folded into online cycle state.
    pub online_holds: u64,
    /// Candidate cycle classes observed dead at online view assembly.
    pub online_eliminations: u64,
}

impl MiningCounterSnapshot {
    /// Per-field difference `self - earlier`, saturating at zero so a
    /// stale `earlier` cannot produce wrap-around garbage.
    pub fn delta_since(&self, earlier: &MiningCounterSnapshot) -> MiningCounterSnapshot {
        MiningCounterSnapshot {
            runs: self.runs.saturating_sub(earlier.runs),
            candidates_generated: self
                .candidates_generated
                .saturating_sub(earlier.candidates_generated),
            candidates_pruned: self
                .candidates_pruned
                .saturating_sub(earlier.candidates_pruned),
            unit_counts_skipped: self
                .unit_counts_skipped
                .saturating_sub(earlier.unit_counts_skipped),
            cycles_eliminated: self
                .cycles_eliminated
                .saturating_sub(earlier.cycles_eliminated),
            support_computations: self
                .support_computations
                .saturating_sub(earlier.support_computations),
            detect_eliminations: self
                .detect_eliminations
                .saturating_sub(earlier.detect_eliminations),
            online_holds: self.online_holds.saturating_sub(earlier.online_holds),
            online_eliminations: self
                .online_eliminations
                .saturating_sub(earlier.online_eliminations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_run_accumulates_into_globals() {
        let before = MINE.snapshot();
        MINE.record_run(100, 40, 2000, 7, 60);
        MINE.add_detect_eliminations(3);
        MINE.add_online_holds(11);
        MINE.add_online_eliminations(5);
        let after = MINE.snapshot();
        let delta = after.delta_since(&before);
        assert!(delta.runs >= 1);
        assert!(delta.candidates_generated >= 100);
        assert!(delta.candidates_pruned >= 40);
        assert!(delta.unit_counts_skipped >= 2000);
        assert!(delta.cycles_eliminated >= 7);
        assert!(delta.support_computations >= 60);
        assert!(delta.detect_eliminations >= 3);
        assert!(delta.online_holds >= 11);
        assert!(delta.online_eliminations >= 5);
    }

    #[test]
    fn delta_saturates_instead_of_wrapping() {
        let small = MiningCounterSnapshot::default();
        let big = MiningCounterSnapshot { runs: 5, ..MiningCounterSnapshot::default() };
        assert_eq!(small.delta_since(&big).runs, 0);
    }
}
