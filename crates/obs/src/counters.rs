//! Process-global, monotonic mining counters.
//!
//! The mining kernels already keep exact per-run statistics in
//! `MiningStats`; these globals exist so long-lived processes (the
//! daemon, a CLI run with `--stats`) can expose cumulative totals
//! without holding every run's stats. Kernels accumulate locally as
//! before and flush once per run via [`MiningCounters::record_run`] —
//! the hot loops never touch these atomics.
//!
//! The three INTERLEAVED optimization counters mirror the ICDE'98
//! techniques by name: *cycle pruning* (candidates discarded because
//! they inherit no cycles), *cycle skipping* (unit support counts
//! avoided), and *cycle elimination* (candidate cycles killed early by
//! below-threshold counts). Under SEQUENTIAL all three stay zero —
//! that algorithm does the full work and detects cycles a posteriori —
//! which is exactly the paper's comparison, now visible in `/metrics`.
//!
//! All updates use relaxed ordering: each counter is an independent
//! statistic, nothing synchronizes *through* them, and a scrape that is
//! a few events stale is fine (see DESIGN.md §9).

use std::sync::atomic::{AtomicU64, Ordering};

/// The global mining counters; use the [`MINE`] static.
pub struct MiningCounters {
    runs: AtomicU64,
    candidates_generated: AtomicU64,
    candidates_pruned: AtomicU64,
    unit_counts_skipped: AtomicU64,
    cycles_eliminated: AtomicU64,
    support_computations: AtomicU64,
    bitmap_builds: AtomicU64,
    detect_eliminations: AtomicU64,
    online_holds: AtomicU64,
    online_eliminations: AtomicU64,
}

/// Process-wide totals across every mining run since start.
pub static MINE: MiningCounters = MiningCounters {
    runs: AtomicU64::new(0),
    candidates_generated: AtomicU64::new(0),
    candidates_pruned: AtomicU64::new(0),
    unit_counts_skipped: AtomicU64::new(0),
    cycles_eliminated: AtomicU64::new(0),
    support_computations: AtomicU64::new(0),
    bitmap_builds: AtomicU64::new(0),
    detect_eliminations: AtomicU64::new(0),
    online_holds: AtomicU64::new(0),
    online_eliminations: AtomicU64::new(0),
};

impl MiningCounters {
    /// Folds one finished run's totals into the globals. Called once
    /// per `mine_interleaved` / `mine_sequential` invocation, after the
    /// run completes.
    pub fn record_run(
        &self,
        candidates_generated: u64,
        candidates_pruned: u64,
        unit_counts_skipped: u64,
        cycles_eliminated: u64,
        support_computations: u64,
    ) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.candidates_generated.fetch_add(candidates_generated, Ordering::Relaxed);
        self.candidates_pruned.fetch_add(candidates_pruned, Ordering::Relaxed);
        self.unit_counts_skipped.fetch_add(unit_counts_skipped, Ordering::Relaxed);
        self.cycles_eliminated.fetch_add(cycles_eliminated, Ordering::Relaxed);
        self.support_computations.fetch_add(support_computations, Ordering::Relaxed);
    }

    /// Counts vertical tid-bitmap constructions — one per counting
    /// batch the `Vertical` engine actually built bitmaps for.
    /// Incremented at build time (one atomic add per batch, never per
    /// item), so "a skipped unit builds zero bitmaps" is directly
    /// observable: under INTERLEAVED cycle skipping, skipped unit scans
    /// never reach the kernel and this counter does not move.
    pub fn add_bitmap_builds(&self, n: u64) {
        self.bitmap_builds.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts candidate cycles discarded inside `detect_cycles` — the
    /// a-posteriori detector shared by SEQUENTIAL and the window
    /// miner's query path. Kept separate from the INTERLEAVED
    /// `cycles_eliminated` optimization counter so the latter stays
    /// zero under SEQUENTIAL.
    pub fn add_detect_eliminations(&self, n: u64) {
        self.detect_eliminations.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `(rule, unit)` hold entries folded into online cycle
    /// state by the sliding-window miner at push time — the work the
    /// query fast path amortises away.
    pub fn add_online_holds(&self, n: u64) {
        self.online_holds.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts candidate cycle classes found dead while assembling a
    /// rule view from online state (hold count behind the class
    /// total). The online path never eliminates eagerly — absent rules
    /// are not visited at push time — so this is observed at view
    /// assembly, once per window epoch.
    pub fn add_online_eliminations(&self, n: u64) {
        self.online_eliminations.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter (relaxed loads; fields may
    /// be mutually inconsistent by a few in-flight events).
    pub fn snapshot(&self) -> MiningCounterSnapshot {
        MiningCounterSnapshot {
            runs: self.runs.load(Ordering::Relaxed),
            candidates_generated: self.candidates_generated.load(Ordering::Relaxed),
            candidates_pruned: self.candidates_pruned.load(Ordering::Relaxed),
            unit_counts_skipped: self.unit_counts_skipped.load(Ordering::Relaxed),
            cycles_eliminated: self.cycles_eliminated.load(Ordering::Relaxed),
            support_computations: self.support_computations.load(Ordering::Relaxed),
            bitmap_builds: self.bitmap_builds.load(Ordering::Relaxed),
            detect_eliminations: self.detect_eliminations.load(Ordering::Relaxed),
            online_holds: self.online_holds.load(Ordering::Relaxed),
            online_eliminations: self.online_eliminations.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`MiningCounters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MiningCounterSnapshot {
    /// Completed mining runs.
    pub runs: u64,
    /// Candidate itemsets generated across all runs and time units.
    pub candidates_generated: u64,
    /// Candidates discarded by cycle pruning before counting.
    pub candidates_pruned: u64,
    /// Per-unit support counts avoided by cycle skipping.
    pub unit_counts_skipped: u64,
    /// Candidate cycles killed by interleaved cycle elimination.
    pub cycles_eliminated: u64,
    /// Itemset-per-unit support computations actually performed.
    pub support_computations: u64,
    /// Vertical tid-bitmap batch constructions performed.
    pub bitmap_builds: u64,
    /// Cycles discarded by the a-posteriori detector (`detect_cycles`).
    pub detect_eliminations: u64,
    /// `(rule, unit)` hold entries folded into online cycle state.
    pub online_holds: u64,
    /// Candidate cycle classes observed dead at online view assembly.
    pub online_eliminations: u64,
}

impl MiningCounterSnapshot {
    /// Per-field difference `self - earlier`, saturating at zero so a
    /// stale `earlier` cannot produce wrap-around garbage.
    pub fn delta_since(&self, earlier: &MiningCounterSnapshot) -> MiningCounterSnapshot {
        MiningCounterSnapshot {
            runs: self.runs.saturating_sub(earlier.runs),
            candidates_generated: self
                .candidates_generated
                .saturating_sub(earlier.candidates_generated),
            candidates_pruned: self
                .candidates_pruned
                .saturating_sub(earlier.candidates_pruned),
            unit_counts_skipped: self
                .unit_counts_skipped
                .saturating_sub(earlier.unit_counts_skipped),
            cycles_eliminated: self
                .cycles_eliminated
                .saturating_sub(earlier.cycles_eliminated),
            support_computations: self
                .support_computations
                .saturating_sub(earlier.support_computations),
            bitmap_builds: self.bitmap_builds.saturating_sub(earlier.bitmap_builds),
            detect_eliminations: self
                .detect_eliminations
                .saturating_sub(earlier.detect_eliminations),
            online_holds: self.online_holds.saturating_sub(earlier.online_holds),
            online_eliminations: self
                .online_eliminations
                .saturating_sub(earlier.online_eliminations),
        }
    }
}

/// Process-global counters for the shard router; use the [`SHARD`]
/// static. A standalone daemon never touches these — they exist so the
/// `car shard` router can expose its fan-out, degradation, and catch-up
/// activity through `/metrics` with the same relaxed-atomic discipline
/// as the mining counters.
pub struct ShardCounters {
    fanout_legs: AtomicU64,
    fanout_failures: AtomicU64,
    down_transitions: AtomicU64,
    readmissions: AtomicU64,
    catchup_units: AtomicU64,
    units_routed: AtomicU64,
    partial_responses: AtomicU64,
    deadline_exceeded: AtomicU64,
}

/// Process-wide shard-router totals since start.
pub static SHARD: ShardCounters = ShardCounters {
    fanout_legs: AtomicU64::new(0),
    fanout_failures: AtomicU64::new(0),
    down_transitions: AtomicU64::new(0),
    readmissions: AtomicU64::new(0),
    catchup_units: AtomicU64::new(0),
    units_routed: AtomicU64::new(0),
    partial_responses: AtomicU64::new(0),
    deadline_exceeded: AtomicU64::new(0),
};

impl ShardCounters {
    /// Counts one per-shard leg of a query fan-out.
    pub fn add_fanout_legs(&self, n: u64) {
        self.fanout_legs.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a fan-out leg that failed (transport error, timeout, or an
    /// unusable response).
    pub fn add_fanout_failures(&self, n: u64) {
        self.fanout_failures.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a worker transitioning from live to down.
    pub fn add_down_transition(&self) {
        self.down_transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a worker re-admitted after passing a health check (and any
    /// required catch-up replay).
    pub fn add_readmission(&self) {
        self.readmissions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts units replayed to a returning worker from the catch-up
    /// buffer.
    pub fn add_catchup_units(&self, n: u64) {
        self.catchup_units.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts units the router has routed (split and forwarded).
    pub fn add_units_routed(&self, n: u64) {
        self.units_routed.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts merged rule responses served with `partial=true`.
    pub fn add_partial_response(&self) {
        self.partial_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts fan-out legs abandoned (or answered 504) because the
    /// request's deadline budget ran out.
    pub fn add_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter (relaxed loads).
    pub fn snapshot(&self) -> ShardCounterSnapshot {
        ShardCounterSnapshot {
            fanout_legs: self.fanout_legs.load(Ordering::Relaxed),
            fanout_failures: self.fanout_failures.load(Ordering::Relaxed),
            down_transitions: self.down_transitions.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            catchup_units: self.catchup_units.load(Ordering::Relaxed),
            units_routed: self.units_routed.load(Ordering::Relaxed),
            partial_responses: self.partial_responses.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`ShardCounters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounterSnapshot {
    /// Query fan-out legs issued to live workers.
    pub fanout_legs: u64,
    /// Fan-out legs that failed.
    pub fanout_failures: u64,
    /// Live-to-down worker transitions.
    pub down_transitions: u64,
    /// Workers re-admitted after recovery.
    pub readmissions: u64,
    /// Units replayed from the catch-up buffer.
    pub catchup_units: u64,
    /// Units routed (split and forwarded) by the router.
    pub units_routed: u64,
    /// Merged responses served with `partial=true`.
    pub partial_responses: u64,
    /// Fan-out legs lost to an exhausted deadline budget.
    pub deadline_exceeded: u64,
}

/// Process-global resilience counters for the serving tier; use the
/// [`RESILIENCE`] static. These count the overload-protection and
/// deadline events a chaos run must be able to observe from `/metrics`:
/// admission-gate sheds, slow-loris header timeouts, and requests
/// answered `504 deadline_exceeded`.
pub struct ResilienceCounters {
    shed: AtomicU64,
    header_timeouts: AtomicU64,
    deadline_exceeded: AtomicU64,
}

/// Process-wide serving-tier resilience totals since start.
pub static RESILIENCE: ResilienceCounters = ResilienceCounters {
    shed: AtomicU64::new(0),
    header_timeouts: AtomicU64::new(0),
    deadline_exceeded: AtomicU64::new(0),
};

impl ResilienceCounters {
    /// Counts a connection shed at the admission gate (`503 overloaded`).
    pub fn add_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request whose header section did not complete within
    /// the header-read deadline (slow-loris defense).
    pub fn add_header_timeout(&self) {
        self.header_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request answered `504 deadline_exceeded` because its
    /// propagated deadline expired server-side.
    pub fn add_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter (relaxed loads).
    pub fn snapshot(&self) -> ResilienceCounterSnapshot {
        ResilienceCounterSnapshot {
            shed: self.shed.load(Ordering::Relaxed),
            header_timeouts: self.header_timeouts.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`ResilienceCounters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceCounterSnapshot {
    /// Connections shed at the admission gate.
    pub shed: u64,
    /// Requests cut off by the header-read deadline.
    pub header_timeouts: u64,
    /// Requests answered `504 deadline_exceeded`.
    pub deadline_exceeded: u64,
}

/// Process-global tracing counters; use the [`TRACE`] static. These
/// count tail-sampling outcomes at whichever process assembles traces
/// (the router, or a standalone daemon tracing its own requests), so
/// `/metrics` can expose `car_trace_retained_total{reason=...}`.
pub struct TraceCounters {
    retained_error: AtomicU64,
    retained_slow: AtomicU64,
    retained_sampled: AtomicU64,
    discarded: AtomicU64,
}

/// Process-wide trace-retention totals since start.
pub static TRACE: TraceCounters = TraceCounters {
    retained_error: AtomicU64::new(0),
    retained_slow: AtomicU64::new(0),
    retained_sampled: AtomicU64::new(0),
    discarded: AtomicU64::new(0),
};

impl TraceCounters {
    /// Counts a trace retained because the request errored, tripped a
    /// breaker, or was deadline-aborted.
    pub fn add_retained_error(&self) {
        self.retained_error.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a trace retained for exceeding the latency threshold.
    pub fn add_retained_slow(&self) {
        self.retained_slow.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a healthy trace kept by the deterministic 1-in-N sample.
    pub fn add_retained_sampled(&self) {
        self.retained_sampled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a healthy trace the sampler let go.
    pub fn add_discarded(&self) {
        self.discarded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter (relaxed loads).
    pub fn snapshot(&self) -> TraceCounterSnapshot {
        TraceCounterSnapshot {
            retained_error: self.retained_error.load(Ordering::Relaxed),
            retained_slow: self.retained_slow.load(Ordering::Relaxed),
            retained_sampled: self.retained_sampled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`TraceCounters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounterSnapshot {
    /// Traces retained with `reason="error"`.
    pub retained_error: u64,
    /// Traces retained with `reason="slow"`.
    pub retained_slow: u64,
    /// Traces retained with `reason="sampled"`.
    pub retained_sampled: u64,
    /// Healthy traces the sampler discarded.
    pub discarded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_run_accumulates_into_globals() {
        let before = MINE.snapshot();
        MINE.record_run(100, 40, 2000, 7, 60);
        MINE.add_bitmap_builds(9);
        MINE.add_detect_eliminations(3);
        MINE.add_online_holds(11);
        MINE.add_online_eliminations(5);
        let after = MINE.snapshot();
        let delta = after.delta_since(&before);
        assert!(delta.runs >= 1);
        assert!(delta.candidates_generated >= 100);
        assert!(delta.candidates_pruned >= 40);
        assert!(delta.unit_counts_skipped >= 2000);
        assert!(delta.cycles_eliminated >= 7);
        assert!(delta.support_computations >= 60);
        assert!(delta.bitmap_builds >= 9);
        assert!(delta.detect_eliminations >= 3);
        assert!(delta.online_holds >= 11);
        assert!(delta.online_eliminations >= 5);
    }

    #[test]
    fn shard_counters_accumulate_into_globals() {
        let before = SHARD.snapshot();
        SHARD.add_fanout_legs(3);
        SHARD.add_fanout_failures(1);
        SHARD.add_down_transition();
        SHARD.add_readmission();
        SHARD.add_catchup_units(7);
        SHARD.add_units_routed(2);
        SHARD.add_partial_response();
        let after = SHARD.snapshot();
        assert!(after.fanout_legs >= before.fanout_legs + 3);
        assert!(after.fanout_failures >= before.fanout_failures + 1);
        assert!(after.down_transitions >= before.down_transitions + 1);
        assert!(after.readmissions >= before.readmissions + 1);
        assert!(after.catchup_units >= before.catchup_units + 7);
        assert!(after.units_routed >= before.units_routed + 2);
        assert!(after.partial_responses >= before.partial_responses + 1);
    }

    #[test]
    fn resilience_counters_accumulate_into_globals() {
        let before = RESILIENCE.snapshot();
        RESILIENCE.add_shed();
        RESILIENCE.add_header_timeout();
        RESILIENCE.add_deadline_exceeded();
        let after = RESILIENCE.snapshot();
        assert!(after.shed >= before.shed + 1);
        assert!(after.header_timeouts >= before.header_timeouts + 1);
        assert!(after.deadline_exceeded >= before.deadline_exceeded + 1);
    }

    #[test]
    fn trace_counters_accumulate_into_globals() {
        let before = TRACE.snapshot();
        TRACE.add_retained_error();
        TRACE.add_retained_slow();
        TRACE.add_retained_sampled();
        TRACE.add_discarded();
        let after = TRACE.snapshot();
        assert!(after.retained_error >= before.retained_error + 1);
        assert!(after.retained_slow >= before.retained_slow + 1);
        assert!(after.retained_sampled >= before.retained_sampled + 1);
        assert!(after.discarded >= before.discarded + 1);
    }

    #[test]
    fn delta_saturates_instead_of_wrapping() {
        let small = MiningCounterSnapshot::default();
        let big = MiningCounterSnapshot { runs: 5, ..MiningCounterSnapshot::default() };
        assert_eq!(small.delta_since(&big).runs, 0);
    }
}
