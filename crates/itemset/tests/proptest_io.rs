//! Property-based round-trip tests for the file formats and calendar
//! segmentation.

use car_itemset::calendar::{CivilDate, Granularity};
use car_itemset::io::{read_fimi, read_timed, segment_evenly, write_fimi, write_timed};
use car_itemset::{ItemSet, SegmentedDb};
use proptest::prelude::*;

fn arb_itemset() -> impl Strategy<Value = ItemSet> {
    proptest::collection::vec(0u32..1000, 0..10).prop_map(ItemSet::from_ids)
}

fn arb_db() -> impl Strategy<Value = SegmentedDb> {
    proptest::collection::vec(proptest::collection::vec(arb_itemset(), 0..6), 1..8)
        .prop_map(SegmentedDb::from_unit_itemsets)
}

proptest! {
    #[test]
    fn fimi_roundtrip(transactions in proptest::collection::vec(arb_itemset(), 0..30)) {
        let mut buf = Vec::new();
        write_fimi(&mut buf, &transactions).unwrap();
        let back = read_fimi(&buf[..]).unwrap();
        // The FIMI format cannot represent empty transactions; they are
        // dropped on write (documented behaviour).
        let expected: Vec<ItemSet> =
            transactions.into_iter().filter(|t| !t.is_empty()).collect();
        prop_assert_eq!(back, expected);
    }

    #[test]
    fn timed_roundtrip_preserves_transactions(db in arb_db()) {
        let mut buf = Vec::new();
        write_timed(&mut buf, &db).unwrap();
        let back = read_timed(&buf[..]).unwrap();
        // Trailing empty units are not represented in the format; every
        // written unit must match.
        prop_assert!(back.num_units() <= db.num_units());
        for u in 0..back.num_units() {
            prop_assert_eq!(back.unit(u), db.unit(u), "unit {}", u);
        }
        for u in back.num_units()..db.num_units() {
            prop_assert!(db.unit(u).is_empty(), "lost transactions in unit {}", u);
        }
    }

    #[test]
    fn segment_evenly_preserves_order_and_count(
        transactions in proptest::collection::vec(arb_itemset(), 0..40),
        units in 1usize..10,
    ) {
        let db = segment_evenly(transactions.clone(), units);
        prop_assert_eq!(db.num_units(), units);
        prop_assert_eq!(db.num_transactions(), transactions.len());
        let flattened: Vec<ItemSet> =
            db.iter_all().map(|(_, t)| t.clone()).collect();
        prop_assert_eq!(flattened, transactions);
        // Sizes differ by at most one, monotonically non-increasing.
        let sizes: Vec<usize> = db.iter_units().map(|(_, u)| u.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn civil_date_roundtrips(day in -200_000i64..200_000) {
        let civil = CivilDate::from_days(day);
        prop_assert_eq!(civil.to_days(), day);
        prop_assert!((1..=12u8).contains(&civil.month));
        prop_assert!((1..=civil.days_in_month()).contains(&civil.day));
        // Consecutive days differ by exactly one calendar step.
        let next = CivilDate::from_days(day + 1);
        prop_assert!(next > civil);
        prop_assert_eq!(next.weekday(), (civil.weekday() + 1) % 7);
    }

    #[test]
    fn calendar_segmentation_is_complete_and_ordered(
        times in proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 1..30),
    ) {
        for granularity in [Granularity::Hour, Granularity::Day, Granularity::Week, Granularity::Month] {
            let rows: Vec<(i64, ItemSet)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, ItemSet::from_ids([i as u32])))
                .collect();
            let db = granularity.segment(rows);
            prop_assert_eq!(db.num_transactions(), times.len());
            // Each transaction sits in the unit its timestamp maps to.
            let first = times.iter().map(|&t| granularity.unit_index(t)).min().unwrap();
            for (i, &t) in times.iter().enumerate() {
                let expect = (granularity.unit_index(t) - first) as usize;
                prop_assert!(
                    db.unit(expect).iter().any(|x| x.contains(car_itemset::Item::new(i as u32))),
                    "{granularity:?}: transaction {i} missing from unit {expect}"
                );
            }
        }
    }
}
