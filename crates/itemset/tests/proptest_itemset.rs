//! Property-based tests for the itemset algebra.

use std::collections::BTreeSet;

use car_itemset::{Item, ItemSet};
use proptest::prelude::*;

fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..50, 0..12)
}

fn model(ids: &[u32]) -> BTreeSet<u32> {
    ids.iter().copied().collect()
}

fn from_model(m: &BTreeSet<u32>) -> ItemSet {
    ItemSet::from_ids(m.iter().copied())
}

proptest! {
    #[test]
    fn construction_matches_btreeset(ids in arb_ids()) {
        let s = ItemSet::from_ids(ids.iter().copied());
        let m = model(&ids);
        prop_assert_eq!(s.len(), m.len());
        prop_assert_eq!(
            s.iter().map(Item::id).collect::<Vec<_>>(),
            m.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn union_matches_model(a in arb_ids(), b in arb_ids()) {
        let (sa, sb) = (ItemSet::from_ids(a.iter().copied()), ItemSet::from_ids(b.iter().copied()));
        let expected: BTreeSet<u32> = model(&a).union(&model(&b)).copied().collect();
        prop_assert_eq!(sa.union(&sb), from_model(&expected));
    }

    #[test]
    fn intersection_matches_model(a in arb_ids(), b in arb_ids()) {
        let (sa, sb) = (ItemSet::from_ids(a.iter().copied()), ItemSet::from_ids(b.iter().copied()));
        let expected: BTreeSet<u32> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(sa.intersection(&sb), from_model(&expected));
    }

    #[test]
    fn difference_matches_model(a in arb_ids(), b in arb_ids()) {
        let (sa, sb) = (ItemSet::from_ids(a.iter().copied()), ItemSet::from_ids(b.iter().copied()));
        let expected: BTreeSet<u32> = model(&a).difference(&model(&b)).copied().collect();
        prop_assert_eq!(sa.difference(&sb), from_model(&expected));
    }

    #[test]
    fn subset_matches_model(a in arb_ids(), b in arb_ids()) {
        let (sa, sb) = (ItemSet::from_ids(a.iter().copied()), ItemSet::from_ids(b.iter().copied()));
        prop_assert_eq!(sa.is_subset_of(&sb), model(&a).is_subset(&model(&b)));
        prop_assert_eq!(sa.is_disjoint(&sb), model(&a).is_disjoint(&model(&b)));
    }

    #[test]
    fn contains_matches_model(a in arb_ids(), probe in 0u32..60) {
        let sa = ItemSet::from_ids(a.iter().copied());
        prop_assert_eq!(sa.contains(Item::new(probe)), model(&a).contains(&probe));
    }

    #[test]
    fn k_subsets_count_is_binomial(a in arb_ids(), k in 0usize..5) {
        let sa = ItemSet::from_ids(a.iter().copied());
        let n = sa.len();
        let count = sa.k_subsets(k).count();
        let binom = |n: usize, k: usize| -> usize {
            if k > n { return 0; }
            let mut r: usize = 1;
            for i in 0..k { r = r * (n - i) / (i + 1); }
            r
        };
        prop_assert_eq!(count, binom(n, k));
        // Every produced subset has size k and is a subset of the source.
        for sub in sa.k_subsets(k) {
            prop_assert_eq!(sub.len(), k);
            prop_assert!(sub.is_subset_of(&sa));
        }
    }

    #[test]
    fn k_subsets_are_distinct_and_sorted(a in arb_ids()) {
        let sa = ItemSet::from_ids(a.iter().copied());
        let k = sa.len().min(3);
        let subs: Vec<ItemSet> = sa.k_subsets(k).collect();
        for w in subs.windows(2) {
            prop_assert!(w[0] < w[1], "k-subsets must be strictly increasing");
        }
    }

    #[test]
    fn join_produces_valid_supersets(a in arb_ids(), b in arb_ids()) {
        let (sa, sb) = (ItemSet::from_ids(a.iter().copied()), ItemSet::from_ids(b.iter().copied()));
        if let Some(joined) = sa.apriori_join(&sb) {
            prop_assert_eq!(joined.len(), sa.len() + 1);
            prop_assert!(sa.is_subset_of(&joined));
            prop_assert!(sb.is_subset_of(&joined));
        }
    }

    #[test]
    fn immediate_subsets_have_size_k_minus_1(a in arb_ids()) {
        let sa = ItemSet::from_ids(a.iter().copied());
        if sa.is_empty() { return Ok(()); }
        let subs: Vec<ItemSet> = sa.immediate_subsets().collect();
        prop_assert_eq!(subs.len(), sa.len());
        for s in &subs {
            prop_assert_eq!(s.len(), sa.len() - 1);
            prop_assert!(s.is_subset_of(&sa));
        }
    }
}
