use std::collections::HashMap;
use std::fmt;

use crate::{Item, ItemSet};

/// A bidirectional mapping between human-readable item names and the
/// compact [`Item`] ids the miners work with.
///
/// Real datasets name their items ("espresso", "SKU-10441",
/// "high_io_latency"); the mining core deliberately only sees dense
/// `u32` ids. A `Vocabulary` interns names on first use and renders
/// results back:
///
/// ```
/// use car_itemset::Vocabulary;
///
/// let mut vocab = Vocabulary::new();
/// let basket = vocab.itemset(["espresso", "croissant"]);
/// assert_eq!(vocab.render(&basket), "{croissant espresso}");
/// ```
///
/// Ids are assigned sequentially from 0, so they double as vector
/// indices.
#[derive(Clone, Default)]
pub struct Vocabulary {
    names: Vec<String>,
    ids: HashMap<String, Item>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Interns a name, returning its item (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Item {
        if let Some(&item) = self.ids.get(name) {
            return item;
        }
        let item = Item::new(
            u32::try_from(self.names.len()).expect("vocabulary exceeds u32 ids"),
        );
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), item);
        item
    }

    /// Looks a name up without interning.
    pub fn get(&self, name: &str) -> Option<Item> {
        self.ids.get(name).copied()
    }

    /// The name of an item, if known.
    pub fn name(&self, item: Item) -> Option<&str> {
        self.names.get(item.index()).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Builds an itemset by interning each name.
    pub fn itemset<'a, I>(&mut self, names: I) -> ItemSet
    where
        I: IntoIterator<Item = &'a str>,
    {
        ItemSet::from_items(names.into_iter().map(|n| self.intern(n)))
    }

    /// Renders an itemset with names where known (falling back to raw
    /// ids), in `{a b c}` form sorted by name.
    pub fn render(&self, itemset: &ItemSet) -> String {
        let mut names: Vec<String> = itemset
            .iter()
            .map(|item| {
                self.name(item).map_or_else(|| format!("#{}", item.id()), str::to_string)
            })
            .collect();
        names.sort();
        format!("{{{}}}", names.join(" "))
    }

    /// Rebuilds the name→id index (needed after reconstructing a
    /// vocabulary from its name list alone).
    pub fn rebuild_index(&mut self) {
        self.ids = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Item::new(i as u32)))
            .collect();
    }
}

impl fmt::Debug for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vocabulary({} names)", self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("espresso");
        let b = v.intern("croissant");
        assert_ne!(a, b);
        assert_eq!(v.intern("espresso"), a);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn lookup_both_directions() {
        let mut v = Vocabulary::new();
        let a = v.intern("tea");
        assert_eq!(v.get("tea"), Some(a));
        assert_eq!(v.get("chai"), None);
        assert_eq!(v.name(a), Some("tea"));
        assert_eq!(v.name(Item::new(99)), None);
    }

    #[test]
    fn itemset_and_render() {
        let mut v = Vocabulary::new();
        let s = v.itemset(["b", "a", "b"]);
        assert_eq!(s.len(), 2);
        assert_eq!(v.render(&s), "{a b}");
        // Unknown ids render as raw.
        let mixed = ItemSet::from_items([Item::new(0), Item::new(42)]);
        assert_eq!(v.render(&mixed), "{#42 b}");
        assert_eq!(v.render(&ItemSet::empty()), "{}");
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let mut clone = Vocabulary { names: v.names.clone(), ids: HashMap::new() };
        assert_eq!(clone.get("x"), None);
        clone.rebuild_index();
        assert_eq!(clone.get("x"), Some(Item::new(0)));
        assert_eq!(clone.get("y"), Some(Item::new(1)));
    }

    #[test]
    fn ids_are_sequential() {
        let mut v = Vocabulary::new();
        for i in 0..10u32 {
            assert_eq!(v.intern(&format!("item-{i}")).id(), i);
        }
    }
}
