use std::fmt;
use std::io;

/// Errors produced by this crate (primarily file I/O and parsing).
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A line of an input file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Parse { line: 3, message: "bad item".into() };
        assert_eq!(e.to_string(), "parse error at line 3: bad item");
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e = Error::from(io::Error::other("inner"));
        assert!(e.source().is_some());
        let e = Error::Parse { line: 1, message: String::new() };
        assert!(e.source().is_none());
    }
}
