use std::fmt;
use std::ops::Deref;

use crate::Item;

/// An immutable, sorted, duplicate-free set of [`Item`]s.
///
/// `ItemSet` is the workhorse of the whole workspace: transactions,
/// candidates, frequent itemsets, and both sides of an association rule are
/// all itemsets. The representation is a boxed slice of items in strictly
/// increasing order, which makes equality, hashing, and ordering cheap and
/// lets every set operation run as a linear merge.
///
/// Constructors accept unsorted input with duplicates and normalize it;
/// operations that preserve sortedness (union, join, element removal) build
/// their results directly without re-sorting.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemSet {
    items: Box<[Item]>,
}

impl ItemSet {
    /// The empty itemset.
    pub fn empty() -> Self {
        ItemSet { items: Box::new([]) }
    }

    /// A singleton itemset.
    pub fn single(item: Item) -> Self {
        ItemSet { items: Box::new([item]) }
    }

    /// Builds an itemset from anything yielding items; the input is sorted
    /// and deduplicated.
    pub fn from_items<I>(items: I) -> Self
    where
        I: IntoIterator<Item = Item>,
    {
        let mut v: Vec<Item> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        ItemSet { items: v.into_boxed_slice() }
    }

    /// Builds an itemset from raw `u32` ids (sorted and deduplicated).
    pub fn from_ids<I>(ids: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        Self::from_items(ids.into_iter().map(Item::new))
    }

    /// Builds an itemset from a vector that the caller guarantees is sorted
    /// in strictly increasing order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant is violated.
    pub fn from_sorted_vec(items: Vec<Item>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "ItemSet::from_sorted_vec requires strictly increasing items"
        );
        ItemSet { items: items.into_boxed_slice() }
    }

    /// Number of items in the set (its *size* or *length*; frequent
    /// k-itemsets have `len() == k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items in increasing order.
    #[inline]
    pub fn as_slice(&self) -> &[Item] {
        &self.items
    }

    /// Iterates over the items in increasing order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Item>> {
        self.items.iter().copied()
    }

    /// Membership test via binary search.
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Returns `true` iff every item of `self` occurs in `other`.
    ///
    /// Linear merge over both sorted slices, `O(|self| + |other|)`.
    pub fn is_subset_of(&self, other: &ItemSet) -> bool {
        is_sorted_subset(&self.items, &other.items)
    }

    /// Set union, preserving sortedness.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other.items[j..]);
        ItemSet { items: out.into_boxed_slice() }
    }

    /// Set intersection, preserving sortedness.
    pub fn intersection(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ItemSet { items: out.into_boxed_slice() }
    }

    /// Set difference `self \ other`, preserving sortedness.
    pub fn difference(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() {
            if j >= other.items.len() || self.items[i] < other.items[j] {
                out.push(self.items[i]);
                i += 1;
            } else if self.items[i] > other.items[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        ItemSet { items: out.into_boxed_slice() }
    }

    /// Returns `true` iff `self` and `other` share no items.
    pub fn is_disjoint(&self, other: &ItemSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// The itemset obtained by removing the element at position `idx`.
    ///
    /// This is the primitive behind enumerating the `(k-1)`-subsets of a
    /// `k`-itemset (the Apriori prune step).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn without_index(&self, idx: usize) -> ItemSet {
        assert!(idx < self.items.len(), "without_index out of bounds");
        let mut out = Vec::with_capacity(self.items.len() - 1);
        out.extend_from_slice(&self.items[..idx]);
        out.extend_from_slice(&self.items[idx + 1..]);
        ItemSet { items: out.into_boxed_slice() }
    }

    /// The itemset extended by one item that must be strictly greater than
    /// the current maximum (the cheap append used by candidate generation).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `item` is not greater than the last item.
    pub fn with_appended(&self, item: Item) -> ItemSet {
        debug_assert!(
            self.items.last().map_or(true, |&last| last < item),
            "with_appended requires a strictly greater item"
        );
        let mut out = Vec::with_capacity(self.items.len() + 1);
        out.extend_from_slice(&self.items);
        out.push(item);
        ItemSet { items: out.into_boxed_slice() }
    }

    /// The Apriori *join*: two `k`-itemsets that agree on their first
    /// `k - 1` items join into a `(k+1)`-itemset; any other pair yields
    /// `None`. `self`'s last item must be smaller than `other`'s for the
    /// join to be produced exactly once over an ordered candidate list.
    pub fn apriori_join(&self, other: &ItemSet) -> Option<ItemSet> {
        let k = self.items.len();
        if k == 0 || other.items.len() != k {
            return None;
        }
        if self.items[..k - 1] != other.items[..k - 1] {
            return None;
        }
        if self.items[k - 1] >= other.items[k - 1] {
            return None;
        }
        Some(self.with_appended(other.items[k - 1]))
    }

    /// Iterates over all subsets of `self` of exactly `k` elements, in
    /// lexicographic order. Yields nothing when `k > len()`; yields the
    /// empty set once when `k == 0`.
    pub fn k_subsets(&self, k: usize) -> KSubsets<'_> {
        KSubsets::new(&self.items, k)
    }

    /// All `(k-1)`-subsets of a `k`-itemset, in order of the removed index.
    pub fn immediate_subsets(&self) -> impl Iterator<Item = ItemSet> + '_ {
        (0..self.items.len()).map(move |i| self.without_index(i))
    }

    /// All non-empty proper subsets of `self` (useful for rule generation
    /// on small itemsets; exponential in `len()`).
    pub fn proper_nonempty_subsets(&self) -> Vec<ItemSet> {
        let n = self.items.len();
        if n <= 1 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity((1usize << n) - 2);
        for mask in 1..((1usize << n) - 1) {
            let mut v = Vec::with_capacity(mask.count_ones() as usize);
            for (i, &item) in self.items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    v.push(item);
                }
            }
            out.push(ItemSet::from_sorted_vec(v));
        }
        out
    }
}

/// Returns `true` iff sorted slice `sub` is a subset of sorted slice `sup`.
pub(crate) fn is_sorted_subset(sub: &[Item], sup: &[Item]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut j = 0;
    for &x in sub {
        loop {
            if j >= sup.len() {
                return false;
            }
            match sup[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

impl Deref for ItemSet {
    type Target = [Item];

    fn deref(&self) -> &[Item] {
        &self.items
    }
}

impl<'a> IntoIterator for &'a ItemSet {
    type Item = Item;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Item>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Item> for ItemSet {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        ItemSet::from_items(iter)
    }
}

impl FromIterator<u32> for ItemSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        ItemSet::from_ids(iter)
    }
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the `k`-element subsets of a sorted item slice, in
/// lexicographic order. Created by [`ItemSet::k_subsets`].
pub struct KSubsets<'a> {
    items: &'a [Item],
    /// Current combination as indices into `items`; empty once exhausted.
    indices: Vec<usize>,
    started: bool,
    done: bool,
}

impl<'a> KSubsets<'a> {
    fn new(items: &'a [Item], k: usize) -> Self {
        let done = k > items.len();
        KSubsets { items, indices: (0..k).collect(), started: false, done }
    }

    fn current(&self) -> ItemSet {
        ItemSet::from_sorted_vec(self.indices.iter().map(|&i| self.items[i]).collect())
    }

    /// Advances `indices` to the next combination; returns `false` when
    /// exhausted.
    fn advance(&mut self) -> bool {
        let k = self.indices.len();
        let n = self.items.len();
        if k == 0 {
            return false;
        }
        let mut i = k;
        while i > 0 {
            i -= 1;
            if self.indices[i] < n - (k - i) {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                return true;
            }
        }
        false
    }
}

impl Iterator for KSubsets<'_> {
    type Item = ItemSet;

    fn next(&mut self) -> Option<ItemSet> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.current());
        }
        if self.advance() {
            Some(self.current())
        } else {
            self.done = true;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[3, 1, 2, 3, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().map(Item::id).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_single() {
        assert!(ItemSet::empty().is_empty());
        assert_eq!(ItemSet::empty().len(), 0);
        let s = ItemSet::single(Item::new(7));
        assert_eq!(s.len(), 1);
        assert!(s.contains(Item::new(7)));
        assert!(!s.contains(Item::new(8)));
    }

    #[test]
    fn subset_tests() {
        let abc = set(&[1, 2, 3]);
        assert!(set(&[]).is_subset_of(&abc));
        assert!(set(&[1]).is_subset_of(&abc));
        assert!(set(&[1, 3]).is_subset_of(&abc));
        assert!(abc.is_subset_of(&abc));
        assert!(!set(&[1, 4]).is_subset_of(&abc));
        assert!(!set(&[1, 2, 3, 4]).is_subset_of(&abc));
        assert!(!set(&[0]).is_subset_of(&abc));
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[1, 3, 5]);
        let b = set(&[2, 3, 4]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 5]));
        assert_eq!(a.intersection(&b), set(&[3]));
        assert_eq!(a.difference(&b), set(&[1, 5]));
        assert_eq!(b.difference(&a), set(&[2, 4]));
        assert_eq!(a.union(&ItemSet::empty()), a);
        assert_eq!(a.intersection(&ItemSet::empty()), ItemSet::empty());
    }

    #[test]
    fn disjointness() {
        assert!(set(&[1, 2]).is_disjoint(&set(&[3, 4])));
        assert!(!set(&[1, 2]).is_disjoint(&set(&[2, 3])));
        assert!(ItemSet::empty().is_disjoint(&set(&[1])));
    }

    #[test]
    fn apriori_join_requires_shared_prefix() {
        let ab = set(&[1, 2]);
        let ac = set(&[1, 3]);
        let bc = set(&[2, 3]);
        assert_eq!(ab.apriori_join(&ac), Some(set(&[1, 2, 3])));
        // Last item of self must be smaller.
        assert_eq!(ac.apriori_join(&ab), None);
        // Different prefixes do not join.
        assert_eq!(ab.apriori_join(&bc), None);
        // Different sizes do not join.
        assert_eq!(ab.apriori_join(&set(&[1])), None);
        // Empty sets do not join.
        assert_eq!(ItemSet::empty().apriori_join(&ItemSet::empty()), None);
    }

    #[test]
    fn apriori_join_singletons() {
        let a = set(&[1]);
        let b = set(&[2]);
        assert_eq!(a.apriori_join(&b), Some(set(&[1, 2])));
        assert_eq!(b.apriori_join(&a), None);
        assert_eq!(a.apriori_join(&a), None);
    }

    #[test]
    fn k_subsets_enumeration() {
        let s = set(&[1, 2, 3, 4]);
        let twos: Vec<ItemSet> = s.k_subsets(2).collect();
        assert_eq!(
            twos,
            vec![
                set(&[1, 2]),
                set(&[1, 3]),
                set(&[1, 4]),
                set(&[2, 3]),
                set(&[2, 4]),
                set(&[3, 4]),
            ]
        );
        assert_eq!(s.k_subsets(0).collect::<Vec<_>>(), vec![ItemSet::empty()]);
        assert_eq!(s.k_subsets(4).collect::<Vec<_>>(), vec![s.clone()]);
        assert!(s.k_subsets(5).next().is_none());
    }

    #[test]
    fn immediate_subsets_drop_one_each() {
        let s = set(&[1, 2, 3]);
        let subs: Vec<ItemSet> = s.immediate_subsets().collect();
        assert_eq!(subs, vec![set(&[2, 3]), set(&[1, 3]), set(&[1, 2])]);
    }

    #[test]
    fn proper_nonempty_subsets_count() {
        let s = set(&[1, 2, 3]);
        let subs = s.proper_nonempty_subsets();
        assert_eq!(subs.len(), 6); // 2^3 - 2
        assert!(subs.contains(&set(&[1])));
        assert!(subs.contains(&set(&[2, 3])));
        assert!(!subs.contains(&s));
        assert!(!subs.contains(&ItemSet::empty()));
        assert!(set(&[9]).proper_nonempty_subsets().is_empty());
        assert!(ItemSet::empty().proper_nonempty_subsets().is_empty());
    }

    #[test]
    fn display_format() {
        assert_eq!(set(&[1, 2, 3]).to_string(), "{1 2 3}");
        assert_eq!(ItemSet::empty().to_string(), "{}");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(set(&[1]) < set(&[1, 2]));
        assert!(set(&[1, 2]) < set(&[2]));
        assert!(set(&[1, 3]) > set(&[1, 2, 9]));
    }
}
