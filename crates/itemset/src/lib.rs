//! # car-itemset
//!
//! Foundation types for cyclic association rule mining.
//!
//! This crate provides the data model shared by every other crate in the
//! workspace:
//!
//! * [`Item`] — a compact, copyable item identifier.
//! * [`ItemSet`] — an immutable, sorted, duplicate-free set of items with
//!   the set algebra needed by Apriori-style miners (subset tests, unions,
//!   k-subset enumeration, and the classic *join* step).
//! * [`Transaction`] — an itemset together with a transaction id and the
//!   time unit it falls into.
//! * [`TransactionDb`] — a flat transaction database.
//! * [`SegmentedDb`] — a transaction database partitioned into consecutive
//!   **time units**, the structure over which cyclic association rules are
//!   defined (Özden, Ramaswamy, Silberschatz; ICDE 1998).
//! * [`io`] — readers and writers for FIMI-style `.dat` files and a timed
//!   variant with an explicit time-unit column.
//!
//! The types here are deliberately simple and allocation-conscious: an
//! [`ItemSet`] is a boxed slice, item ids are `u32`, and all set operations
//! on sorted slices are linear merges rather than hash-based.
//!
//! ```
//! use car_itemset::{Item, ItemSet, SegmentedDb};
//!
//! let a = Item::new(1);
//! let b = Item::new(2);
//! let ab = ItemSet::from_items([a, b]);
//! assert!(ItemSet::single(a).is_subset_of(&ab));
//!
//! let db = SegmentedDb::from_unit_itemsets(vec![
//!     vec![ab.clone()],
//!     vec![ItemSet::single(b)],
//! ]);
//! assert_eq!(db.num_units(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
mod database;
mod error;
pub mod io;
mod item;
mod itemset;
pub mod refstore;
mod segmented;
mod transaction;
mod vocabulary;

pub use database::TransactionDb;
pub use error::{Error, Result};
pub use item::Item;
pub use itemset::{ItemSet, KSubsets};
pub use refstore::{IterableRefSet, RefCounter, RefMap};
pub use segmented::{SegmentedDb, TimeUnit};
pub use transaction::Transaction;
pub use vocabulary::Vocabulary;
