//! Calendar-aligned time segmentation.
//!
//! The ICDE'98 paper motivates cyclic rules with *monthly* sales data and
//! *daily*/*weekly* periodicities. Fixed-width segmentation
//! ([`SegmentedDb::from_timestamps`](crate::SegmentedDb::from_timestamps))
//! is wrong for months (28–31 days) and misaligns weeks; this module
//! segments Unix timestamps on real calendar boundaries using civil
//! (proleptic Gregorian) date arithmetic implemented from scratch — no
//! timezone database, UTC only.
//!
//! ```
//! use car_itemset::calendar::{CivilDate, Granularity};
//! use car_itemset::ItemSet;
//!
//! let d = CivilDate::from_unix(951_782_400); // 2000-02-29 00:00 UTC
//! assert_eq!((d.year, d.month, d.day), (2000, 2, 29));
//!
//! // Two sales a month apart land in consecutive monthly units.
//! let rows = vec![
//!     (946_684_800, ItemSet::from_ids([1])), // 2000-01-01
//!     (949_363_200, ItemSet::from_ids([2])), // 2000-02-01
//! ];
//! let db = Granularity::Month.segment(rows);
//! assert_eq!(db.num_units(), 2);
//! ```

use crate::{ItemSet, SegmentedDb};

const SECS_PER_DAY: i64 = 86_400;

/// A civil (proleptic Gregorian) calendar date, UTC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    /// Year (astronomical numbering; 2000 means 2000 CE).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl CivilDate {
    /// Converts days since the Unix epoch (1970-01-01) to a civil date.
    ///
    /// Uses Howard Hinnant's `civil_from_days` algorithm, exact over the
    /// full proleptic Gregorian calendar.
    pub fn from_days(days_since_epoch: i64) -> Self {
        let z = days_since_epoch + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // day of era [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        CivilDate { year: (y + i64::from(m <= 2)) as i32, month: m as u8, day: d as u8 }
    }

    /// Converts a civil date to days since the Unix epoch
    /// (Hinnant's `days_from_civil`).
    pub fn to_days(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = if m > 2 { m - 3 } else { m + 9 }; // [0, 11]
        let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Converts a Unix timestamp (seconds) to the civil date of its UTC
    /// day.
    pub fn from_unix(timestamp: i64) -> Self {
        Self::from_days(timestamp.div_euclid(SECS_PER_DAY))
    }

    /// Day of week, 0 = Monday … 6 = Sunday (ISO).
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (ISO index 3).
        (self.to_days() + 3).rem_euclid(7) as u8
    }

    /// Whether the year is a Gregorian leap year.
    pub fn is_leap_year(self) -> bool {
        let y = self.year;
        y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
    }

    /// Number of days in this date's month.
    pub fn days_in_month(self) -> u8 {
        match self.month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 if self.is_leap_year() => 29,
            2 => 28,
            other => unreachable!("invalid month {other}"),
        }
    }
}

/// Calendar granularity for segmenting timestamped transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// UTC hours.
    Hour,
    /// UTC calendar days.
    Day,
    /// ISO weeks (Monday-aligned).
    Week,
    /// Calendar months.
    Month,
}

impl Granularity {
    /// The index of the unit containing `timestamp`, in an absolute
    /// scheme (hours/days since epoch, Monday-aligned weeks since epoch,
    /// months since year 0 of the epoch).
    pub fn unit_index(self, timestamp: i64) -> i64 {
        match self {
            Granularity::Hour => timestamp.div_euclid(3600),
            Granularity::Day => timestamp.div_euclid(SECS_PER_DAY),
            Granularity::Week => {
                // Days since epoch, shifted so weeks break on Mondays
                // (1970-01-01 was a Thursday, i.e. 3 days after Monday).
                (timestamp.div_euclid(SECS_PER_DAY) + 3).div_euclid(7)
            }
            Granularity::Month => {
                let d = CivilDate::from_unix(timestamp);
                i64::from(d.year) * 12 + i64::from(d.month) - 1
            }
        }
    }

    /// Segments timestamped transactions into consecutive units of this
    /// granularity, starting at the unit of the earliest timestamp.
    /// Calendar gaps become empty units. Returns an empty database for
    /// empty input.
    pub fn segment(self, rows: Vec<(i64, ItemSet)>) -> SegmentedDb {
        if rows.is_empty() {
            return SegmentedDb::with_units(0);
        }
        let first =
            rows.iter().map(|&(t, _)| self.unit_index(t)).min().expect("non-empty");
        let last =
            rows.iter().map(|&(t, _)| self.unit_index(t)).max().expect("non-empty");
        let mut units: Vec<Vec<ItemSet>> =
            vec![Vec::new(); usize::try_from(last - first + 1).expect("window fits")];
        for (t, items) in rows {
            units[(self.unit_index(t) - first) as usize].push(items);
        }
        SegmentedDb::from_unit_itemsets(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn epoch_is_1970_01_01() {
        assert_eq!(CivilDate::from_days(0), CivilDate { year: 1970, month: 1, day: 1 });
        assert_eq!(CivilDate { year: 1970, month: 1, day: 1 }.to_days(), 0);
    }

    #[test]
    fn known_dates() {
        // 2000-02-29 (leap day), 951782400 = 2000-02-29T00:00Z.
        let d = CivilDate::from_unix(951_782_400);
        assert_eq!(d, CivilDate { year: 2000, month: 2, day: 29 });
        assert!(d.is_leap_year());
        assert_eq!(d.days_in_month(), 29);
        // 1900 was not a leap year.
        assert!(!CivilDate { year: 1900, month: 2, day: 1 }.is_leap_year());
        assert_eq!(CivilDate { year: 1900, month: 2, day: 1 }.days_in_month(), 28);
        // 2026-07-05 — today's date at authoring time.
        let d = CivilDate::from_days(20_639);
        assert_eq!(d, CivilDate { year: 2026, month: 7, day: 5 });
    }

    #[test]
    fn roundtrip_over_wide_range() {
        // Every ~97 days over ±200 years.
        let mut day = -73_000i64;
        while day < 73_000 {
            let civil = CivilDate::from_days(day);
            assert_eq!(civil.to_days(), day, "{civil:?}");
            assert!((1..=12).contains(&civil.month));
            assert!((1..=civil.days_in_month()).contains(&civil.day));
            day += 97;
        }
    }

    #[test]
    fn days_increment_through_month_boundaries() {
        // Scan one leap year day by day; dates must advance correctly.
        let start = CivilDate { year: 2020, month: 1, day: 1 }.to_days();
        let mut prev = CivilDate::from_days(start);
        for offset in 1..=366 {
            let cur = CivilDate::from_days(start + offset);
            let same_month = cur.month == prev.month && cur.year == prev.year;
            if same_month {
                assert_eq!(cur.day, prev.day + 1);
            } else {
                assert_eq!(cur.day, 1);
                assert_eq!(prev.day, prev.days_in_month());
            }
            prev = cur;
        }
        assert_eq!(prev, CivilDate { year: 2021, month: 1, day: 1 });
    }

    #[test]
    fn weekday_is_iso() {
        // 1970-01-01 = Thursday = 3.
        assert_eq!(CivilDate::from_days(0).weekday(), 3);
        // 2000-01-01 = Saturday = 5.
        assert_eq!(CivilDate { year: 2000, month: 1, day: 1 }.weekday(), 5);
        // 2026-07-05 = Sunday = 6.
        assert_eq!(CivilDate { year: 2026, month: 7, day: 5 }.weekday(), 6);
    }

    #[test]
    fn negative_timestamps_are_handled() {
        // 1969-12-31T23:00Z.
        let d = CivilDate::from_unix(-3600);
        assert_eq!(d, CivilDate { year: 1969, month: 12, day: 31 });
        assert_eq!(Granularity::Day.unit_index(-1), -1);
        assert_eq!(Granularity::Day.unit_index(0), 0);
    }

    #[test]
    fn hour_and_day_indices() {
        assert_eq!(Granularity::Hour.unit_index(0), 0);
        assert_eq!(Granularity::Hour.unit_index(3599), 0);
        assert_eq!(Granularity::Hour.unit_index(3600), 1);
        assert_eq!(Granularity::Day.unit_index(86_399), 0);
        assert_eq!(Granularity::Day.unit_index(86_400), 1);
    }

    #[test]
    fn week_units_break_on_monday() {
        // 2000-01-03 was a Monday.
        let monday = CivilDate { year: 2000, month: 1, day: 3 }.to_days() * SECS_PER_DAY;
        let sunday_before = monday - 1;
        assert_eq!(
            Granularity::Week.unit_index(monday),
            Granularity::Week.unit_index(sunday_before) + 1
        );
        // Monday..Sunday of one week share a unit.
        assert_eq!(
            Granularity::Week.unit_index(monday),
            Granularity::Week.unit_index(monday + 6 * SECS_PER_DAY)
        );
    }

    #[test]
    fn month_units_vary_in_length() {
        let jan31 = CivilDate { year: 2001, month: 1, day: 31 }.to_days() * SECS_PER_DAY;
        let feb1 = CivilDate { year: 2001, month: 2, day: 1 }.to_days() * SECS_PER_DAY;
        let feb28 = CivilDate { year: 2001, month: 2, day: 28 }.to_days() * SECS_PER_DAY;
        let mar1 = CivilDate { year: 2001, month: 3, day: 1 }.to_days() * SECS_PER_DAY;
        assert_eq!(
            Granularity::Month.unit_index(jan31) + 1,
            Granularity::Month.unit_index(feb1)
        );
        assert_eq!(
            Granularity::Month.unit_index(feb1),
            Granularity::Month.unit_index(feb28)
        );
        assert_eq!(
            Granularity::Month.unit_index(feb28) + 1,
            Granularity::Month.unit_index(mar1)
        );
    }

    #[test]
    fn segment_creates_gap_units() {
        let day = |d: i64| d * SECS_PER_DAY + 60;
        let rows = vec![
            (day(0), set(&[1])),
            (day(3), set(&[2])), // days 1 and 2 have no transactions
        ];
        let db = Granularity::Day.segment(rows);
        assert_eq!(db.num_units(), 4);
        assert_eq!(db.unit(0).len(), 1);
        assert!(db.unit(1).is_empty());
        assert!(db.unit(2).is_empty());
        assert_eq!(db.unit(3).len(), 1);
    }

    #[test]
    fn segment_empty_input() {
        assert_eq!(Granularity::Week.segment(Vec::new()).num_units(), 0);
    }

    #[test]
    fn monthly_segmentation_end_to_end() {
        // Sales on the 1st and 15th of each of six months.
        let mut rows = Vec::new();
        for month in 1..=6u8 {
            for day in [1u8, 15] {
                let t = CivilDate { year: 2003, month, day }.to_days() * SECS_PER_DAY;
                rows.push((t, set(&[u32::from(month)])));
            }
        }
        let db = Granularity::Month.segment(rows);
        assert_eq!(db.num_units(), 6);
        assert!(db.iter_units().all(|(_, u)| u.len() == 2));
    }
}
