use std::fmt;

/// A compact item identifier.
///
/// Items are the atoms of association rule mining — product ids, event
/// codes, page ids, and so on. They are represented as a `u32` newtype so
/// that itemsets stay small and cache-friendly and so that item ids cannot
/// be confused with other integers (counts, unit indices, …) at type-check
/// time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item(u32);

impl Item {
    /// Creates an item from its raw id.
    #[inline]
    pub const fn new(id: u32) -> Self {
        Item(id)
    }

    /// Returns the raw id of this item.
    #[inline]
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Returns the raw id as a `usize`, convenient for indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Item {
    #[inline]
    fn from(id: u32) -> Self {
        Item(id)
    }
}

impl From<Item> for u32 {
    #[inline]
    fn from(item: Item) -> Self {
        item.0
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Item({})", self.0)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_conversions() {
        let item = Item::new(42);
        assert_eq!(item.id(), 42);
        assert_eq!(item.index(), 42usize);
        assert_eq!(u32::from(item), 42);
        assert_eq!(Item::from(42u32), item);
    }

    #[test]
    fn ordering_follows_ids() {
        assert!(Item::new(1) < Item::new(2));
        assert!(Item::new(7) > Item::new(3));
        assert_eq!(Item::new(5), Item::new(5));
    }

    #[test]
    fn display_is_bare_id() {
        assert_eq!(Item::new(9).to_string(), "9");
        assert_eq!(format!("{:?}", Item::new(9)), "Item(9)");
    }
}
