use std::fmt;

use crate::{ItemSet, Transaction, TransactionDb};

/// Index of a time unit in a [`SegmentedDb`], starting at zero.
///
/// Time units are the granularity at which cyclic behaviour is observed:
/// a unit might be an hour, a day, or a month of real time; the mining
/// algorithms only see the index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeUnit(u32);

impl TimeUnit {
    /// Creates a time unit from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        TimeUnit(index)
    }

    /// The unit's index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The unit's index as the raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for TimeUnit {
    fn from(index: u32) -> Self {
        TimeUnit(index)
    }
}

impl fmt::Debug for TimeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for TimeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A transaction database partitioned into consecutive time units.
///
/// This is the input structure of cyclic association rule mining: the time
/// dimension is divided into `n` equal-length units and every transaction
/// is assigned to exactly one unit. `SegmentedDb` stores, for each unit,
/// the itemsets of the transactions that fall into it.
///
/// Units may be empty (for instance, a shop with no sales on a holiday);
/// by definition no itemset is *large* in an empty unit.
#[derive(Clone, PartialEq, Eq)]
pub struct SegmentedDb {
    units: Vec<Vec<ItemSet>>,
}

impl SegmentedDb {
    /// Creates a segmented database from per-unit transaction itemsets.
    pub fn from_unit_itemsets(units: Vec<Vec<ItemSet>>) -> Self {
        SegmentedDb { units }
    }

    /// Creates an empty database with `n` empty units.
    pub fn with_units(n: usize) -> Self {
        SegmentedDb { units: vec![Vec::new(); n] }
    }

    /// Segments a flat [`TransactionDb`] using the unit stamped on each
    /// transaction. The number of units is one past the maximum stamped
    /// unit, or `min_units` if that is larger.
    pub fn from_transactions(db: &TransactionDb, min_units: usize) -> Self {
        let max_unit = db.iter().map(|t| t.unit.index() + 1).max().unwrap_or(0);
        let n = max_unit.max(min_units);
        let mut units: Vec<Vec<ItemSet>> = vec![Vec::new(); n];
        for t in db.iter() {
            units[t.unit.index()].push(t.items.clone());
        }
        SegmentedDb { units }
    }

    /// Segments raw timestamped itemsets: transaction `(time, items)` goes
    /// into unit `(time - t0) / unit_len` where `t0` is the smallest time.
    ///
    /// Returns an empty database when the input is empty.
    ///
    /// # Panics
    ///
    /// Panics if `unit_len == 0`.
    pub fn from_timestamps(mut rows: Vec<(u64, ItemSet)>, unit_len: u64) -> Self {
        assert!(unit_len > 0, "unit length must be positive");
        if rows.is_empty() {
            return SegmentedDb { units: Vec::new() };
        }
        rows.sort_by_key(|(t, _)| *t);
        let t0 = rows[0].0;
        let last_unit = ((rows[rows.len() - 1].0 - t0) / unit_len) as usize;
        let mut units: Vec<Vec<ItemSet>> = vec![Vec::new(); last_unit + 1];
        for (t, items) in rows {
            units[((t - t0) / unit_len) as usize].push(items);
        }
        SegmentedDb { units }
    }

    /// Appends a transaction itemset to the given unit, growing the unit
    /// list if needed.
    pub fn push(&mut self, unit: TimeUnit, items: ItemSet) {
        let idx = unit.index();
        if idx >= self.units.len() {
            self.units.resize_with(idx + 1, Vec::new);
        }
        self.units[idx].push(items);
    }

    /// Number of time units (including empty ones).
    #[inline]
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Total number of transactions across all units.
    pub fn num_transactions(&self) -> usize {
        self.units.iter().map(Vec::len).sum()
    }

    /// The transactions of unit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_units()`.
    #[inline]
    pub fn unit(&self, i: usize) -> &[ItemSet] {
        &self.units[i]
    }

    /// Iterates over `(unit_index, transactions)` pairs.
    pub fn iter_units(&self) -> impl Iterator<Item = (usize, &[ItemSet])> {
        self.units.iter().enumerate().map(|(i, u)| (i, u.as_slice()))
    }

    /// Iterates over every transaction itemset with its unit index.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, &ItemSet)> {
        self.units.iter().enumerate().flat_map(|(i, u)| u.iter().map(move |t| (i, t)))
    }

    /// The largest item id occurring in the database, if any.
    pub fn max_item_id(&self) -> Option<u32> {
        self.iter_all().filter_map(|(_, t)| t.as_slice().last().map(|it| it.id())).max()
    }

    /// Flattens into a [`TransactionDb`], assigning sequential ids.
    pub fn to_transaction_db(&self) -> TransactionDb {
        let mut db = TransactionDb::new();
        let mut id = 0u64;
        for (i, unit) in self.units.iter().enumerate() {
            for items in unit {
                db.push(Transaction::new(id, TimeUnit::new(i as u32), items.clone()));
                id += 1;
            }
        }
        db
    }
}

impl fmt::Debug for SegmentedDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SegmentedDb({} units, {} transactions)",
            self.num_units(),
            self.num_transactions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn from_unit_itemsets_basic() {
        let db = SegmentedDb::from_unit_itemsets(vec![
            vec![set(&[1, 2]), set(&[2])],
            vec![],
            vec![set(&[3])],
        ]);
        assert_eq!(db.num_units(), 3);
        assert_eq!(db.num_transactions(), 3);
        assert_eq!(db.unit(0).len(), 2);
        assert!(db.unit(1).is_empty());
        assert_eq!(db.max_item_id(), Some(3));
    }

    #[test]
    fn from_timestamps_buckets_correctly() {
        let rows =
            vec![(100, set(&[1])), (109, set(&[2])), (110, set(&[3])), (125, set(&[4]))];
        let db = SegmentedDb::from_timestamps(rows, 10);
        assert_eq!(db.num_units(), 3);
        assert_eq!(db.unit(0).len(), 2); // t=100, 109
        assert_eq!(db.unit(1).len(), 1); // t=110
        assert_eq!(db.unit(2).len(), 1); // t=125
    }

    #[test]
    fn from_timestamps_empty_input() {
        let db = SegmentedDb::from_timestamps(Vec::new(), 10);
        assert_eq!(db.num_units(), 0);
        assert_eq!(db.num_transactions(), 0);
        assert_eq!(db.max_item_id(), None);
    }

    #[test]
    #[should_panic(expected = "unit length must be positive")]
    fn from_timestamps_zero_unit_len_panics() {
        let _ = SegmentedDb::from_timestamps(vec![(0, set(&[1]))], 0);
    }

    #[test]
    fn push_grows_units() {
        let mut db = SegmentedDb::with_units(1);
        db.push(TimeUnit::new(4), set(&[1]));
        assert_eq!(db.num_units(), 5);
        assert_eq!(db.unit(4).len(), 1);
        assert!(db.unit(2).is_empty());
    }

    #[test]
    fn roundtrip_through_transaction_db() {
        let db = SegmentedDb::from_unit_itemsets(vec![
            vec![set(&[1])],
            vec![set(&[2]), set(&[2, 3])],
        ]);
        let flat = db.to_transaction_db();
        assert_eq!(flat.len(), 3);
        let back = SegmentedDb::from_transactions(&flat, 0);
        assert_eq!(back, db);
    }

    #[test]
    fn from_transactions_respects_min_units() {
        let flat = TransactionDb::new();
        let db = SegmentedDb::from_transactions(&flat, 4);
        assert_eq!(db.num_units(), 4);
        assert_eq!(db.num_transactions(), 0);
    }

    #[test]
    fn iter_all_yields_unit_indices() {
        let db = SegmentedDb::from_unit_itemsets(vec![vec![set(&[1])], vec![set(&[2])]]);
        let pairs: Vec<(usize, ItemSet)> =
            db.iter_all().map(|(i, t)| (i, t.clone())).collect();
        assert_eq!(pairs, vec![(0, set(&[1])), (1, set(&[2]))]);
    }
}
