use std::fmt;

use crate::Transaction;

/// A flat, in-memory transaction database.
///
/// `TransactionDb` is the exchange format between file I/O, the synthetic
/// data generator, and the miners; most algorithms work on the segmented
/// view ([`SegmentedDb`](crate::SegmentedDb)) instead.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct TransactionDb {
    transactions: Vec<Transaction>,
}

impl TransactionDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        TransactionDb { transactions: Vec::new() }
    }

    /// Creates a database from a vector of transactions.
    pub fn from_transactions(transactions: Vec<Transaction>) -> Self {
        TransactionDb { transactions }
    }

    /// Appends a transaction.
    pub fn push(&mut self, t: Transaction) {
        self.transactions.push(t);
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Iterates over the transactions in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.transactions.iter()
    }

    /// The transactions as a slice.
    pub fn as_slice(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Average transaction length (0.0 for an empty database).
    pub fn avg_transaction_len(&self) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        let total: usize = self.transactions.iter().map(Transaction::len).sum();
        total as f64 / self.transactions.len() as f64
    }

    /// Number of distinct items appearing in the database.
    pub fn num_distinct_items(&self) -> usize {
        let mut items: Vec<u32> = self
            .transactions
            .iter()
            .flat_map(|t| t.items.iter().map(|i| i.id()))
            .collect();
        items.sort_unstable();
        items.dedup();
        items.len()
    }
}

impl fmt::Debug for TransactionDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TransactionDb({} transactions)", self.len())
    }
}

impl<'a> IntoIterator for &'a TransactionDb {
    type Item = &'a Transaction;
    type IntoIter = std::slice::Iter<'a, Transaction>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Transaction> for TransactionDb {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        TransactionDb { transactions: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemSet, TimeUnit};

    fn tx(id: u64, unit: u32, ids: &[u32]) -> Transaction {
        Transaction::new(id, TimeUnit::new(unit), ItemSet::from_ids(ids.iter().copied()))
    }

    #[test]
    fn push_and_len() {
        let mut db = TransactionDb::new();
        assert!(db.is_empty());
        db.push(tx(0, 0, &[1, 2]));
        db.push(tx(1, 0, &[2]));
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
    }

    #[test]
    fn statistics() {
        let db =
            TransactionDb::from_transactions(vec![tx(0, 0, &[1, 2, 3]), tx(1, 1, &[2])]);
        assert!((db.avg_transaction_len() - 2.0).abs() < 1e-12);
        assert_eq!(db.num_distinct_items(), 3);
        assert_eq!(TransactionDb::new().avg_transaction_len(), 0.0);
        assert_eq!(TransactionDb::new().num_distinct_items(), 0);
    }

    #[test]
    fn collect_from_iterator() {
        let db: TransactionDb = (0..3).map(|i| tx(i, 0, &[1])).collect();
        assert_eq!(db.len(), 3);
        assert_eq!(db.iter().count(), 3);
    }
}
