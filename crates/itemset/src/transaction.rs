use std::fmt;

use crate::{ItemSet, TimeUnit};

/// A single transaction: a set of items bought/observed together, stamped
/// with an id and the time unit it belongs to.
///
/// Cyclic association rule mining never needs finer-grained timestamps than
/// the time unit, so transactions carry the unit index directly; segmenting
/// raw timestamped data into units is the responsibility of
/// [`SegmentedDb`](crate::SegmentedDb) constructors.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Identifier unique within its database.
    pub id: u64,
    /// The time unit this transaction falls into.
    pub unit: TimeUnit,
    /// The items of the transaction.
    pub items: ItemSet,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(id: u64, unit: TimeUnit, items: ItemSet) -> Self {
        Transaction { id, unit, items }
    }

    /// Number of items in the transaction.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the transaction carries no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Transaction(#{} @u{}: {})", self.id, self.unit.index(), self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Item;

    #[test]
    fn basic_accessors() {
        let t = Transaction::new(
            3,
            TimeUnit::new(2),
            ItemSet::from_items([Item::new(1), Item::new(5)]),
        );
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.unit.index(), 2);
        assert_eq!(format!("{t:?}"), "Transaction(#3 @u2: {1 5})");
    }

    #[test]
    fn empty_transaction() {
        let t = Transaction::new(0, TimeUnit::new(0), ItemSet::empty());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
