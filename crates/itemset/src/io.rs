//! Readers and writers for transaction files.
//!
//! Two plain-text formats are supported:
//!
//! * **FIMI format** (`read_fimi` / `write_fimi`): one transaction per
//!   line, items as space-separated integers — the format of the
//!   <http://fimi.cs.helsinki.fi> benchmark datasets. FIMI files carry no
//!   time information; callers segment them into units separately (e.g.
//!   round-robin or fixed-size blocks via [`segment_evenly`]).
//!
//! * **Timed format** (`read_timed` / `write_timed`): one transaction per
//!   line, `unit_index | item item item …`. This is the native format of
//!   the workspace's data generator and CLI.
//!
//! Blank lines and lines starting with `#` are ignored in both formats.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::{Error, ItemSet, Result, SegmentedDb, TimeUnit};

/// Reads a FIMI-style file: each non-comment line is a whitespace-separated
/// list of item ids forming one transaction.
pub fn read_fimi<R: Read>(reader: R) -> Result<Vec<ItemSet>> {
    let mut out = Vec::new();
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_items(trimmed, idx + 1)?);
    }
    Ok(out)
}

/// Writes transactions in FIMI format.
///
/// The format cannot represent an *empty* transaction: it would be a
/// blank line, which readers (including [`read_fimi`]) skip. Empty
/// itemsets are therefore silently dropped on write; empty transactions
/// carry no information for support counting anyway.
pub fn write_fimi<W: Write>(writer: W, transactions: &[ItemSet]) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for t in transactions {
        if t.is_empty() {
            continue;
        }
        write_items(&mut w, t)?;
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the timed format: `unit | item item item …` per line.
///
/// The resulting database has `max_unit + 1` units; units that never occur
/// in the file are present but empty.
pub fn read_timed<R: Read>(reader: R) -> Result<SegmentedDb> {
    let mut db = SegmentedDb::with_units(0);
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let (unit_str, items_str) =
            trimmed.split_once('|').ok_or_else(|| Error::Parse {
                line: lineno,
                message: "expected `unit | items` separator".into(),
            })?;
        let unit: u32 = unit_str.trim().parse().map_err(|_| Error::Parse {
            line: lineno,
            message: format!("invalid unit index `{}`", unit_str.trim()),
        })?;
        let items = parse_items(items_str.trim(), lineno)?;
        db.push(TimeUnit::new(unit), items);
    }
    Ok(db)
}

/// Writes a segmented database in the timed format.
pub fn write_timed<W: Write>(writer: W, db: &SegmentedDb) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for (unit, transactions) in db.iter_units() {
        for t in transactions {
            write!(w, "{unit} | ")?;
            write_items(&mut w, t)?;
            writeln!(w)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Splits a flat list of transactions into `num_units` consecutive blocks
/// of (nearly) equal size, in order. Earlier blocks receive the remainder.
///
/// This is how untimed benchmark files (e.g. FIMI datasets) are given a
/// synthetic time dimension for cyclic mining experiments.
///
/// # Panics
///
/// Panics if `num_units == 0`.
pub fn segment_evenly(transactions: Vec<ItemSet>, num_units: usize) -> SegmentedDb {
    assert!(num_units > 0, "num_units must be positive");
    let n = transactions.len();
    let base = n / num_units;
    let rem = n % num_units;
    let mut units = Vec::with_capacity(num_units);
    let mut it = transactions.into_iter();
    for u in 0..num_units {
        let take = base + usize::from(u < rem);
        units.push(it.by_ref().take(take).collect());
    }
    SegmentedDb::from_unit_itemsets(units)
}

fn parse_items(s: &str, lineno: usize) -> Result<ItemSet> {
    let mut ids = Vec::new();
    for tok in s.split_whitespace() {
        let id: u32 = tok.parse().map_err(|_| Error::Parse {
            line: lineno,
            message: format!("invalid item id `{tok}`"),
        })?;
        ids.push(id);
    }
    Ok(ItemSet::from_ids(ids))
}

fn write_items<W: Write>(w: &mut W, items: &ItemSet) -> Result<()> {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(w, " ")?;
        }
        write!(w, "{item}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn fimi_roundtrip() {
        let txs = vec![set(&[1, 2, 3]), set(&[5]), set(&[2, 9])];
        let mut buf = Vec::new();
        write_fimi(&mut buf, &txs).unwrap();
        let back = read_fimi(&buf[..]).unwrap();
        assert_eq!(back, txs);
    }

    #[test]
    fn fimi_skips_comments_and_blanks() {
        let input = b"# header\n\n1 2\n  \n3\n";
        let txs = read_fimi(&input[..]).unwrap();
        assert_eq!(txs, vec![set(&[1, 2]), set(&[3])]);
    }

    #[test]
    fn fimi_rejects_garbage() {
        let input = b"1 2\n3 x 4\n";
        let err = read_fimi(&input[..]).unwrap_err();
        match err {
            Error::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains('x'));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn timed_roundtrip() {
        let db = SegmentedDb::from_unit_itemsets(vec![
            vec![set(&[1, 2])],
            vec![],
            vec![set(&[3]), set(&[1, 3])],
        ]);
        let mut buf = Vec::new();
        write_timed(&mut buf, &db).unwrap();
        let back = read_timed(&buf[..]).unwrap();
        // Unit 1 is empty and unwritten, so the roundtrip keeps 3 units
        // because unit 2 appears; transactions must match.
        assert_eq!(back.num_units(), 3);
        assert_eq!(back.unit(0), db.unit(0));
        assert_eq!(back.unit(1), db.unit(1));
        assert_eq!(back.unit(2), db.unit(2));
    }

    #[test]
    fn timed_rejects_missing_separator() {
        let err = read_timed(&b"0 1 2\n"[..]).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
    }

    #[test]
    fn timed_rejects_bad_unit() {
        let err = read_timed(&b"abc | 1 2\n"[..]).unwrap_err();
        match err {
            Error::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("abc"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn segment_evenly_distributes_remainder() {
        let txs: Vec<ItemSet> = (0..10u32).map(|i| set(&[i])).collect();
        let db = segment_evenly(txs, 3);
        assert_eq!(db.num_units(), 3);
        assert_eq!(db.unit(0).len(), 4);
        assert_eq!(db.unit(1).len(), 3);
        assert_eq!(db.unit(2).len(), 3);
        // Order preserved.
        assert_eq!(db.unit(0)[0], set(&[0]));
        assert_eq!(db.unit(2)[2], set(&[9]));
    }

    #[test]
    fn segment_evenly_more_units_than_transactions() {
        let db = segment_evenly(vec![set(&[1])], 4);
        assert_eq!(db.num_units(), 4);
        assert_eq!(db.num_transactions(), 1);
        assert_eq!(db.unit(0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "num_units must be positive")]
    fn segment_evenly_zero_units_panics() {
        let _ = segment_evenly(Vec::new(), 0);
    }
}
