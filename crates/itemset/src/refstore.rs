//! Flat, `Vec`-backed stores keyed by small dense integers.
//!
//! The mining kernels spend their time in maps whose keys are interned
//! item ids — dense `u32`s handed out sequentially by
//! [`Vocabulary`](crate::Vocabulary) (and by every data generator and
//! test in the workspace). Hashing such keys buys nothing: a flat
//! `Vec` indexed by the key itself is a single predictable load where a
//! `HashMap` is a hash, a probe sequence, and a branch per probe. These
//! stores make that trade explicit, in the spirit of aries'
//! `RefMap`/`IterableRefSet`:
//!
//! * [`RefMap`] — `Vec<Option<V>>` keyed by `usize`; O(1) get/insert,
//!   grows to the largest key touched.
//! * [`IterableRefSet`] — a membership bitmap plus an insertion-order
//!   member list, so iteration and clearing cost O(members), not
//!   O(universe).
//! * [`RefCounter`] — dense `u64` counters with a touched-key list;
//!   built for the per-unit level-1 scan, where the same buffer is
//!   cleared and refilled once per time unit.
//!
//! All three are panic-free (audited under A1/A3): no indexing, no
//! division, saturating counter arithmetic. Keys are the caller's
//! responsibility to keep *dense*: memory is proportional to the
//! largest key, which is why the counting kernels guard with a
//! density check before choosing a flat store over a hash map.

/// A map from small dense `usize` keys to values, backed by a flat
/// `Vec<Option<V>>`.
#[derive(Clone, Debug, Default)]
pub struct RefMap<V> {
    slots: Vec<Option<V>>,
}

impl<V> RefMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        RefMap { slots: Vec::new() }
    }

    /// An empty map with room for keys `0..capacity` preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(capacity, || None);
        RefMap { slots }
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: usize, value: V) -> Option<V> {
        if self.slots.len() <= key {
            self.slots.resize_with(key.saturating_add(1), || None);
        }
        self.slots.get_mut(key).and_then(|slot| slot.replace(value))
    }

    /// The value at `key`, if present.
    #[inline]
    pub fn get(&self, key: usize) -> Option<&V> {
        self.slots.get(key).and_then(Option::as_ref)
    }

    /// Mutable access to the value at `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: usize) -> Option<&mut V> {
        self.slots.get_mut(key).and_then(Option::as_mut)
    }

    /// Whether `key` has a value.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        self.slots.get(key).is_some_and(Option::is_some)
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: usize) -> Option<V> {
        self.slots.get_mut(key).and_then(Option::take)
    }

    /// Iterates `(key, &value)` over present entries in key order.
    ///
    /// Costs O(largest key); prefer [`IterableRefSet`] /
    /// [`RefCounter`] when iteration is hot.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> {
        self.slots.iter().enumerate().filter_map(|(k, v)| v.as_ref().map(|v| (k, v)))
    }

    /// Number of slots allocated (largest key touched + 1).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A set of small dense `usize` keys with O(members) iteration and
/// clearing.
///
/// Extends the flat membership bitmap with a vector of the members in
/// insertion order — slightly slower insertion (the bitmap must be
/// queried for duplicates), much faster iteration and reset.
#[derive(Clone, Debug, Default)]
pub struct IterableRefSet {
    present: Vec<bool>,
    members: Vec<usize>,
}

impl IterableRefSet {
    /// An empty set.
    pub fn new() -> Self {
        IterableRefSet::default()
    }

    /// Inserts `key`; returns whether it was newly added.
    pub fn insert(&mut self, key: usize) -> bool {
        if self.present.len() <= key {
            self.present.resize(key.saturating_add(1), false);
        }
        match self.present.get_mut(key) {
            Some(slot) if !*slot => {
                *slot = true;
                self.members.push(key);
                true
            }
            _ => false,
        }
    }

    /// Whether `key` is a member.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        self.present.get(key).copied().unwrap_or(false)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().copied()
    }

    /// Empties the set in O(members), keeping allocations.
    pub fn clear(&mut self) {
        for &m in &self.members {
            if let Some(slot) = self.present.get_mut(m) {
                *slot = false;
            }
        }
        self.members.clear();
    }
}

impl FromIterator<usize> for IterableRefSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut set = IterableRefSet::new();
        for k in iter {
            set.insert(k);
        }
        set
    }
}

/// Dense `u64` counters over small `usize` keys, with a touched-key
/// list so reading the non-zero entries and resetting cost O(touched).
///
/// This is the level-1 scan's working store: one `add` per item
/// occurrence, one `clear` per time unit, allocations reused across
/// units.
#[derive(Clone, Debug, Default)]
pub struct RefCounter {
    counts: Vec<u64>,
    touched: Vec<usize>,
}

impl RefCounter {
    /// An empty counter.
    pub fn new() -> Self {
        RefCounter::default()
    }

    /// Adds `n` to the counter at `key` (saturating).
    pub fn add(&mut self, key: usize, n: u64) {
        if self.counts.len() <= key {
            self.counts.resize(key.saturating_add(1), 0);
        }
        if let Some(slot) = self.counts.get_mut(key) {
            if *slot == 0 {
                self.touched.push(key);
            }
            *slot = slot.saturating_add(n);
        }
    }

    /// The count at `key` (0 when never touched).
    #[inline]
    pub fn get(&self, key: usize) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of keys with a non-zero count.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether no key has been counted.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Iterates `(key, count)` over touched keys in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.touched.iter().map(|&k| (k, self.get(k)))
    }

    /// The touched keys, sorted ascending.
    pub fn keys_sorted(&self) -> Vec<usize> {
        let mut keys = self.touched.clone();
        keys.sort_unstable();
        keys
    }

    /// Zeroes every touched counter in O(touched), keeping allocations.
    pub fn clear(&mut self) {
        for &k in &self.touched {
            if let Some(slot) = self.counts.get_mut(k) {
                *slot = 0;
            }
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refmap_insert_get_remove() {
        let mut m: RefMap<&str> = RefMap::new();
        assert!(m.get(3).is_none());
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(3, "THREE"), Some("three"));
        assert_eq!(m.get(3), Some(&"THREE"));
        assert!(m.contains(3));
        assert!(!m.contains(2));
        assert_eq!(m.remove(3), Some("THREE"));
        assert!(m.get(3).is_none());
        assert_eq!(m.remove(100), None);
    }

    #[test]
    fn refmap_iter_and_capacity() {
        let mut m: RefMap<u64> = RefMap::with_capacity(4);
        m.insert(9, 7);
        if let Some(v) = m.get_mut(9) {
            *v += 1;
        }
        assert_eq!(m.get(9), Some(&8));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(9, &8)]);
        assert!(m.capacity() >= 10);
    }

    #[test]
    fn iterable_refset_tracks_members() {
        let mut s = IterableRefSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert!(s.contains(5) && s.contains(1) && !s.contains(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 1]);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(5));
        assert!(s.insert(5));
    }

    #[test]
    fn iterable_refset_from_iterator() {
        let s: IterableRefSet = [2usize, 4, 2, 0].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4, 0]);
    }

    #[test]
    fn refcounter_counts_and_clears() {
        let mut c = RefCounter::new();
        c.add(7, 1);
        c.add(7, 2);
        c.add(0, 1);
        assert_eq!(c.get(7), 3);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys_sorted(), vec![0, 7]);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(7, 3), (0, 1)]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(7), 0);
        c.add(7, 4);
        assert_eq!(c.get(7), 4);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn refcounter_saturates() {
        let mut c = RefCounter::new();
        c.add(1, u64::MAX);
        c.add(1, 5);
        assert_eq!(c.get(1), u64::MAX);
    }
}
