//! Fixed-width table output for experiment series.

use std::time::Duration;

use crate::Measurement;

/// One row of a sweep table: the x-axis value plus the measurements of
/// each algorithm at that point.
pub struct SeriesRow {
    /// The swept parameter's value at this row.
    pub x: String,
    /// Measurements, one per algorithm column.
    pub measurements: Vec<Measurement>,
}

/// Formats a duration in the human scale benchmarking output wants.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{:.0}µs", secs * 1e6)
    }
}

/// Prints a sweep table:
///
/// ```text
/// == EXP-1: runtime vs number of time units ==
/// units      SEQUENTIAL   INTERLEAVED  speedup  rules
/// 16         1.23s        0.41s        3.0x     210
/// ```
///
/// The speedup column divides the first column's runtime by the last's.
/// Returns the formatted text (also printed to stdout by the binary).
pub fn print_series(title: &str, x_label: &str, rows: &[SeriesRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    if rows.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    // Header.
    out.push_str(&format!("{x_label:<12}"));
    for m in &rows[0].measurements {
        out.push_str(&format!("{:<16}", m.label));
    }
    if rows[0].measurements.len() >= 2 {
        out.push_str(&format!("{:<9}", "speedup"));
    }
    out.push_str("rules\n");
    // Rows.
    for row in rows {
        out.push_str(&format!("{:<12}", row.x));
        for m in &row.measurements {
            out.push_str(&format!("{:<16}", format_duration(m.runtime)));
        }
        if row.measurements.len() >= 2 {
            let first = row.measurements[0].runtime.as_secs_f64();
            let last = row.measurements[row.measurements.len() - 1].runtime.as_secs_f64();
            let speedup = if last > 0.0 { first / last } else { f64::INFINITY };
            out.push_str(&format!("{:<9}", format!("{speedup:.2}x")));
        }
        out.push_str(&format!("{}\n", row.measurements[0].rules));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use car_core::MiningStats;

    fn m(label: &str, ms: u64, rules: usize) -> Measurement {
        Measurement {
            label: label.into(),
            runtime: Duration::from_millis(ms),
            rules,
            stats: MiningStats::default(),
        }
    }

    #[test]
    fn formats_durations() {
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(format_duration(Duration::from_micros(7)), "7µs");
    }

    #[test]
    fn renders_table_with_speedup() {
        let rows = vec![
            SeriesRow {
                x: "16".into(),
                measurements: vec![m("SEQ", 100, 5), m("INT", 25, 5)],
            },
            SeriesRow {
                x: "32".into(),
                measurements: vec![m("SEQ", 300, 9), m("INT", 60, 9)],
            },
        ];
        let text = print_series("EXP-1: test", "units", &rows);
        assert!(text.contains("== EXP-1: test =="));
        assert!(text.contains("SEQ"));
        assert!(text.contains("4.00x"), "{text}");
        assert!(text.contains("5.00x"), "{text}");
        assert!(text.lines().count() == 4);
    }

    #[test]
    fn empty_rows() {
        let text = print_series("t", "x", &[]);
        assert!(text.contains("(no data)"));
    }
}
