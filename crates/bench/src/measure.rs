//! Timed mining runs.

use std::time::{Duration, Instant};

use car_core::{Algorithm, CyclicRuleMiner, MiningConfig, MiningStats};
use car_itemset::SegmentedDb;

/// The outcome of one timed mining run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Label (typically the algorithm name).
    pub label: String,
    /// End-to-end wall-clock runtime.
    pub runtime: Duration,
    /// Number of cyclic rules found.
    pub rules: usize,
    /// The miner's work counters.
    pub stats: MiningStats,
}

/// Runs `algorithm` once over `db` and times it.
///
/// # Panics
///
/// Panics if the configuration is invalid for the database — scenarios
/// are expected to be pre-validated.
pub fn measure(
    db: &SegmentedDb,
    config: &MiningConfig,
    algorithm: Algorithm,
) -> Measurement {
    let label = match algorithm {
        Algorithm::Sequential => "SEQUENTIAL".to_string(),
        Algorithm::Interleaved(opts) => {
            let mut name = "INTERLEAVED".to_string();
            if !opts.cycle_pruning {
                name.push_str("-prune");
            }
            if !opts.cycle_skipping {
                name.push_str("-skip");
            }
            if !opts.cycle_elimination {
                name.push_str("-elim");
            }
            name
        }
    };
    measure_named(label, db, config, algorithm)
}

/// Like [`measure`] with an explicit label.
pub fn measure_named(
    label: impl Into<String>,
    db: &SegmentedDb,
    config: &MiningConfig,
    algorithm: Algorithm,
) -> Measurement {
    let miner = CyclicRuleMiner::new(*config, algorithm);
    let start = Instant::now();
    let outcome = miner.mine(db).expect("scenario must be valid");
    let runtime = start.elapsed();
    Measurement {
        label: label.into(),
        runtime,
        rules: outcome.rules.len(),
        stats: outcome.stats,
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::{scenario, ScenarioParams};
    use car_core::InterleavedOptions;

    fn tiny() -> crate::Scenario {
        let mut p = ScenarioParams::default();
        p.units = 8;
        p.tx_per_unit = 40;
        p.items = 60;
        p.l_max = 4;
        p.min_support = 0.2;
        scenario("tiny", p)
    }

    #[test]
    fn measures_both_algorithms() {
        let s = tiny();
        let seq = measure(&s.db, &s.config, Algorithm::Sequential);
        let int = measure(&s.db, &s.config, Algorithm::interleaved());
        assert_eq!(seq.label, "SEQUENTIAL");
        assert_eq!(int.label, "INTERLEAVED");
        assert_eq!(seq.rules, int.rules, "algorithms must agree");
        assert!(seq.runtime > Duration::ZERO);
    }

    #[test]
    fn ablation_labels() {
        let s = tiny();
        let m = measure(
            &s.db,
            &s.config,
            Algorithm::Interleaved(InterleavedOptions::all().without_skipping()),
        );
        assert_eq!(m.label, "INTERLEAVED-skip");
        let m =
            measure(&s.db, &s.config, Algorithm::Interleaved(InterleavedOptions::none()));
        assert_eq!(m.label, "INTERLEAVED-prune-skip-elim");
    }
}
