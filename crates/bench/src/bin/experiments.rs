//! Regenerates the evaluation of the ICDE'98 cyclic association rules
//! paper: every figure/table of DESIGN.md's experiment index (EXP-1 …
//! EXP-8) as a printed series.
//!
//! ```text
//! experiments                 # run everything at base scale
//! experiments --exp 2         # one experiment
//! experiments --scale small   # quick pass (CI-sized)
//! ```

#![allow(clippy::field_reassign_with_default)]

use car_bench::{
    measure, measure_named, print_series, scenario, ScenarioParams, SeriesRow,
};
use car_core::{Algorithm, CountStrategy, InterleavedOptions};

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Small,
    Base,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp: Option<u32> = None;
    let mut scale = Scale::Base;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                exp = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--scale" => {
                scale = match args.get(i + 1).map(String::as_str) {
                    Some("small") => Scale::Small,
                    Some("base") | None => Scale::Base,
                    Some(other) => {
                        eprintln!("unknown scale `{other}` (small|base)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: experiments [--exp N] [--scale small|base]");
                std::process::exit(2);
            }
        }
    }

    let run = |n: u32| exp.is_none() || exp == Some(n);
    if run(1) {
        exp1_time_units(scale);
    }
    if run(2) {
        exp2_min_support(scale);
    }
    if run(3) {
        exp3_trans_per_unit(scale);
    }
    if run(4) {
        exp4_cycle_length(scale);
    }
    if run(5) {
        exp5_num_items(scale);
    }
    if run(6) {
        exp6_ablation(scale);
    }
    if run(7) {
        exp7_work_metrics(scale);
    }
    if run(8) {
        exp8_counting_engines(scale);
    }
    if run(9) {
        exp9_incremental(scale);
    }
}

fn base_params(scale: Scale) -> ScenarioParams {
    let mut p = ScenarioParams::default();
    if scale == Scale::Small {
        p.units = 16;
        p.tx_per_unit = 100;
        p.l_max = 8;
    }
    p
}

/// Measures SEQUENTIAL and INTERLEAVED on one scenario.
fn seq_vs_int(label: &str, params: ScenarioParams) -> SeriesRow {
    let s = scenario(label, params);
    let seq = measure(&s.db, &s.config, Algorithm::Sequential);
    let int = measure(&s.db, &s.config, Algorithm::interleaved());
    assert_eq!(seq.rules, int.rules, "algorithms disagreed on {label}");
    SeriesRow { x: label.to_string(), measurements: vec![seq, int] }
}

/// EXP-1: runtime vs number of time units.
fn exp1_time_units(scale: Scale) {
    let units: &[usize] = match scale {
        Scale::Small => &[8, 16, 32],
        Scale::Base => &[16, 32, 64, 128],
    };
    let rows: Vec<SeriesRow> = units
        .iter()
        .map(|&u| {
            let mut p = base_params(scale);
            p.units = u;
            // A cycle must be observable at least twice to be meaningful;
            // l_max == units would make every one-off rule "cyclic".
            p.l_max = p.l_max.min(u as u32 / 2);
            seq_vs_int(&u.to_string(), p)
        })
        .collect();
    print!("{}", print_series("EXP-1: runtime vs number of time units", "units", &rows));
    println!();
}

/// EXP-2: runtime vs minimum support.
fn exp2_min_support(scale: Scale) {
    // Fractions are chosen so the per-unit absolute threshold stays >= 3
    // transactions: thresholds near 1 make *every* itemset large, which
    // measures degenerate-input behaviour rather than the algorithms.
    let supports: [f64; 5] = match scale {
        Scale::Small => [0.03, 0.05, 0.08, 0.12, 0.2],
        Scale::Base => [0.005, 0.01, 0.02, 0.03, 0.05],
    };
    let rows: Vec<SeriesRow> = supports
        .iter()
        .map(|&ms| {
            let mut p = base_params(scale);
            p.min_support = ms;
            seq_vs_int(&format!("{:.1}%", ms * 100.0), p)
        })
        .collect();
    print!("{}", print_series("EXP-2: runtime vs minimum support", "minsup", &rows));
    println!();
}

/// EXP-3: runtime vs transactions per unit.
fn exp3_trans_per_unit(scale: Scale) {
    let sizes: &[usize] = match scale {
        Scale::Small => &[100, 200, 400],
        Scale::Base => &[250, 500, 1000, 2000],
    };
    let rows: Vec<SeriesRow> = sizes
        .iter()
        .map(|&d| {
            let mut p = base_params(scale);
            p.tx_per_unit = d;
            // Keep the absolute per-unit threshold constant across the
            // sweep (15 transactions at the base 1000/unit), as the
            // paper's generator-scaling experiments do.
            p.min_support = 15.0 / d as f64;
            seq_vs_int(&d.to_string(), p)
        })
        .collect();
    print!(
        "{}",
        print_series("EXP-3: runtime vs transactions per unit", "tx/unit", &rows)
    );
    println!();
}

/// EXP-4: runtime vs maximum cycle length.
fn exp4_cycle_length(scale: Scale) {
    let lmaxes: &[u32] = match scale {
        Scale::Small => &[2, 4, 8],
        Scale::Base => &[4, 8, 16, 24, 32],
    };
    let rows: Vec<SeriesRow> = lmaxes
        .iter()
        .map(|&l| {
            let mut p = base_params(scale);
            p.l_max = l;
            // Keep the window several cycles long so long cycles remain
            // falsifiable rather than trivially satisfied.
            p.units = p.units.max(4 * l as usize);
            seq_vs_int(&l.to_string(), p)
        })
        .collect();
    print!("{}", print_series("EXP-4: runtime vs maximum cycle length", "l_max", &rows));
    println!();
}

/// EXP-5: runtime vs number of items.
fn exp5_num_items(scale: Scale) {
    let items: &[u32] = match scale {
        Scale::Small => &[100, 250, 500],
        Scale::Base => &[100, 250, 500, 1000, 2000],
    };
    let rows: Vec<SeriesRow> = items
        .iter()
        .map(|&n| {
            let mut p = base_params(scale);
            p.items = n;
            seq_vs_int(&n.to_string(), p)
        })
        .collect();
    print!("{}", print_series("EXP-5: runtime vs number of items", "items", &rows));
    println!();
}

/// EXP-6: contribution of each INTERLEAVED optimization.
fn exp6_ablation(scale: Scale) {
    let s = scenario("ablation", base_params(scale));
    let configs = [
        ("INTERLEAVED (all)", Algorithm::Interleaved(InterleavedOptions::all())),
        (
            "  without pruning",
            Algorithm::Interleaved(InterleavedOptions::all().without_pruning()),
        ),
        (
            "  without skipping",
            Algorithm::Interleaved(InterleavedOptions::all().without_skipping()),
        ),
        (
            "  without elimination",
            Algorithm::Interleaved(InterleavedOptions::all().without_elimination()),
        ),
        ("  none (all off)", Algorithm::Interleaved(InterleavedOptions::none())),
        ("SEQUENTIAL", Algorithm::Sequential),
    ];
    println!("== EXP-6: optimization ablation (base workload) ==");
    println!(
        "{:<24}{:<12}{:<20}{:<16}{:<8}",
        "variant", "runtime", "support counts", "skipped", "rules"
    );
    let mut expected_rules = None;
    for (label, algorithm) in configs {
        let m = measure_named(label, &s.db, &s.config, algorithm);
        println!(
            "{:<24}{:<12}{:<20}{:<16}{:<8}",
            m.label,
            car_bench::format_duration(m.runtime),
            m.stats.support_computations,
            m.stats.skipped_counts,
            m.rules,
        );
        if let Some(expected) = expected_rules {
            assert_eq!(m.rules, expected, "ablation changed results");
        } else {
            expected_rules = Some(m.rules);
        }
    }
    println!();
}

/// EXP-7: work metrics of INTERLEAVED vs SEQUENTIAL.
fn exp7_work_metrics(scale: Scale) {
    let s = scenario("metrics", base_params(scale));
    let int = measure(&s.db, &s.config, Algorithm::interleaved());
    let seq = measure(&s.db, &s.config, Algorithm::Sequential);
    println!("== EXP-7: work metrics (base workload) ==");
    println!("{:<28}{:<16}{:<16}", "metric", "INTERLEAVED", "SEQUENTIAL");
    let rows: [(&str, u64, u64); 6] = [
        (
            "support computations",
            int.stats.support_computations,
            seq.stats.support_computations,
        ),
        ("skipped counts", int.stats.skipped_counts, seq.stats.skipped_counts),
        (
            "unit scans skipped",
            int.stats.skipped_unit_scans,
            seq.stats.skipped_unit_scans,
        ),
        (
            "candidates pruned (cycles)",
            int.stats.candidates_pruned_by_cycles,
            seq.stats.candidates_pruned_by_cycles,
        ),
        ("cycles eliminated", int.stats.cycles_eliminated, seq.stats.cycles_eliminated),
        ("rules checked", int.stats.rules_checked, seq.stats.rules_checked),
    ];
    for (label, i, q) in rows {
        println!("{label:<28}{i:<16}{q:<16}");
    }
    println!(
        "{:<28}{:<16}{:<16}",
        "runtime",
        car_bench::format_duration(int.runtime),
        car_bench::format_duration(seq.runtime)
    );
    println!("cyclic itemsets (interleaved phase 1): {}", int.stats.cyclic_itemsets);
    println!("cyclic rules: {}", int.rules);
    assert_eq!(int.rules, seq.rules);
    println!();
}

/// EXP-8: counting-engine comparison (hash map vs hash tree) on short
/// and long transactions.
///
/// Measured directly on the counting primitive (as the fig8 Criterion
/// bench does) rather than on a full mining run: long dense transactions
/// with a permissive threshold make the *lattice* explode, which would
/// measure the workload rather than the engines.
fn exp8_counting_engines(scale: Scale) {
    use car_apriori::count_candidates;
    use car_itemset::ItemSet;

    println!("== EXP-8: counting engines ==");
    println!(
        "{:<10}{:<4}{:<8}{:<14}{:<14}{:<14}{:<14}",
        "avg tx", "k", "cands", "HashMap", "HashTree", "Vertical", "Auto"
    );
    let n_tx = match scale {
        Scale::Small => 2_000usize,
        Scale::Base => 10_000,
    };
    // Rows cover both regimes: many candidates (subset enumeration with a
    // hash map wins) and few candidates over long transactions (the hash
    // tree's bucket pruning wins by an order of magnitude).
    for (avg_len, k, top) in
        [(5.0f64, 2usize, 48usize), (20.0, 2, 48), (20.0, 3, 48), (40.0, 3, 12)]
    {
        // Generate transactions, then count a fixed candidate set built
        // from the most frequent items (the realistic L2 shape).
        let mut p = base_params(scale);
        p.avg_tx_len = avg_len;
        p.units = 1;
        p.tx_per_unit = n_tx;
        p.l_max = 1;
        p.l_min = 1;
        let s = scenario("exp8", p);
        let transactions = s.db.unit(0);
        let mut counts = std::collections::HashMap::new();
        for t in transactions {
            for i in t.iter() {
                *counts.entry(i).or_insert(0u32) += 1;
            }
        }
        let mut top_counts: Vec<_> = counts.into_iter().collect();
        top_counts.sort_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        let items: Vec<_> = top_counts.into_iter().take(top).map(|(i, _)| i).collect();
        let universe = ItemSet::from_items(items.iter().copied());
        let mut candidates: Vec<ItemSet> = universe.k_subsets(k).collect();
        candidates.sort_unstable();

        let mut cols = Vec::new();
        let mut reference: Option<Vec<u64>> = None;
        for strategy in [
            CountStrategy::HashMap,
            CountStrategy::HashTree,
            CountStrategy::Vertical,
            CountStrategy::Auto,
        ] {
            let start = std::time::Instant::now();
            let result = count_candidates(&candidates, transactions, strategy);
            cols.push(car_bench::format_duration(start.elapsed()));
            match &reference {
                None => reference = Some(result),
                Some(expected) => assert_eq!(expected, &result, "engines disagreed"),
            }
        }
        println!(
            "{:<10}{:<4}{:<8}{:<14}{:<14}{:<14}{:<14}",
            avg_len,
            k,
            candidates.len(),
            cols[0],
            cols[1],
            cols[2],
            cols[3]
        );
    }
    println!();
}

/// EXP-9 (extension): maintaining results as units arrive — incremental
/// miner vs re-mining the growing prefix from scratch after every unit.
fn exp9_incremental(scale: Scale) {
    use car_core::incremental::IncrementalMiner;
    use car_core::sequential::mine_sequential;
    use car_itemset::SegmentedDb;
    use std::time::Instant;

    let mut p = base_params(scale);
    if scale == Scale::Base {
        p.units = 48;
        p.tx_per_unit = 400;
    }
    p.l_max = p.l_max.min(p.units as u32 / 4).max(p.l_min);
    let s = scenario("incremental", p);
    let n = s.db.num_units();

    // Incremental: ingest each unit once; query after every unit.
    let start = Instant::now();
    let mut miner = IncrementalMiner::new(s.config);
    let mut incremental_rules = Vec::new();
    for u in 0..n {
        miner.push_unit(s.db.unit(u));
        if miner.num_units() >= s.config.cycle_bounds.l_max() as usize {
            incremental_rules = miner.current_rules().expect("window validated");
        }
    }
    let incremental_time = start.elapsed();

    // Batch: after every unit, re-mine the whole prefix.
    let start = Instant::now();
    let mut batch_rules = Vec::new();
    for end in s.config.cycle_bounds.l_max() as usize..=n {
        let prefix = SegmentedDb::from_unit_itemsets(
            (0..end).map(|u| s.db.unit(u).to_vec()).collect(),
        );
        batch_rules =
            mine_sequential(&prefix, &s.config).expect("window validated").rules;
    }
    let batch_time = start.elapsed();

    assert_eq!(incremental_rules, batch_rules, "incremental must match batch");
    println!("== EXP-9: maintaining results as units arrive ==");
    println!("{:<28}{:<12}{:<10}", "strategy", "total time", "rules");
    println!(
        "{:<28}{:<12}{:<10}",
        "incremental miner",
        car_bench::format_duration(incremental_time),
        incremental_rules.len()
    );
    println!(
        "{:<28}{:<12}{:<10}",
        "re-mine prefix each unit",
        car_bench::format_duration(batch_time),
        batch_rules.len()
    );
    println!(
        "speedup: {:.2}x",
        batch_time.as_secs_f64() / incremental_time.as_secs_f64()
    );
    println!();
}
