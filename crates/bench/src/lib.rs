//! # car-bench
//!
//! Experiment harness reproducing the evaluation of the ICDE'98 cyclic
//! association rules paper. The original figures plot the runtime of the
//! SEQUENTIAL and INTERLEAVED algorithms over synthetic Quest-style data
//! as one workload parameter at a time is swept; this crate provides
//!
//! * [`Scenario`] construction for the base workload and each sweep
//!   (DESIGN.md, experiment index EXP-1 … EXP-8),
//! * [`measure`] — one timed mining run with its work counters, and
//! * [`print_series`] — fixed-width tables in the shape of the paper's
//!   figure data.
//!
//! The `experiments` binary drives all sweeps; the Criterion benches
//! under `benches/` pin each figure as a regression benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod measure;
mod scenario;
mod table;

pub use measure::{measure, measure_named, Measurement};
pub use scenario::{base_cyclic_config, scenario, Scenario, ScenarioParams};
pub use table::{format_duration, print_series, SeriesRow};
