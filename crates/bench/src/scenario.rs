//! Workload construction for the experiment suite.

use car_core::MiningConfig;
use car_datagen::{generate_cyclic, CyclicConfig, QuestConfig};
use car_itemset::SegmentedDb;

/// Parameters of one experiment scenario; `Default` is the base workload
/// of DESIGN.md (`T5.I3.N500`, 64 units × 1000 transactions, 20 planted
/// cyclic patterns, `minsup` 1.5%, `minconf` 60%, cycles in `[2, 16]`).
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Number of time units.
    pub units: usize,
    /// Transactions per unit.
    pub tx_per_unit: usize,
    /// Item universe size.
    pub items: u32,
    /// Average transaction length.
    pub avg_tx_len: f64,
    /// Planted cyclic patterns.
    pub cyclic_patterns: usize,
    /// Per-unit minimum support fraction.
    pub min_support: f64,
    /// Per-unit minimum confidence.
    pub min_confidence: f64,
    /// Minimum cycle length.
    pub l_min: u32,
    /// Maximum cycle length.
    pub l_max: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            units: 64,
            tx_per_unit: 1000,
            items: 500,
            avg_tx_len: 5.0,
            cyclic_patterns: 20,
            min_support: 0.015,
            min_confidence: 0.6,
            l_min: 2,
            l_max: 16,
            seed: 0x1998,
        }
    }
}

/// A ready-to-mine workload: the generated database plus the mining
/// configuration that goes with it.
pub struct Scenario {
    /// Human-readable label (used by tables and bench ids).
    pub label: String,
    /// The time-segmented database.
    pub db: SegmentedDb,
    /// The mining configuration.
    pub config: MiningConfig,
    /// How many cyclic patterns were planted.
    pub planted: usize,
}

/// The data-generator configuration corresponding to `params`.
pub fn base_cyclic_config(params: &ScenarioParams) -> CyclicConfig {
    CyclicConfig {
        quest: QuestConfig::default()
            .with_num_items(params.items)
            .with_avg_transaction_len(params.avg_tx_len),
        num_units: params.units,
        transactions_per_unit: params.tx_per_unit,
        num_cyclic_patterns: params.cyclic_patterns,
        cyclic_pattern_len: 2,
        cycle_length_range: (
            params.l_min.max(2),
            params.l_max.min(12).max(params.l_min.max(2)),
        ),
        boost: 0.8,
        max_planted_per_transaction: 2,
    }
}

/// Builds a scenario: generates the data and the matching configuration.
///
/// # Panics
///
/// Panics if the parameters produce an invalid mining configuration
/// (e.g. `l_max > units`).
pub fn scenario(label: impl Into<String>, params: ScenarioParams) -> Scenario {
    let data = generate_cyclic(&base_cyclic_config(&params), params.seed);
    let config = MiningConfig::builder()
        .min_support_fraction(params.min_support)
        .min_confidence(params.min_confidence)
        .cycle_bounds(params.l_min, params.l_max)
        .build()
        .expect("scenario parameters must be valid");
    config
        .validate_for(data.db.num_units())
        .expect("scenario window must fit cycle bounds");
    Scenario { label: label.into(), db: data.db, config, planted: data.planted.len() }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_consistent() {
        let mut p = ScenarioParams::default();
        // Shrink for test speed.
        p.units = 8;
        p.tx_per_unit = 50;
        p.l_max = 8;
        let s = scenario("base", p);
        assert_eq!(s.db.num_units(), 8);
        assert_eq!(s.db.num_transactions(), 400);
        assert_eq!(s.label, "base");
        assert!(s.planted > 0);
        assert!(s.config.validate_for(8).is_ok());
    }

    #[test]
    #[should_panic(expected = "window must fit")]
    fn oversized_cycle_bound_panics() {
        let mut p = ScenarioParams::default();
        p.units = 4;
        p.tx_per_unit = 10;
        p.l_max = 16;
        let _ = scenario("bad", p);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut p = ScenarioParams::default();
        p.units = 6;
        p.tx_per_unit = 20;
        p.l_max = 6;
        let a = scenario("a", p);
        let b = scenario("b", p);
        assert_eq!(a.db, b.db);
    }
}
