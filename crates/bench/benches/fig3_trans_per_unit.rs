//! EXP-3 (paper figure: runtime vs transactions per time unit).
//!
//! The paper's claim: runtime grows roughly linearly in the per-unit
//! database size for both algorithms; the INTERLEAVED advantage is a
//! near-constant factor because skipping removes whole unit scans.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::{Algorithm, CyclicRuleMiner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn params(tx_per_unit: usize) -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = 16;
    p.l_max = 4;
    p.tx_per_unit = tx_per_unit;
    p.min_support = 6.0 / tx_per_unit as f64;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_trans_per_unit");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for d in [100usize, 200, 400] {
        let s = scenario(format!("d{d}"), params(d));
        for (name, algorithm) in [
            ("sequential", Algorithm::Sequential),
            ("interleaved", Algorithm::interleaved()),
        ] {
            let miner = CyclicRuleMiner::new(s.config, algorithm);
            group.bench_with_input(BenchmarkId::new(name, d), &s.db, |b, db| {
                b.iter(|| miner.mine(db).expect("valid scenario"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
