//! EXP-5 (paper figure: runtime vs number of items).
//!
//! The paper's claim: a larger item universe dilutes supports (fewer
//! large itemsets per unit), shrinking runtime for both algorithms;
//! INTERLEAVED stays ahead throughout.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::{Algorithm, CyclicRuleMiner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn params(items: u32) -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = 16;
    p.tx_per_unit = 100;
    p.l_max = 4;
    p.items = items;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_num_items");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [250u32, 500, 1000] {
        let s = scenario(format!("n{n}"), params(n));
        for (name, algorithm) in [
            ("sequential", Algorithm::Sequential),
            ("interleaved", Algorithm::interleaved()),
        ] {
            let miner = CyclicRuleMiner::new(s.config, algorithm);
            group.bench_with_input(BenchmarkId::new(name, n), &s.db, |b, db| {
                b.iter(|| miner.mine(db).expect("valid scenario"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
