//! EXP-2 (paper figure: runtime vs minimum support).
//!
//! The paper's claim: lower minimum support inflates the candidate space
//! and both algorithms slow down, but INTERLEAVED degrades more slowly
//! because non-cyclic candidates stop being counted early.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::{Algorithm, CyclicRuleMiner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn params(min_support: f64) -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = 16;
    p.tx_per_unit = 100;
    p.l_max = 4;
    p.min_support = min_support;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_min_support");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, ms) in [("3%", 0.03), ("5%", 0.05), ("10%", 0.1)] {
        let s = scenario(label, params(ms));
        for (name, algorithm) in [
            ("sequential", Algorithm::Sequential),
            ("interleaved", Algorithm::interleaved()),
        ] {
            let miner = CyclicRuleMiner::new(s.config, algorithm);
            group.bench_with_input(BenchmarkId::new(name, label), &s.db, |b, db| {
                b.iter(|| miner.mine(db).expect("valid scenario"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
