//! Query fast-path guard.
//!
//! The PR-5 query path has three tiers with sharply different costs,
//! and this bench pins all three at serving scale (256 retained units)
//! so a regression in any tier is visible:
//!
//! - `cold_detect` — full re-detection: rebuild every rule's hold
//!   sequence and re-run cycle detection, the cost every query paid
//!   before online cycle maintenance (escalated-confidence queries
//!   still take this path, now parallelised).
//! - `online_state` — assemble the result from the online per-rule
//!   cycle counts, the cost `query_rules(None)` pays once per ingest.
//! - `warm_cache` — the memoised view: an `Arc` bump, the cost every
//!   repeat query pays between ingests.
//!
//! Expected ordering: `warm_cache` ≪ `online_state` < `cold_detect`.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::window::SlidingWindowMiner;
use car_core::MinConfidence;
use criterion::{criterion_group, criterion_main, Criterion};

fn params() -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = 256;
    p.tx_per_unit = 100;
    // 5% of 100 transactions: keeps the frequent-rule population at a
    // serving-realistic size (hundreds, not hundreds of thousands).
    p.min_support = 0.05;
    p.l_max = 8;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_path");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let s = scenario("query_path", params());
    let mut miner = SlidingWindowMiner::new(s.config, s.db.num_units())
        .expect("scenario window fits cycle bounds");
    for (_, unit) in s.db.iter_units() {
        miner.push_unit(unit);
    }
    // A hair above the configured threshold: forces the re-detection
    // path while keeping the rule population essentially unchanged, so
    // `cold_detect` measures detection cost, not a smaller workload.
    let q = MinConfidence::new(s.config.min_confidence.value() + 1e-9)
        .expect("escalated confidence stays in range");

    group.bench_with_input("cold_detect", &miner, |b, m| {
        b.iter(|| m.query_rules(Some(q)).expect("window is full"))
    });
    group.bench_with_input("online_state", &miner, |b, m| {
        b.iter(|| m.assemble_view().expect("window is full"))
    });
    // Prime the memo once so every measured iteration is a warm hit.
    miner.current_rules().expect("window is full");
    group.bench_with_input("warm_cache", &miner, |b, m| {
        b.iter(|| m.current_rules().expect("window is full"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
