//! Observability overhead guard.
//!
//! The car-obs instrumentation inside the mining kernels must be free
//! when disarmed: with `CAR_LOG` unset and spans disabled, each span
//! site costs one relaxed atomic load and each run one counter flush.
//! This bench pins INTERLEAVED mining in both states so a regression in
//! the disarmed path (the production default) shows up as a spread
//! between `spans_off` and `spans_on`, and a regression against the
//! pre-instrumentation baseline shows up in `spans_off` itself.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::{Algorithm, CyclicRuleMiner, InterleavedOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn params() -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = 32;
    p.tx_per_unit = 100;
    p.l_max = 4;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let s = scenario("obs_overhead", params());
    let miner =
        CyclicRuleMiner::new(s.config, Algorithm::Interleaved(InterleavedOptions::all()));

    car_obs::set_spans_enabled(false);
    group.bench_with_input("spans_off", &s.db, |b, db| {
        b.iter(|| miner.mine(db).expect("valid scenario"))
    });

    car_obs::set_spans_enabled(true);
    group.bench_with_input("spans_on", &s.db, |b, db| {
        b.iter(|| miner.mine(db).expect("valid scenario"))
    });
    car_obs::set_spans_enabled(false);

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
