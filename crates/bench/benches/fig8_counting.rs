//! EXP-8 (substrate table: support-counting engines).
//!
//! Compares the subset-enumeration hash-map counter, the classic
//! Apriori hash tree, and the vertical tid-bitmap kernel on short
//! (T≈5) and long (T≈20) transactions. The hash tree's advantage over
//! the hash map appears once subset enumeration explodes; the vertical
//! kernel side-steps enumeration entirely and should dominate both at
//! this batch size.

use car_apriori::{count_candidates, CountStrategy};
use car_datagen::{QuestConfig, QuestGenerator};
use car_itemset::ItemSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(avg_len: f64) -> (Vec<ItemSet>, Vec<ItemSet>) {
    let mut rng = StdRng::seed_from_u64(8);
    let quest = QuestGenerator::new(
        QuestConfig::default().with_num_items(300).with_avg_transaction_len(avg_len),
        &mut rng,
    );
    let transactions = quest.gen_transactions(&mut rng, 2000);
    // Candidate pairs drawn from the most frequent items.
    let mut counts = std::collections::HashMap::new();
    for t in &transactions {
        for i in t.iter() {
            *counts.entry(i).or_insert(0u32) += 1;
        }
    }
    let mut top: Vec<_> = counts.into_iter().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let items: Vec<_> = top.into_iter().take(40).map(|(i, _)| i).collect();
    let mut candidates = Vec::new();
    for (ai, &a) in items.iter().enumerate() {
        for &b in &items[ai + 1..] {
            candidates.push(ItemSet::from_items([a, b]));
        }
    }
    candidates.sort_unstable();
    (candidates, transactions)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_counting");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for avg_len in [5.0f64, 20.0] {
        let (candidates, transactions) = workload(avg_len);
        for strategy in [
            CountStrategy::HashMap,
            CountStrategy::HashTree,
            CountStrategy::Vertical,
            CountStrategy::Auto,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), avg_len as u64),
                &(&candidates, &transactions),
                |b, (cands, txs)| b.iter(|| count_candidates(cands, txs, strategy)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
