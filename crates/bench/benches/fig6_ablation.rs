//! EXP-6 (paper table: contribution of each INTERLEAVED optimization).
//!
//! Benchmarks the full INTERLEAVED algorithm against variants with one
//! technique disabled, plus the everything-off variant and SEQUENTIAL.
//! All variants return identical rules; only the work differs.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::{Algorithm, CyclicRuleMiner, InterleavedOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn params() -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = 32;
    p.tx_per_unit = 100;
    p.l_max = 4;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let s = scenario("ablation", params());
    let variants: [(&str, Algorithm); 6] = [
        ("all", Algorithm::Interleaved(InterleavedOptions::all())),
        (
            "no_pruning",
            Algorithm::Interleaved(InterleavedOptions::all().without_pruning()),
        ),
        (
            "no_skipping",
            Algorithm::Interleaved(InterleavedOptions::all().without_skipping()),
        ),
        (
            "no_elimination",
            Algorithm::Interleaved(InterleavedOptions::all().without_elimination()),
        ),
        ("none", Algorithm::Interleaved(InterleavedOptions::none())),
        ("sequential", Algorithm::Sequential),
    ];
    for (name, algorithm) in variants {
        let miner = CyclicRuleMiner::new(s.config, algorithm);
        group.bench_with_input(name, &s.db, |b, db| {
            b.iter(|| miner.mine(db).expect("valid scenario"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
