//! EXP-1 (paper figure: runtime vs number of time units).
//!
//! Benchmarks SEQUENTIAL vs INTERLEAVED as the number of time units
//! grows, at bench-sized workloads. The paper's claim: INTERLEAVED's
//! advantage grows with the number of units, because candidate cycles die
//! early and later units are skipped.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::{Algorithm, CyclicRuleMiner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn params(units: usize) -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = units;
    p.tx_per_unit = 100;
    p.l_max = 4;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_time_units");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for units in [8usize, 16, 32] {
        let s = scenario(format!("u{units}"), params(units));
        for (name, algorithm) in [
            ("sequential", Algorithm::Sequential),
            ("interleaved", Algorithm::interleaved()),
        ] {
            let miner = CyclicRuleMiner::new(s.config, algorithm);
            group.bench_with_input(BenchmarkId::new(name, units), &s.db, |b, db| {
                b.iter(|| miner.mine(db).expect("valid scenario"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
