//! EXP-4 (paper figure: runtime vs maximum cycle length).
//!
//! The paper's claim: a larger `l_max` admits more candidate cycles,
//! weakening skipping/elimination (more units stay on some live cycle),
//! so the INTERLEAVED advantage narrows as `l_max` grows.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::{Algorithm, CyclicRuleMiner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn params(l_max: u32) -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = 32;
    p.tx_per_unit = 100;
    p.l_max = l_max;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_cycle_length");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for l in [2u32, 4, 8] {
        let s = scenario(format!("l{l}"), params(l));
        for (name, algorithm) in [
            ("sequential", Algorithm::Sequential),
            ("interleaved", Algorithm::interleaved()),
        ] {
            let miner = CyclicRuleMiner::new(s.config, algorithm);
            group.bench_with_input(BenchmarkId::new(name, l), &s.db, |b, db| {
                b.iter(|| miner.mine(db).expect("valid scenario"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
