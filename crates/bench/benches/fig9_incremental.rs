//! EXP-9 (extension): incremental maintenance vs batch re-mining.
//!
//! Measures the cost of keeping cyclic rules current as one new time
//! unit arrives: pushing the unit into an `IncrementalMiner` and
//! re-querying, versus re-mining the whole window from scratch.

#![allow(clippy::field_reassign_with_default)]

use car_bench::{scenario, ScenarioParams};
use car_core::incremental::IncrementalMiner;
use car_core::sequential::mine_sequential;
use criterion::{criterion_group, criterion_main, Criterion};

fn params() -> ScenarioParams {
    let mut p = ScenarioParams::default();
    p.units = 24;
    p.tx_per_unit = 100;
    p.l_max = 6;
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_incremental");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let s = scenario("incremental", params());
    let n = s.db.num_units();

    // Pre-ingest all but the last unit; the benchmark measures handling
    // of one arriving unit.
    group.bench_function("incremental_one_unit", |b| {
        b.iter_batched(
            || {
                let mut miner = IncrementalMiner::new(s.config);
                for u in 0..n - 1 {
                    miner.push_unit(s.db.unit(u));
                }
                miner
            },
            |mut miner| {
                miner.push_unit(s.db.unit(n - 1));
                miner.current_rules().expect("validated window")
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("batch_remine", |b| {
        b.iter(|| mine_sequential(&s.db, &s.config).expect("validated window"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
