//! Standalone `car-audit` binary; the same engine is exposed as the
//! `car audit` subcommand.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    ExitCode::from(car_audit::run_cli(&args, &mut stdout) as u8)
}
