//! A4: discarded-Result lint for the daemon's I/O paths.
//!
//! `let _ = socket.write_all(...)` silently swallows an I/O error: the
//! client sees a truncated response, the operator sees nothing in the
//! logs, and the metrics stay green. The lint flags `let _ =`
//! statements whose right-hand side calls a fallible I/O method, so the
//! error must either be handled or explicitly logged.

use crate::findings::{lints, Finding};
use crate::lexer::Token;

/// Method names whose `Result` must not be silently discarded.
const IO_MARKERS: [&str; 14] = [
    "write_to",
    "write_all",
    "write_fmt",
    "flush",
    "join",
    "send",
    "recv",
    "read_exact",
    "read_to_string",
    "write",
    "writeln",
    // Durability: a dropped fsync error is an unkept promise that data
    // is on disk — recovery code must never `let _ =` these.
    "sync_data",
    "sync_all",
    "set_len",
];

/// Runs the A4 pass over a test-stripped token stream.
pub fn check(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        let is_discard = tokens[i].is_ident("let")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct("="));
        if !is_discard {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        // Scan the right-hand side up to the statement's `;`.
        let mut j = i + 3;
        let mut marker: Option<&str> = None;
        while j < tokens.len() && !tokens[j].is_punct(";") {
            if let Some(&m) = IO_MARKERS.iter().find(|&&m| tokens[j].is_ident(m)) {
                marker.get_or_insert(m);
            }
            j += 1;
        }
        if let Some(m) = marker {
            out.push(Finding {
                file: file.to_string(),
                line,
                lint: lints::A4_DISCARD,
                snippet: format!("let _ = ...{m}(...)"),
                message: format!(
                    "`let _ =` discards the Result of `{m}`; handle or log the error"
                ),
            });
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};

    fn lints_of(src: &str) -> Vec<&'static str> {
        let mut out = Vec::new();
        check("f.rs", &strip_test_code(lex(src).tokens), &mut out);
        out.into_iter().map(|f| f.lint).collect()
    }

    #[test]
    fn flags_discarded_io() {
        assert_eq!(lints_of("let _ = stream.write_all(buf);"), [lints::A4_DISCARD]);
        assert_eq!(lints_of("let _ = handle.join();"), [lints::A4_DISCARD]);
        assert_eq!(lints_of("let _ = tx.send(msg);"), [lints::A4_DISCARD]);
    }

    #[test]
    fn non_io_discards_are_fine() {
        assert!(lints_of("let _ = compute();").is_empty());
        assert!(lints_of("let _ = guard;").is_empty());
    }

    #[test]
    fn named_bindings_are_fine() {
        assert!(lints_of("let n = stream.write_all(buf);").is_empty());
        assert!(
            lints_of("if stream.write_all(buf).is_err() { count_error(); }").is_empty()
        );
    }
}
