//! A2: lock-ordering and blocking-while-locked analysis.
//!
//! The daemon guards its shared state with a small set of named
//! `Mutex`/`RwLock` fields (`inner`, `miner`, `applied`, ...). Deadlock
//! needs two ingredients: two threads acquiring the same locks in
//! different orders, or a thread blocking indefinitely (`.join()`,
//! channel `.recv()`) while holding a lock another thread needs. Both
//! are checkable from the token stream:
//!
//! 1. **Field discovery** — struct fields declared as
//!    `name: [Arc<]Mutex<...>` / `RwLock<...>` give the set of lock
//!    names the analysis tracks.
//! 2. **Per-function acquisition tracking** — inside each `fn` body,
//!    `recv.lock()` / `recv.read()` / `recv.write()` and the project's
//!    poison-recovering `*_or_recover()` variants (zero-argument,
//!    receiver in the lock set) acquire; the guard releases when its
//!    enclosing block closes, when `drop(binding)` runs, or — for
//!    un-bound temporaries — at the end of the statement.
//! 3. **Edges** — acquiring `B` while `A` is held adds the edge
//!    `A -> B` to a global lock-ordering graph; a one-level call
//!    summary (function name -> locks it acquires directly) also adds
//!    edges for `held -> callee's locks`, so `self.queue.depth()`
//!    called under the miner lock still contributes `miner -> inner`.
//! 4. **Verdicts** — any cycle in the global graph is `a2-order`;
//!    `.join()`/`.recv()` with a lock held is `a2-blocking`.
//!
//! `Condvar::wait*` is deliberately *not* a blocking violation: it
//! atomically releases the guard it is given.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{lints, Finding};
use crate::lexer::Token;

/// A directed lock-ordering edge with the location that created it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Lock held when the acquisition happened.
    pub from: String,
    /// Lock being acquired.
    pub to: String,
    /// File containing the acquisition.
    pub file: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// Collects the names of `Mutex`/`RwLock` struct fields in a file.
///
/// Matches `name : ... Mutex <` (and `RwLock`), where `...` is any run
/// of wrapper idents and path punctuation (`Arc`, `std`, `::`, `<`,
/// `&`) — enough to see through `queue: Arc<Mutex<VecDeque<..>>>` in a
/// struct and `receiver: &Mutex<Receiver<Job>>` in a parameter list.
pub fn collect_lock_fields(tokens: &[Token], out: &mut BTreeSet<String>) {
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("Mutex") || t.is_ident("RwLock")) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            continue;
        }
        // Walk backwards over wrapper tokens to the `name :` that
        // starts the field declaration.
        let mut k = i;
        while k > 0 {
            let p = &tokens[k - 1];
            let wrapper = (p.is_ident("Arc") || p.is_ident("std") || p.is_ident("sync"))
                || p.is_punct("::")
                || p.is_punct("<")
                || p.is_punct("&");
            if !wrapper {
                break;
            }
            k -= 1;
        }
        if k >= 2 && tokens[k - 1].is_punct(":") {
            let name = &tokens[k - 2];
            if crate::lexer::TokenKind::Ident == name.kind {
                out.insert(name.text.clone());
            }
        }
    }
}

/// One lock currently held while scanning a function body.
struct Held {
    lock: String,
    binding: Option<String>,
    depth: usize,
    line: u32,
}

/// Iterates `fn` items in a token stream, yielding the function name
/// and the index range of its brace-balanced body.
pub(crate) fn for_each_function(tokens: &[Token], mut f: impl FnMut(&str, usize, usize)) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let Some(name_tok) = tokens.get(i + 1) else {
                break;
            };
            let name = name_tok.text.clone();
            // Find the body's opening brace; a `;` first means a
            // bodiless trait method.
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";")
            {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct("{") {
                let start = j + 1;
                let mut depth = 1usize;
                j += 1;
                while j < tokens.len() && depth > 0 {
                    if tokens[j].is_punct("{") {
                        depth += 1;
                    } else if tokens[j].is_punct("}") {
                        depth -= 1;
                    }
                    j += 1;
                }
                f(&name, start, j.saturating_sub(1));
            }
            i = j;
        } else {
            i += 1;
        }
    }
}

/// Detects `recv . lock|read|write ( )` at index `i` (pointing at the
/// receiver ident) and returns the lock name.
pub(crate) fn acquisition_at<'t>(
    tokens: &'t [Token],
    i: usize,
    locks: &BTreeSet<String>,
) -> Option<&'t str> {
    let recv = tokens.get(i)?;
    if !locks.contains(&recv.text) {
        return None;
    }
    let dot = tokens.get(i + 1)?;
    let method = tokens.get(i + 2)?;
    let open = tokens.get(i + 3)?;
    let close = tokens.get(i + 4)?;
    let acquires = method.is_ident("lock")
        || method.is_ident("read")
        || method.is_ident("write")
        || method.is_ident("lock_or_recover")
        || method.is_ident("read_or_recover")
        || method.is_ident("write_or_recover");
    let is_acq =
        dot.is_punct(".") && acquires && open.is_punct("(") && close.is_punct(")");
    if is_acq {
        Some(recv.text.as_str())
    } else {
        None
    }
}

/// Finds the `let` binding, if any, of the statement containing index
/// `i` (e.g. `guard` in `let mut guard = self.inner.lock()...;`).
pub(crate) fn binding_of(tokens: &[Token], i: usize) -> Option<String> {
    let mut k = i;
    while k > 0 {
        let t = &tokens[k - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        k -= 1;
    }
    let mut j = k;
    while j < i {
        if tokens[j].is_ident("let") {
            let mut b = j + 1;
            if tokens.get(b).is_some_and(|t| t.is_ident("mut")) {
                b += 1;
            }
            return tokens.get(b).map(|t| t.text.clone());
        }
        j += 1;
    }
    None
}

/// Computes one-level call summaries: function name -> set of locks the
/// function acquires directly. Colliding names union their sets
/// (conservative: more edges, never fewer).
pub fn function_summaries(
    tokens: &[Token],
    locks: &BTreeSet<String>,
    out: &mut BTreeMap<String, BTreeSet<String>>,
) {
    for_each_function(tokens, |name, start, end| {
        let mut acquired = BTreeSet::new();
        for i in start..end {
            if let Some(lock) = acquisition_at(tokens, i, locks) {
                acquired.insert(lock.to_string());
            }
        }
        if !acquired.is_empty() {
            out.entry(name.to_string()).or_default().extend(acquired);
        }
    });
}

/// Methods that block indefinitely and must not run under a lock.
const BLOCKING: [&str; 3] = ["join", "recv", "recv_timeout"];

/// Names never used for call-summary propagation: the `Condvar` wait
/// family atomically *releases* the guard it is handed, so a call named
/// `wait` under a lock is the one blocking call that is safe by
/// construction — and the name-based summary map cannot tell
/// `Condvar::wait` apart from a project function that happens to share
/// the name.
const CONDVAR_WAIT: [&str; 4] =
    ["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Scans a file's functions, emitting lock-ordering edges and
/// `a2-blocking` findings.
pub fn check(
    file: &str,
    tokens: &[Token],
    locks: &BTreeSet<String>,
    summaries: &BTreeMap<String, BTreeSet<String>>,
    edges: &mut Vec<Edge>,
    findings: &mut Vec<Finding>,
) {
    for_each_function(tokens, |fn_name, start, end| {
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        let mut i = start;
        while i < end {
            let t = &tokens[i];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
            } else if t.is_punct(";") {
                // Un-bound temporaries die at end of statement.
                held.retain(|h| h.binding.is_some());
            } else if t.is_ident("drop")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                if let Some(arg) = tokens.get(i + 2) {
                    held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
                }
            } else if let Some(lock) = acquisition_at(tokens, i, locks) {
                for h in &held {
                    edges.push(Edge {
                        from: h.lock.clone(),
                        to: lock.to_string(),
                        file: file.to_string(),
                        line: t.line,
                    });
                }
                held.push(Held {
                    lock: lock.to_string(),
                    binding: binding_of(tokens, i),
                    depth,
                    line: t.line,
                });
                i += 5; // past `recv . method ( )`
                continue;
            } else if t.is_punct(".")
                && tokens.get(i + 1).is_some_and(|m| BLOCKING.contains(&m.text.as_str()))
                && tokens.get(i + 2).is_some_and(|p| p.is_punct("("))
            {
                if let Some(h) = held.first() {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: tokens[i + 1].line,
                        lint: lints::A2_BLOCKING,
                        snippet: format!(".{}()", tokens[i + 1].text),
                        message: format!(
                            "blocking call in `{}` while holding lock `{}` (acquired line {})",
                            fn_name, h.lock, h.line
                        ),
                    });
                }
            } else if crate::lexer::TokenKind::Ident == t.kind
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
                && !held.is_empty()
            {
                // Call into a function known to acquire locks.
                if CONDVAR_WAIT.contains(&t.text.as_str()) {
                    i += 1;
                    continue;
                }
                if let Some(callee_locks) = summaries.get(&t.text) {
                    for callee_lock in callee_locks {
                        for h in &held {
                            edges.push(Edge {
                                from: h.lock.clone(),
                                to: callee_lock.clone(),
                                file: file.to_string(),
                                line: t.line,
                            });
                        }
                    }
                }
            }
            i += 1;
        }
    });
}

/// Finds cycles in the global lock-ordering graph, reporting each
/// distinct cycle once as an `a2-order` finding.
pub fn detect_cycles(edges: &[Edge]) -> Vec<Finding> {
    // Deduplicate edges, keeping the first location seen.
    let mut adj: BTreeMap<&str, BTreeMap<&str, (&str, u32)>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().entry(&e.to).or_insert((&e.file, e.line));
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        dfs(start, &adj, &mut path, &mut reported, &mut findings);
    }
    findings
}

fn dfs<'a>(
    node: &str,
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, (&'a str, u32)>>,
    path: &mut Vec<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    // Bounded by the number of lock names, so plain DFS is fine.
    let Some(nexts) = adj.get(node) else {
        return;
    };
    for (&next, &(file, line)) in nexts {
        if let Some(pos) = path.iter().position(|&n| n == next) {
            let cycle: Vec<&str> = path.get(pos..).unwrap_or_default().to_vec();
            let mut canon: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            canon.sort();
            if reported.insert(canon) {
                let mut desc: Vec<&str> = cycle.clone();
                desc.push(next);
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    lint: lints::A2_ORDER,
                    snippet: desc.join(" -> "),
                    message: "lock-ordering cycle (potential deadlock)".to_string(),
                });
            }
            continue;
        }
        if path.len() <= adj.len() {
            path.push(next);
            dfs(next, adj, path, reported, findings);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};

    fn analyze(src: &str) -> (Vec<Edge>, Vec<Finding>) {
        let tokens = strip_test_code(lex(src).tokens);
        let mut locks = BTreeSet::new();
        collect_lock_fields(&tokens, &mut locks);
        let mut summaries = BTreeMap::new();
        function_summaries(&tokens, &locks, &mut summaries);
        let mut edges = Vec::new();
        let mut findings = Vec::new();
        check("f.rs", &tokens, &locks, &summaries, &mut edges, &mut findings);
        (edges, findings)
    }

    #[test]
    fn discovers_lock_fields_through_arc() {
        let src = "
            struct S {
                inner: Mutex<u64>,
                miner: Arc<RwLock<Miner>>,
                plain: u64,
            }
        ";
        let mut locks = BTreeSet::new();
        collect_lock_fields(&lex(src).tokens, &mut locks);
        assert!(locks.contains("inner"));
        assert!(locks.contains("miner"));
        assert!(!locks.contains("plain"));
    }

    #[test]
    fn discovers_lock_parameters_by_reference() {
        let src = "fn worker(receiver: &Mutex<Receiver<Job>>) {}";
        let mut locks = BTreeSet::new();
        collect_lock_fields(&lex(src).tokens, &mut locks);
        assert!(locks.contains("receiver"));
    }

    #[test]
    fn nested_acquisition_creates_edge() {
        let src = "
            struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn f(s: &S) {
                let ga = s.a.lock();
                let gb = s.b.lock();
            }
        ";
        let (edges, _) = analyze(src);
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("a", "b"));
    }

    #[test]
    fn drop_releases_before_next_acquisition() {
        let src = "
            struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn f(s: &S) {
                let ga = s.a.lock();
                drop(ga);
                let gb = s.b.lock();
            }
        ";
        let (edges, _) = analyze(src);
        assert!(edges.is_empty());
    }

    #[test]
    fn block_scope_releases() {
        let src = "
            struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn f(s: &S) {
                { let ga = s.a.lock(); }
                let gb = s.b.lock();
            }
        ";
        let (edges, _) = analyze(src);
        assert!(edges.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "
            struct S { a: Mutex<Vec<u64>>, b: Mutex<u64> }
            fn f(s: &S) {
                s.a.lock().push(1);
                let gb = s.b.lock();
            }
        ";
        let (edges, _) = analyze(src);
        assert!(edges.is_empty());
    }

    #[test]
    fn blocking_call_under_lock_is_flagged() {
        let src = "
            struct S { receiver: Mutex<Receiver<u64>> }
            fn f(s: &S) {
                let guard = s.receiver.lock();
                let msg = guard.recv();
            }
        ";
        let (_, findings) = analyze(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, lints::A2_BLOCKING);
    }

    #[test]
    fn or_recover_acquisitions_are_tracked() {
        let src = "
            struct S { a: Mutex<u64>, b: RwLock<u64> }
            fn f(s: &S) {
                let ga = s.a.lock_or_recover();
                let gb = s.b.write_or_recover();
            }
        ";
        let (edges, _) = analyze(src);
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("a", "b"));
    }

    #[test]
    fn condvar_wait_under_lock_is_not_an_edge() {
        let src = "
            struct S { a: Mutex<u64>, cv: Condvar }
            fn wait(s: &S) { let g = s.a.lock(); }
            fn f(s: &S, other: &Mutex<u64>) {
                let g = other.lock();
                let g = s.cv.wait(g);
            }
        ";
        let (edges, findings) = analyze(src);
        assert!(edges.is_empty(), "unexpected edges: {edges:?}");
        assert!(findings.is_empty());
    }

    #[test]
    fn call_summary_adds_indirect_edge() {
        let src = "
            struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn depth(s: &S) -> u64 { let g = s.b.lock(); 0 }
            fn f(s: &S) {
                let ga = s.a.lock();
                let d = depth(s);
            }
        ";
        let (edges, _) = analyze(src);
        assert!(edges.iter().any(|e| e.from == "a" && e.to == "b"));
    }

    #[test]
    fn cycle_detection_reports_once() {
        let edges = vec![
            Edge { from: "a".into(), to: "b".into(), file: "x.rs".into(), line: 1 },
            Edge { from: "b".into(), to: "a".into(), file: "y.rs".into(), line: 2 },
            Edge { from: "b".into(), to: "c".into(), file: "z.rs".into(), line: 3 },
        ];
        let findings = detect_cycles(&edges);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, lints::A2_ORDER);
        assert!(findings[0].snippet.contains("a"));
        assert!(findings[0].snippet.contains("b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let edges = vec![
            Edge { from: "a".into(), to: "b".into(), file: "x.rs".into(), line: 1 },
            Edge { from: "a".into(), to: "c".into(), file: "x.rs".into(), line: 2 },
            Edge { from: "b".into(), to: "c".into(), file: "y.rs".into(), line: 3 },
        ];
        assert!(detect_cycles(&edges).is_empty());
    }

    #[test]
    fn double_lock_of_same_mutex_is_a_cycle() {
        let src = "
            struct S { a: Mutex<u64> }
            fn f(s: &S) {
                let g1 = s.a.lock();
                let g2 = s.a.lock();
            }
        ";
        let (edges, _) = analyze(src);
        let findings = detect_cycles(&edges);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, lints::A2_ORDER);
    }
}
