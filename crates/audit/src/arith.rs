//! A3: checked-arithmetic lint for counting kernels.
//!
//! Support and confidence in the mining kernels are `u32`/`u64`
//! accumulators incremented once per matching transaction. On debug
//! builds an overflow panics; on release it silently wraps, which turns
//! a hot itemset's support into garbage — exactly the kind of error the
//! cycle detectors would then faithfully propagate. The lint therefore
//! requires `saturating_*` / `checked_*` forms for arithmetic on
//! counter-flavoured bindings.
//!
//! The pass is name-driven (no type information): a `+=` / `*=` /
//! binary `+` / `*` statement is flagged only when an identifier on its
//! left-hand side looks like a counter — its name contains one of
//! [`COUNTER_MARKERS`] (case-insensitive). Loop indices (`i += 1`,
//! `j += 1`) never match and stay idiomatic.

use crate::findings::{lints, Finding};
use crate::lexer::{Token, TokenKind};

/// Substrings that mark an identifier as a support/confidence counter.
const COUNTER_MARKERS: [&str; 8] =
    ["count", "support", "total", "sum", "freq", "stamp", "level", "pushed"];

fn is_counter_ident(t: &Token) -> bool {
    if t.kind != TokenKind::Ident {
        return false;
    }
    let lower = t.text.to_ascii_lowercase();
    COUNTER_MARKERS.iter().any(|m| lower.contains(m))
}

/// Runs the A3 pass over a test-stripped token stream.
pub fn check(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_punct("+=") || t.is_punct("*=") || t.is_punct("+") || t.is_punct("*")) {
            continue;
        }
        // Binary `+`/`*` only: `*` as deref/raw-pointer sigil and unary
        // `+` don't exist after an expression-ending token.
        if t.is_punct("+") || t.is_punct("*") {
            let prev_ends_expr =
                i.checked_sub(1).and_then(|p| tokens.get(p)).is_some_and(|p| {
                    matches!(p.kind, TokenKind::Ident | TokenKind::Num)
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
            if !prev_ends_expr {
                continue;
            }
            // `$(...)+` / `$(...)*` are macro-rules repetition operators,
            // not arithmetic: skip a `+`/`*` whose preceding `)` closes a
            // group opened by `$(`.
            if tokens.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(")"))
                && is_macro_repetition(tokens, i - 1)
            {
                continue;
            }
        }
        // Look back across the statement's left-hand side for a
        // counter-flavoured identifier.
        let mut k = i;
        let mut lhs_is_counter = false;
        while k > 0 {
            let p = &tokens[k - 1];
            if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") || p.is_punct("=") {
                break;
            }
            if is_counter_ident(p) {
                lhs_is_counter = true;
                break;
            }
            k -= 1;
        }
        if !lhs_is_counter {
            continue;
        }
        out.push(Finding {
            file: file.to_string(),
            line: t.line,
            lint: lints::A3_UNCHECKED,
            snippet: t.text.clone(),
            message: format!(
                "unchecked `{}` on a counter; use saturating_add/saturating_mul (or checked_*)",
                t.text
            ),
        });
    }
}

/// Whether the `)` at `close` ends a macro repetition group, i.e. its
/// matching `(` is immediately preceded by `$`.
fn is_macro_repetition(tokens: &[Token], close: usize) -> bool {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        let t = &tokens[j];
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            depth -= 1;
            if depth == 0 {
                return j > 0 && tokens[j - 1].is_punct("$");
            }
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};

    fn lints_of(src: &str) -> Vec<&'static str> {
        let mut out = Vec::new();
        check("f.rs", &strip_test_code(lex(src).tokens), &mut out);
        out.into_iter().map(|f| f.lint).collect()
    }

    #[test]
    fn flags_counter_increments() {
        assert_eq!(lints_of("counts[i] += 1;"), [lints::A3_UNCHECKED]);
        assert_eq!(lints_of("stats.support_total += n;"), [lints::A3_UNCHECKED]);
        assert_eq!(lints_of("self.next_stamp += 1;"), [lints::A3_UNCHECKED]);
    }

    #[test]
    fn loop_indices_are_exempt() {
        assert!(lints_of("i += 1; j += 1; k += 1;").is_empty());
        assert!(lints_of("offset += stride;").is_empty());
    }

    #[test]
    fn flags_binary_plus_on_counters() {
        assert_eq!(lints_of("let t = count + extra;"), [lints::A3_UNCHECKED]);
        assert!(lints_of("let t = count.saturating_add(extra);").is_empty());
    }

    #[test]
    fn macro_repetition_operators_are_not_arithmetic() {
        assert!(lints_of(
            "macro_rules! m { ($level:expr, $($arg:tt)+) => { f($($arg)+) }; }"
        )
        .is_empty());
        assert!(lints_of("macro_rules! m { ($($count:expr),*) => { g($($count),*) }; }")
            .is_empty());
        // A real addition whose right operand is parenthesised still trips.
        assert_eq!(lints_of("let t = (count) + extra;"), [lints::A3_UNCHECKED]);
    }

    #[test]
    fn deref_and_generics_do_not_trip_star() {
        assert!(lints_of("let v = *ptr;").is_empty());
        assert!(lints_of("fn f(x: &mut u64) { *x = 1; }").is_empty());
        // `a * b` with non-counter names is fine too
        assert!(lints_of("let area = w * h;").is_empty());
    }

    #[test]
    fn flags_multiplication_of_counters() {
        assert_eq!(lints_of("let c = freq * weight;"), [lints::A3_UNCHECKED]);
    }
}
