//! SARIF 2.1.0 output (`--format sarif`), hand-rolled like the rest of
//! the crate's serialisation: CI uploads it so findings surface as
//! GitHub code-scanning annotations.
//!
//! The shape follows the 2.1.0 schema's minimum for a static-analysis
//! run: one `run` with a `tool.driver` carrying the rule table (every
//! lint id with its one-line description) and one `result` per finding
//! with a `physicalLocation` region. A conformance unit test in
//! `tests/sarif_tests.rs` parses the output with the project's own JSON
//! parser and checks the required fields.

use crate::findings::{json_str, lints, Finding};

/// Renders findings as a complete SARIF 2.1.0 log (single run).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(2048 + findings.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"car-audit\",\n");
    out.push_str(concat!(
        "          \"informationUri\": ",
        "\"https://github.com/example/cyclic-association-rules\",\n",
    ));
    out.push_str("          \"rules\": [\n");
    for (i, id) in lints::ALL.iter().enumerate() {
        let comma = if i + 1 < lints::ALL.len() { "," } else { "" };
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{comma}\n",
            json_str(id),
            json_str(lints::describe(id)),
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}{comma}\n",
            json_str(f.lint),
            json_str(level(f.lint)),
            json_str(&f.message),
            json_str(&f.file),
            f.line.max(1),
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// SARIF severity level for a lint: the informational hygiene lints are
/// `note`, everything else gates CI and is an `error`.
fn level(lint: &str) -> &'static str {
    if lint == lints::A0_STALE_ALLOW {
        "note"
    } else {
        "error"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_run_still_carries_schema_and_rules() {
        let s = render(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"name\": \"car-audit\""));
        assert!(s.contains("\"a5-taint-to-sink\""));
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn findings_become_results_with_locations() {
        let f = Finding {
            file: "crates/shard/src/router.rs".into(),
            line: 633,
            lint: lints::A5_TAINT_TO_SINK,
            snippet: ".request(..)".into(),
            message: "tainted value reaches the outbound HTTP request line".into(),
        };
        let s = render(&[f]);
        assert!(s.contains("\"ruleId\": \"a5-taint-to-sink\""));
        assert!(s.contains("\"startLine\": 633"));
        assert!(s.contains("\"uri\": \"crates/shard/src/router.rs\""));
        assert!(s.contains("\"level\": \"error\""));
    }
}
