//! A5: intraprocedural taint tracking from network inputs to protocol
//! sinks (`a5-taint-to-sink`).
//!
//! The PR 6 review found a real CR/LF request-smuggling hole: percent-
//! decoded client query bytes were re-embedded verbatim into the worker
//! `/v1/rules` request line. No per-line lexer lint can see that class
//! of bug — it depends on *where a value came from*, not on what one
//! line looks like. This pass tracks it:
//!
//! * **Sources** — HTTP request bytes (`.body`, `.path`, `.query`
//!   fields), query-string and percent-decoded values (`.query_param()`,
//!   `percent_decode()`), header values (`.header()`), response bodies
//!   (`.body_text()`), and deserialized JSON (`Json::parse()`).
//! * **Sinks** — outbound HTTP request-line construction
//!   (`.request()` / `.request_once()` method and target arguments),
//!   WAL record framing (`encode_record_into`, `encode_payload`,
//!   `append_batch`, ...), and filesystem path construction
//!   (`Path::new`, `.join(arg)`, `File::create`, ...).
//! * **Sanitizers** — parse-to-number calls (`.parse::<u32>()`,
//!   `Json::as_u64` and family, `u32::try_from`) and boolean
//!   neutralizers (`matches!`, `.is_some()`, `.len()`, ...): a numeric
//!   or boolean value re-rendered with `Display` can no longer carry
//!   CR/LF or path separators.
//!
//! Propagation is intraprocedural over a per-function environment of
//! `let`/`for`/`match`-arm bindings, plus a **one-level call summary**:
//! a function whose return value derives from a source taints its call
//! sites, and one returning a tainted *parameter* taints call sites
//! whose corresponding argument is tainted (how the PR 6 fix's
//! `worker_rules_target` re-render helper is recognised as clean — its
//! parameters are parsed numbers, so the rendered target is clean).
//!
//! Known limits (documented in DESIGN.md §12): string-literal contents
//! are elided by the lexer, so inline format captures (`"{target}"`)
//! are invisible — sinks are therefore *named calls*, not `write!`
//! bodies; taint stored into struct fields is not tracked across
//! methods; summaries do not propagate sink-reaching parameters (a
//! helper that forwards a parameter into a sink is clean at both ends).

use std::collections::BTreeMap;

use crate::findings::{lints, Finding};
use crate::index::FileIndex;
use crate::lexer::{Token, TokenKind};

/// The taint lattice value: clean, source-derived, and/or derived from
/// the enclosing function's parameters (a bitmask used by summaries).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Taint {
    /// Derives from an in-scope source.
    pub tainted: bool,
    /// 1-based line of the first source reached (0 when clean).
    pub origin: u32,
    /// Parameters (bit per index, capped at 32) whose taint flows here.
    pub mask: u32,
}

impl Taint {
    /// The bottom element: no taint.
    pub const CLEAN: Taint = Taint { tainted: false, origin: 0, mask: 0 };

    fn source(line: u32) -> Taint {
        Taint { tainted: true, origin: line, mask: 0 }
    }

    fn param(index: usize) -> Taint {
        let mask = if index < 32 { 1u32 << index } else { 0 };
        Taint { tainted: false, origin: 0, mask }
    }

    fn join(self, other: Taint) -> Taint {
        Taint {
            tainted: self.tainted || other.tainted,
            origin: if self.tainted || other.origin == 0 {
                self.origin.max(if self.tainted { self.origin } else { 0 })
            } else {
                other.origin
            }
            .max(if self.origin != 0 { self.origin } else { other.origin }),
            mask: self.mask | other.mask,
        }
    }

    fn any(self) -> bool {
        self.tainted || self.mask != 0
    }
}

/// One-level call summary: does the function's return value derive
/// from a source, and/or from which of its parameters?
#[derive(Clone, Copy, Debug, Default)]
pub struct FnSummary {
    /// The return value derives from a source inside the function.
    pub tainted: bool,
    /// Parameters whose taint reaches the return value (bitmask).
    pub mask: u32,
}

/// Name-keyed call summaries; colliding names join conservatively.
pub type Summaries = BTreeMap<String, FnSummary>;

/// Methods (after `.`) whose return value is attacker-controlled.
const SOURCE_METHODS: [&str; 3] = ["query_param", "header", "body_text"];
/// Request/response-struct fields carrying raw client bytes. Gated on
/// the receiver name ([`SOURCE_RECEIVERS`]) because `.path` is also an
/// innocuous `PathBuf` field on WAL segments and the like.
const SOURCE_FIELDS: [&str; 3] = ["body", "path", "query"];
/// Receiver names whose [`SOURCE_FIELDS`] accesses count as sources.
const SOURCE_RECEIVERS: [&str; 4] = ["req", "request", "resp", "response"];
/// Methods that parse to a number/bool: the result re-renders safely.
const SANITIZE_METHODS: [&str; 5] = ["parse", "as_u64", "as_i64", "as_f64", "as_bool"];
/// Boolean/size-valued methods: the result cannot carry protocol bytes.
const NEUTRALIZERS: [&str; 9] = [
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "is_empty",
    "len",
    "contains",
    "starts_with",
    "ends_with",
];
/// Adapters whose closure argument feeds the *error* channel, not the
/// value: `raw.parse().map_err(|_| err(raw))` stays sanitized.
const ERROR_ADAPTERS: [&str; 3] = ["map_err", "ok_or", "ok_or_else"];
/// WAL framing functions (free or method form): tainted bytes here
/// could desynchronise the record framing of the durability log.
const WAL_SINKS: [&str; 6] = [
    "encode_record_into",
    "encode_payload",
    "encode_unit_into",
    "append_batch",
    "push_u32",
    "push_u64",
];
/// Segment boundaries: operators/separators that end a value chain.
const BOUNDARIES: [&str; 22] = [
    ",", ";", "=>", "&&", "||", "==", "!=", "<=", ">=", "+", "-", "*", "/", "%", "=",
    "<", ">", "..", "..=", "&", "|", "?",
];

/// Computes per-function return-taint summaries for one file, joining
/// into `out`. `prev` supplies callee summaries (pass the result of a
/// first pass back in for one level of call propagation).
pub fn summarize(
    tokens: &[Token],
    index: &FileIndex,
    prev: &Summaries,
    out: &mut Summaries,
) {
    for f in &index.fns {
        let mut w = Walk::new(tokens, prev, "", "");
        for (k, p) in f.params.iter().enumerate() {
            w.env.insert(p.clone(), Taint::param(k));
        }
        w.walk(f.body_start, f.body_end);
        let trail = trailing_expr_start(tokens, f.body_start, f.body_end);
        let t = w.eval(trail, f.body_end);
        let total = w.return_taint.join(t);
        let e = out.entry(f.name.clone()).or_default();
        e.tainted |= total.tainted;
        e.mask |= total.mask;
    }
}

/// Runs the taint check over one file, emitting `a5-taint-to-sink`
/// findings at sink call sites reached by source-derived values.
pub fn check(
    file: &str,
    tokens: &[Token],
    index: &FileIndex,
    summaries: &Summaries,
    findings: &mut Vec<Finding>,
) {
    for f in &index.fns {
        let mut w = Walk::new(tokens, summaries, file, &f.name);
        // Parameters are clean in the check pass: a helper that
        // forwards a parameter to a sink is judged at its (clean)
        // definition; summaries cover the return path only.
        w.emit = true;
        w.walk(f.body_start, f.body_end);
        findings.append(&mut w.findings);
    }
}

/// Index just past the last depth-0 `;` in the body (the trailing
/// expression), or `start` when the body has no depth-0 statements.
fn trailing_expr_start(tokens: &[Token], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut trail = start;
    for (i, t) in tokens.iter().enumerate().take(end).skip(start) {
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            trail = i + 1;
        }
    }
    trail
}

/// The statement/expression walker shared by the summary and check
/// passes: builds the binding environment in source order, evaluates
/// expression taint, and (in check mode) tests sink arguments.
struct Walk<'a> {
    tokens: &'a [Token],
    summaries: &'a Summaries,
    env: BTreeMap<String, Taint>,
    return_taint: Taint,
    emit: bool,
    file: &'a str,
    fn_name: &'a str,
    findings: Vec<Finding>,
}

impl<'a> Walk<'a> {
    fn new(
        tokens: &'a [Token],
        summaries: &'a Summaries,
        file: &'a str,
        fn_name: &'a str,
    ) -> Walk<'a> {
        Walk {
            tokens,
            summaries,
            env: BTreeMap::new(),
            return_taint: Taint::CLEAN,
            emit: false,
            file,
            fn_name,
            findings: Vec::new(),
        }
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    fn is_p(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(s))
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.tok(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str())
    }

    /// Walks `[start, end)` linearly: bindings are applied in source
    /// order, nested blocks/closures are walked through (not skipped),
    /// and sink calls are checked in place.
    fn walk(&mut self, start: usize, end: usize) {
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            if t.is_ident("let") {
                i = self.handle_let(i, end) + 1;
            } else if t.is_ident("for") {
                self.handle_for(i, end);
                i += 1;
            } else if t.is_ident("match") {
                self.handle_match_bindings(i, end);
                i += 1;
            } else if t.is_ident("return") {
                let e = self.stmt_end(i + 1, end);
                let v = self.eval(i + 1, e);
                self.return_taint = self.return_taint.join(v);
                i += 1;
            } else if t.kind == TokenKind::Ident
                && self.is_p(i + 1, "=")
                && !self.is_p(i.wrapping_sub(1), ".")
            {
                // Plain reassignment `name = rhs;` (strong update).
                let e = self.stmt_end(i + 2, end);
                let v = self.eval(i + 2, e);
                self.env.insert(t.text.clone(), v);
                i += 2;
            } else if t.kind == TokenKind::Ident && self.is_p(i + 1, "+=") {
                let e = self.stmt_end(i + 2, end);
                let v = self.eval(i + 2, e);
                let joined = self.env.get(&t.text).copied().unwrap_or(Taint::CLEAN);
                self.env.insert(t.text.clone(), joined.join(v));
                i += 2;
            } else if self.mutation_at(i, end) {
                i += 1;
            } else {
                self.sink_check(i, end);
                i += 1;
            }
        }
    }

    /// `let [mut] PAT [: TY] = RHS` (plain, let-else, if-let,
    /// while-let). Binds the pattern to the RHS taint and returns the
    /// index of the `=` so the walker continues into the RHS.
    fn handle_let(&mut self, i: usize, end: usize) -> usize {
        let braced = i > 0
            && (self.tokens[i - 1].is_ident("if")
                || self.tokens[i - 1].is_ident("while"));
        let mut depth = 0i32;
        let mut eq = None;
        let mut j = i + 1;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("=") {
                eq = Some(j);
                break;
            } else if depth <= 0 && t.is_punct(";") {
                break; // `let x;` — no initializer.
            }
            j += 1;
        }
        let Some(eq) = eq else { return i };
        let rhs_end = if braced {
            self.scan_to(eq + 1, end, |t, d| d == 0 && t.is_punct("{"))
        } else {
            self.scan_to(eq + 1, end, |t, d| {
                d == 0 && (t.is_punct(";") || t.is_ident("else"))
            })
        };
        let v = self.eval(eq + 1, rhs_end);
        self.bind_pattern(i + 1, eq, v);
        eq
    }

    /// `for PAT in EXPR {` — binds the pattern to the iterated
    /// expression's taint (element taint is approximated by the
    /// collection's taint).
    fn handle_for(&mut self, i: usize, end: usize) {
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                break;
            }
            j += 1;
        }
        if j >= end {
            return;
        }
        let expr_end = self.scan_to(j + 1, end, |t, d| d == 0 && t.is_punct("{"));
        let v = self.eval(j + 1, expr_end);
        self.bind_pattern(i + 1, j, v);
    }

    /// At a walker-level `match`: evaluates the scrutinee and binds the
    /// arm-pattern identifiers so arm bodies (walked next) see them.
    fn handle_match_bindings(&mut self, i: usize, end: usize) {
        let open = self.scan_to(i + 1, end, |t, d| d == 0 && t.is_punct("{"));
        if open >= end {
            return;
        }
        let v = self.eval(i + 1, open);
        let close = self.matching_brace(open, end);
        for (ps, pe, _, _) in self.parse_arms(open, close) {
            self.bind_pattern(ps, pe, v);
        }
    }

    /// First index in `[from, end)` where `pred(token, depth)` holds
    /// (depth counts `(`/`[`/`{` minus their closers), or `end`.
    fn scan_to(
        &self,
        from: usize,
        end: usize,
        pred: impl Fn(&Token, i32) -> bool,
    ) -> usize {
        let mut depth = 0i32;
        let mut j = from;
        while j < end {
            let t = &self.tokens[j];
            if pred(t, depth) {
                return j;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            j += 1;
        }
        end
    }

    /// End of the statement starting at `from`: the depth-0 `;`, or the
    /// closer that ends the enclosing block, or `end`.
    fn stmt_end(&self, from: usize, end: usize) -> usize {
        self.scan_to(from, end, |t, d| d == 0 && t.is_punct(";"))
    }

    /// Index of the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        end
    }

    /// Binds lowercase pattern identifiers in `[start, end)` to `v`.
    /// Constructor names (uppercase), field names before `:`, guard
    /// expressions after a depth-0 `if`, and path segments are skipped.
    fn bind_pattern(&mut self, start: usize, end: usize, v: Taint) {
        let mut depth = 0i32;
        let mut j = start;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("if") {
                break; // match guard: reads, not bindings
            } else if t.kind == TokenKind::Ident
                && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                && !matches!(t.text.as_str(), "mut" | "ref" | "box" | "in" | "as" | "_")
                && !self.is_p(j + 1, "(")
                && !self.is_p(j + 1, ":")
                && !self.is_p(j.wrapping_sub(1), ".")
                && !self.is_p(j.wrapping_sub(1), "::")
            {
                self.env.insert(t.text.clone(), v);
            }
            j += 1;
        }
    }

    /// Applies in-place string growth: `x.push_str(e)`, `x.push(e)`,
    /// `x.extend(e)`, `x.write_str(e)`, and `write!(x, ...)` /
    /// `writeln!(x, ...)` with a plain-identifier receiver.
    fn mutation_at(&mut self, i: usize, end: usize) -> bool {
        let t = &self.tokens[i];
        if t.kind != TokenKind::Ident {
            return false;
        }
        if self.is_p(i + 1, ".")
            && self.ident_at(i + 2).is_some_and(|m| {
                matches!(m, "push_str" | "push" | "extend" | "write_str")
            })
            && self.is_p(i + 3, "(")
        {
            let close = self.matching_paren(i + 3, end);
            let v = self.eval(i + 4, close);
            let joined = self.env.get(&t.text).copied().unwrap_or(Taint::CLEAN);
            self.env.insert(t.text.clone(), joined.join(v));
            return true;
        }
        if (t.is_ident("write") || t.is_ident("writeln"))
            && self.is_p(i + 1, "!")
            && self.is_p(i + 2, "(")
        {
            let close = self.matching_paren(i + 2, end);
            if let Some(recv) = self.ident_at(i + 3).map(str::to_string) {
                if self.is_p(i + 4, ",") {
                    let v = self.eval(i + 5, close);
                    let joined = self.env.get(&recv).copied().unwrap_or(Taint::CLEAN);
                    self.env.insert(recv, joined.join(v));
                    return true;
                }
            }
        }
        false
    }

    /// Index of the `)` matching the `(` at `open`.
    fn matching_paren(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        end
    }

    /// Top-level comma-separated argument ranges of the call whose `(`
    /// is at `open`.
    fn split_args(&self, open: usize, end: usize) -> Vec<(usize, usize)> {
        let close = self.matching_paren(open, end);
        let mut args = Vec::new();
        let mut depth = 0i32;
        let mut seg = open + 1;
        let mut j = open + 1;
        while j < close {
            let t = &self.tokens[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && t.is_punct(",") {
                args.push((seg, j));
                seg = j + 1;
            }
            j += 1;
        }
        if seg < close {
            args.push((seg, close));
        }
        args
    }

    /// Tests the call at `i` against the sink lists and emits a finding
    /// when a source-derived argument reaches it.
    fn sink_check(&mut self, i: usize, end: usize) {
        if !self.emit {
            return;
        }
        let Some(name) = self.ident_at(i).map(str::to_string) else { return };
        let name = name.as_str();
        let after_dot = self.is_p(i.wrapping_sub(1), ".");
        let line = self.tokens[i].line;

        // Outbound HTTP: `.request(method, target, ..)` and
        // `.request_once(..)` — the first two arguments become the
        // request line verbatim.
        if after_dot
            && matches!(name, "request" | "request_once")
            && self.is_p(i + 1, "(")
        {
            let args = self.split_args(i + 1, end);
            let mut v = Taint::CLEAN;
            for a in args.iter().take(2) {
                v = v.join(self.eval(a.0, a.1));
            }
            if v.tainted {
                self.emit_finding(
                    line,
                    format!(".{name}(..)"),
                    format!(
                        "tainted value reaches the outbound HTTP request line in `{}` \
                         (source at line {}); re-render from parsed values instead",
                        self.fn_name, v.origin
                    ),
                );
            }
            return;
        }

        // Filesystem path construction: `.join(arg)` with arguments
        // (thread-`join()` takes none), `.open(path)`, and the
        // `Path::new` / `File::create` / `fs::write` family below.
        if after_dot && matches!(name, "join" | "open") && self.is_p(i + 1, "(") {
            let args = self.split_args(i + 1, end);
            let v = self.eval_args(&args);
            if !args.is_empty() && v.tainted {
                self.emit_finding(
                    line,
                    format!(".{name}(..)"),
                    format!(
                        "tainted value reaches filesystem path construction in `{}` \
                         (source at line {})",
                        self.fn_name, v.origin
                    ),
                );
            }
            return;
        }

        // WAL record framing, free or method form.
        if WAL_SINKS.contains(&name) && self.is_p(i + 1, "(") {
            let args = self.split_args(i + 1, end);
            let v = self.eval_args(&args);
            if v.tainted {
                self.emit_finding(
                    line,
                    format!("{name}(..)"),
                    format!(
                        "tainted value reaches WAL record framing in `{}` \
                         (source at line {})",
                        self.fn_name, v.origin
                    ),
                );
            }
            return;
        }

        // `Path::new(..)`, `PathBuf::from(..)`, `File::create/open`,
        // `fs::write/rename/copy`, bare `create_dir_all`/`remove_file`.
        let path_call = (matches!(name, "Path" | "PathBuf" | "File" | "fs")
            && self.is_p(i + 1, "::")
            && self.ident_at(i + 2).is_some_and(|m| {
                matches!(
                    m,
                    "new" | "from" | "create" | "open" | "write" | "rename" | "copy"
                )
            })
            && self.is_p(i + 3, "("))
            || (!after_dot
                && matches!(name, "create_dir_all" | "remove_file")
                && self.is_p(i + 1, "("));
        if path_call {
            let open = if self.is_p(i + 1, "(") { i + 1 } else { i + 3 };
            let args = self.split_args(open, end);
            let v = self.eval_args(&args);
            if v.tainted {
                self.emit_finding(
                    line,
                    format!("{name}(..)"),
                    format!(
                        "tainted value reaches filesystem path construction in `{}` \
                         (source at line {})",
                        self.fn_name, v.origin
                    ),
                );
            }
        }
    }

    fn emit_finding(&mut self, line: u32, snippet: String, message: String) {
        self.findings.push(Finding {
            file: self.file.to_string(),
            line,
            lint: lints::A5_TAINT_TO_SINK,
            snippet,
            message,
        });
    }

    /// Joins the taint of every argument range.
    fn eval_args(&mut self, args: &[(usize, usize)]) -> Taint {
        let mut v = Taint::CLEAN;
        for a in args {
            v = v.join(self.eval(a.0, a.1));
        }
        v
    }

    /// Evaluates the taint of the expression in `[start, end)`.
    ///
    /// The range is scanned as a sequence of *segments* separated by
    /// operators/commas; within a segment, a sanitizer occurring after
    /// the last taint atom cleans the segment (`raw.parse::<u32>()`),
    /// while a taint atom after the last sanitizer keeps it tainted.
    fn eval(&mut self, start: usize, end: usize) -> Taint {
        let mut res = Taint::CLEAN;
        let mut seg = Taint::CLEAN;
        let mut taint_pos: Option<usize> = None;
        let mut san_pos: Option<usize> = None;
        let mut i = start;

        macro_rules! flush {
            () => {
                if taint_pos.is_some()
                    && (san_pos.is_none() || san_pos < taint_pos)
                    && seg.any()
                {
                    res = res.join(seg);
                }
            };
        }

        while i < end {
            let t = &self.tokens[i];
            if t.kind == TokenKind::Punct && BOUNDARIES.contains(&t.text.as_str()) {
                flush!();
                seg = Taint::CLEAN;
                taint_pos = None;
                san_pos = None;
                i += 1;
                continue;
            }
            if t.is_ident("match") {
                let (v, after) = self.eval_match(i, end);
                if v.any() {
                    seg = seg.join(v);
                    taint_pos = Some(i);
                }
                i = after;
                continue;
            }
            if t.is_ident("return") {
                let e = self.stmt_end(i + 1, end);
                let v = self.eval(i + 1, e);
                self.return_taint = self.return_taint.join(v);
                i = e;
                continue;
            }
            if t.is_ident("matches") && self.is_p(i + 1, "!") {
                san_pos = Some(i);
                i = self.matching_paren(i + 2, end) + 1;
                continue;
            }
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            let name = t.text.as_str();
            let after_dot = self.is_p(i.wrapping_sub(1), ".");
            let after_path = self.is_p(i.wrapping_sub(1), "::");

            // `Json::parse(..)` — the deserialized-JSON source.
            if name == "parse"
                && after_path
                && self.ident_at(i.wrapping_sub(2)) == Some("Json")
                && self.is_p(i + 1, "(")
            {
                seg = seg.join(Taint::source(t.line));
                taint_pos = Some(i);
                i = self.matching_paren(i + 1, end) + 1;
                continue;
            }
            // `percent_decode(..)` — decoded client bytes.
            if name == "percent_decode" && self.is_p(i + 1, "(") {
                seg = seg.join(Taint::source(t.line));
                taint_pos = Some(i);
                i = self.matching_paren(i + 1, end) + 1;
                continue;
            }
            if after_dot && SOURCE_METHODS.contains(&name) && self.is_p(i + 1, "(") {
                seg = seg.join(Taint::source(t.line));
                taint_pos = Some(i);
                i = self.matching_paren(i + 1, end) + 1;
                continue;
            }
            if after_dot
                && SOURCE_FIELDS.contains(&name)
                && !self.is_p(i + 1, "(")
                && self
                    .ident_at(i.wrapping_sub(2))
                    .is_some_and(|r| SOURCE_RECEIVERS.contains(&r))
            {
                seg = seg.join(Taint::source(t.line));
                taint_pos = Some(i);
                i += 1;
                continue;
            }
            // Sanitizers: `.parse`, `.as_u64()` / `Json::as_u64`,
            // `u32::try_from(..)`.
            let sanitizes = (after_dot && name == "parse")
                || ((after_dot || after_path)
                    && name != "parse"
                    && SANITIZE_METHODS.contains(&name))
                || (after_path && name == "try_from");
            if sanitizes {
                san_pos = Some(i);
                i = self.skip_call_args(i + 1, end);
                continue;
            }
            if after_dot && NEUTRALIZERS.contains(&name) && self.is_p(i + 1, "(") {
                san_pos = Some(i);
                i = self.matching_paren(i + 1, end) + 1;
                continue;
            }
            if after_dot && ERROR_ADAPTERS.contains(&name) && self.is_p(i + 1, "(") {
                i = self.matching_paren(i + 1, end) + 1;
                continue;
            }
            // Known project function/method: apply its summary and
            // skip the argument tokens (the summary decides what flows
            // through; unknown callees fall through to textual union).
            if self.is_p(i + 1, "(") {
                if let Some(s) = self.summaries.get(name).copied() {
                    let args = self.split_args(i + 1, end);
                    let mut v =
                        if s.tainted { Taint::source(t.line) } else { Taint::CLEAN };
                    for (k, a) in args.iter().enumerate() {
                        if k < 32 && s.mask & (1 << k) != 0 {
                            v = v.join(self.eval(a.0, a.1));
                        }
                    }
                    if v.any() {
                        seg = seg.join(v);
                        taint_pos = Some(i);
                    }
                    i = self.matching_paren(i + 1, end) + 1;
                    continue;
                }
            }
            // Environment lookup: a bound local/parameter read.
            if !after_dot && !after_path && !self.is_p(i + 1, "(") {
                if let Some(v) = self.env.get(name).copied() {
                    if v.any() {
                        seg = seg.join(v);
                        taint_pos = Some(i);
                    }
                }
            }
            i += 1;
        }
        flush!();
        res
    }

    /// Skips an optional turbofish (`::<..>`) and the call's parens.
    fn skip_call_args(&self, from: usize, end: usize) -> usize {
        let mut j = from;
        if self.is_p(j, "::") && self.is_p(j + 1, "<") {
            let mut angle = 0i32;
            j += 1;
            while j < end {
                match self.tokens[j].text.as_str() {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                }
                j += 1;
                if angle <= 0 {
                    break;
                }
            }
        }
        if self.is_p(j, "(") {
            self.matching_paren(j, end) + 1
        } else {
            j
        }
    }

    /// Evaluates a `match`: arms bind their patterns to the scrutinee
    /// taint, the value is the join of the arm *bodies* (the scrutinee
    /// itself does not leak into the value — `match raw.parse() {..}`
    /// is clean when every arm is). Returns (value, index past `}`).
    fn eval_match(&mut self, i: usize, end: usize) -> (Taint, usize) {
        let open = self.scan_to(i + 1, end, |t, d| d == 0 && t.is_punct("{"));
        if open >= end {
            return (Taint::CLEAN, end);
        }
        let scrut = self.eval(i + 1, open);
        let close = self.matching_brace(open, end);
        let mut value = Taint::CLEAN;
        for (ps, pe, bs, be) in self.parse_arms(open, close) {
            let saved: Vec<(String, Option<Taint>)> = pattern_idents(self.tokens, ps, pe)
                .into_iter()
                .map(|n| {
                    let old = self.env.get(&n).copied();
                    self.env.insert(n.clone(), scrut);
                    (n, old)
                })
                .collect();
            value = value.join(self.eval(bs, be));
            for (n, old) in saved {
                match old {
                    Some(v) => {
                        self.env.insert(n, v);
                    }
                    None => {
                        self.env.remove(&n);
                    }
                }
            }
        }
        (value, close + 1)
    }

    /// Splits the arms of a `match` whose braces are `[open, close]`
    /// into (pattern_start, pattern_end, body_start, body_end) tuples.
    fn parse_arms(&self, open: usize, close: usize) -> Vec<(usize, usize, usize, usize)> {
        let mut arms = Vec::new();
        let mut j = open + 1;
        while j < close {
            let pat_start = j;
            let arrow = self.scan_to(j, close, |t, d| d == 0 && t.is_punct("=>"));
            if arrow >= close {
                break;
            }
            let body_start = arrow + 1;
            let body_end = if self.is_p(body_start, "{") {
                self.matching_brace(body_start, close) + 1
            } else {
                self.scan_to(body_start, close, |t, d| d == 0 && t.is_punct(","))
            };
            arms.push((pat_start, arrow, body_start, body_end.min(close)));
            j = body_end.min(close);
            if self.is_p(j, ",") {
                j += 1;
            }
        }
        arms
    }
}

/// Lowercase binding identifiers in a pattern range (guards excluded).
fn pattern_idents(tokens: &[Token], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if depth == 0 && t.is_ident("if") {
            break;
        } else if t.kind == TokenKind::Ident
            && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
            && !matches!(t.text.as_str(), "mut" | "ref" | "box" | "in" | "as" | "_")
            && !tokens.get(j + 1).is_some_and(|n| n.is_punct("(") || n.is_punct(":"))
            && !tokens
                .get(j.wrapping_sub(1))
                .is_some_and(|p| p.is_punct(".") || p.is_punct("::"))
        {
            out.push(t.text.clone());
        }
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use crate::lexer::{lex, strip_test_code};

    fn run(src: &str) -> Vec<Finding> {
        let tokens = strip_test_code(lex(src).tokens);
        let index = index_file(&tokens);
        let mut s1 = Summaries::new();
        summarize(&tokens, &index, &Summaries::new(), &mut s1);
        let mut s2 = Summaries::new();
        summarize(&tokens, &index, &s1, &mut s2);
        let mut findings = Vec::new();
        check("f.rs", &tokens, &index, &s2, &mut findings);
        findings
    }

    #[test]
    fn query_param_to_request_target_is_flagged() {
        let f = run("fn h(req: &Request, c: &mut Client) {\n\
                     let raw = req.query_param(\"q\").unwrap_or_default();\n\
                     let target = format!(\"/v1/rules?q={}\", raw);\n\
                     c.request(\"GET\", &target, None);\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, lints::A5_TAINT_TO_SINK);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn parsed_and_rerendered_value_is_clean() {
        let f = run("fn h(req: &Request, c: &mut Client) {\n\
                     let q = match req.query_param(\"q\") {\n\
                     None => None,\n\
                     Some(raw) => match raw.parse::<f64>() {\n\
                     Ok(v) => Some(v),\n\
                     _ => return,\n\
                     },\n\
                     };\n\
                     let target = format!(\"/v1/rules?q={}\", q.unwrap_or(0.0));\n\
                     c.request(\"GET\", &target, None);\n\
                     }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn one_level_summary_taints_call_sites() {
        let f = run("fn pick(req: &Request) -> String {\n\
                     req.query_param(\"q\").unwrap_or_default().to_string()\n\
                     }\n\
                     fn h(req: &Request, c: &mut Client) {\n\
                     let t = pick(req);\n\
                     c.request(\"GET\", &t, None);\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn param_returning_helper_propagates_argument_taint_only() {
        let src_clean = "fn render(v: u32) -> String { format!(\"x={}\", v) }\n\
                         fn h(c: &mut Client) {\n\
                         let t = render(7);\n\
                         c.request(\"GET\", &t, None);\n\
                         }\n";
        assert!(run(src_clean).is_empty());
        let src_bad = "fn render(v: &str) -> String { format!(\"x={}\", v) }\n\
                       fn h(req: &Request, c: &mut Client) {\n\
                       let raw = req.query_param(\"q\").unwrap_or_default();\n\
                       let t = render(&raw);\n\
                       c.request(\"GET\", &t, None);\n\
                       }\n";
        let f = run(src_bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn matches_macro_neutralizes() {
        let f = run("fn h(req: &Request, c: &mut Client) {\n\
                     let wait = matches!(req.query_param(\"wait\"), Some(\"1\"));\n\
                     let target = if wait { \"/v1/u?wait=true\" } else { \"/v1/u\" };\n\
                     c.request(\"POST\", target, None);\n\
                     }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn json_parse_to_path_join_is_flagged() {
        let f = run("fn h(text: &str, dir: &Path) {\n\
                     let doc = Json::parse(text).unwrap_or_default();\n\
                     let name = doc.get(\"file\").to_string();\n\
                     let p = dir.join(&name);\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("path"));
    }

    #[test]
    fn as_u64_sanitizes_json_fields() {
        let f = run("fn h(text: &str, w: &mut Wal) {\n\
                     let doc = Json::parse(text).unwrap_or_default();\n\
                     let seq = doc.get(\"seq\").and_then(Json::as_u64).unwrap_or(0);\n\
                     let mut out = Vec::new();\n\
                     encode_record_into(seq, &out);\n\
                     }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wal_framing_with_raw_bytes_is_flagged() {
        let f = run("fn h(req: &Request) {\n\
                     let mut out = Vec::new();\n\
                     encode_payload(&req.body, &mut out);\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("WAL"));
    }

    #[test]
    fn push_str_accumulates_taint() {
        let f = run("fn h(req: &Request, c: &mut Client) {\n\
                     let mut target = String::from(\"/v1/rules\");\n\
                     if let Some(raw) = req.query_param(\"q\") {\n\
                     target.push_str(raw);\n\
                     }\n\
                     c.request(\"GET\", &target, None);\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn validation_without_rerender_stays_tainted() {
        // The PR 6 smuggling bug in miniature: the value is *checked*
        // with parse() but the raw string is still embedded.
        let f = run("fn h(req: &Request, c: &mut Client) {\n\
                     let raw = req.query_param(\"q\").unwrap_or_default();\n\
                     if raw.parse::<f64>().is_err() { return; }\n\
                     let target = format!(\"/v1/rules?q={}\", raw);\n\
                     c.request(\"GET\", &target, None);\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }
}
