//! A lightweight symbol/function index over the token stream.
//!
//! The dataflow lints (A5 taint, A6 atomics discipline) need more
//! structure than a flat token window: which function a token belongs
//! to, what the function's parameters are called, and where calls to
//! project functions happen. This module extracts exactly that — no
//! types, no generics resolution, no method dispatch — because the
//! passes built on top are intraprocedural with one-level call
//! summaries, and a name-keyed index is enough for that (colliding
//! names union conservatively, same as the A2 lock summaries).
//!
//! The index is per-file ([`FileIndex`]) and the engine aggregates the
//! per-file function tables into a workspace-wide name → summary map.

use crate::lexer::{Token, TokenKind};

/// One `fn` item: its name, parameter names, and body token range.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// The function's name (methods and free functions alike).
    pub name: String,
    /// Parameter names in declaration order (`self` receivers and
    /// pattern internals beyond the first binding are skipped).
    pub params: Vec<String>,
    /// First token index of the body (just past the opening `{`).
    pub body_start: usize,
    /// One past the last body token (the closing `}`).
    pub body_end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Every function found in one file, in source order.
#[derive(Clone, Debug, Default)]
pub struct FileIndex {
    /// The file's `fn` items.
    pub fns: Vec<FnInfo>,
}

/// Builds the function index for a (test-stripped) token stream.
pub fn index_file(tokens: &[Token]) -> FileIndex {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else { break };
        if name_tok.kind != TokenKind::Ident {
            i += 2;
            continue;
        }
        let name = name_tok.text.clone();
        let line = tokens[i].line;
        // Skip generics to the parameter list's `(`.
        let mut j = i + 2;
        let mut angle = 0usize;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle = angle.saturating_sub(1);
            } else if angle == 0
                && (t.is_punct("(") || t.is_punct("{") || t.is_punct(";"))
            {
                break;
            }
            j += 1;
        }
        let params = if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
            let (names, after) = param_names(tokens, j);
            j = after;
            names
        } else {
            Vec::new()
        };
        // Find the body's opening brace; a `;` first means a bodiless
        // trait method or an extern declaration.
        while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
            j += 1;
        }
        if j < tokens.len() && tokens[j].is_punct("{") {
            let body_start = j + 1;
            let mut depth = 1usize;
            j += 1;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("{") {
                    depth += 1;
                } else if tokens[j].is_punct("}") {
                    depth -= 1;
                }
                j += 1;
            }
            fns.push(FnInfo {
                name,
                params,
                body_start,
                body_end: j.saturating_sub(1),
                line,
            });
        }
        i = j.max(i + 1);
    }
    FileIndex { fns }
}

/// Extracts parameter names from the list starting at the `(` at
/// `open`. Returns the names and the index just past the closing `)`.
///
/// Each depth-1 comma-separated segment contributes the first ident
/// that is directly followed by `:` (skipping `mut` and references), so
/// `mut out: &mut Vec<u8>` yields `out` and a `self` receiver yields
/// nothing.
fn param_names(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut names = Vec::new();
    let mut depth = 0usize;
    let mut angle = 0usize;
    let mut j = open;
    let mut seg_named = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return (names, j + 1);
            }
        } else if t.is_punct("<") || t.is_punct("<<") {
            angle += if t.is_punct("<<") { 2 } else { 1 };
        } else if t.is_punct(">") || t.is_punct(">>") {
            angle = angle.saturating_sub(if t.is_punct(">>") { 2 } else { 1 });
        } else if depth == 1 && angle == 0 {
            if t.is_punct(",") {
                seg_named = false;
            } else if !seg_named
                && t.kind == TokenKind::Ident
                && tokens.get(j + 1).is_some_and(|n| n.is_punct(":"))
            {
                names.push(t.text.clone());
                seg_named = true;
            }
        }
        j += 1;
    }
    (names, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> FileIndex {
        index_file(&lex(src).tokens)
    }

    #[test]
    fn finds_fns_with_params_and_bodies() {
        let idx = index(
            "fn plain(a: u32, mut b: &str) -> u32 { a }\n\
             impl S { fn method(&self, q: Option<f64>) { body(); } }\n\
             fn generic<T: Clone>(x: T) { }\n",
        );
        let names: Vec<_> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["plain", "method", "generic"]);
        assert_eq!(idx.fns[0].params, ["a", "b"]);
        assert_eq!(idx.fns[1].params, ["q"]);
        assert_eq!(idx.fns[2].params, ["x"]);
    }

    #[test]
    fn nested_generics_in_params_do_not_invent_names() {
        let idx = index("fn f(map: BTreeMap<String, Vec<u8>>, n: usize) {}");
        assert_eq!(idx.fns[0].params, ["map", "n"]);
    }

    #[test]
    fn bodiless_trait_methods_are_skipped() {
        let idx = index("trait T { fn sig(&self, x: u32); } fn real() {}");
        let names: Vec<_> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn body_range_is_brace_balanced() {
        let src = "fn f() { if a { b(); } c(); } fn g() {}";
        let idx = index(src);
        assert_eq!(idx.fns.len(), 2);
        let toks = lex(src).tokens;
        let body: Vec<_> = toks[idx.fns[0].body_start..idx.fns[0].body_end]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(body.contains(&"c"));
        assert!(!body.contains(&"g"));
    }
}
