//! A1: panic-freedom lint for request-handling and mining hot paths.
//!
//! Scans the token stream of an in-scope file for constructs that can
//! panic at runtime:
//!
//! * `.unwrap()` / `.expect(...)` on `Option`/`Result`;
//! * panicking macros: `panic!`, `unreachable!`, `assert!`-family,
//!   `todo!`, `unimplemented!`;
//! * slice/array index expressions `expr[...]` (out-of-bounds panics);
//! * `/`, `/=`, `%` division and remainder (divide-by-zero panics).
//!
//! The pass is syntactic: it cannot see types, so a handful of
//! heuristics keep false positives out (see the individual checks).
//! Residual false positives are handled with `audit:allow` directives,
//! which require a written reason.

use crate::findings::{lints, Finding};
use crate::lexer::{Token, TokenKind};

/// Runs the A1 pass over a test-stripped token stream.
pub fn check(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Ident => check_ident(file, tokens, i, out),
            TokenKind::Punct => check_punct(file, tokens, i, out),
            _ => {}
        }
    }
}

fn check_ident(file: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    let next_is = |s: &str| tokens.get(i + 1).is_some_and(|n| n.is_punct(s));
    // Method calls: require a preceding `.` so free functions named
    // `unwrap`/`expect` (none exist, but cheap insurance) don't fire.
    let after_dot = i > 0 && tokens[i - 1].is_punct(".");
    match t.text.as_str() {
        "unwrap" | "unwrap_unchecked" if after_dot && next_is("(") => {
            push(
                file,
                t,
                lints::A1_UNWRAP,
                "unwrap() may panic; handle the None/Err case",
                out,
            );
        }
        "expect" if after_dot && next_is("(") => {
            push(
                file,
                t,
                lints::A1_EXPECT,
                "expect() may panic; propagate the error instead",
                out,
            );
        }
        "panic" | "unreachable" | "assert" | "assert_eq" | "assert_ne"
        | "debug_assert" | "debug_assert_eq" | "debug_assert_ne"
            if next_is("!") =>
        {
            push(file, t, lints::A1_PANIC, "panicking macro in a panic-free scope", out);
        }
        "todo" | "unimplemented" if next_is("!") => {
            push(
                file,
                t,
                lints::A1_TODO,
                "placeholder macro left in production code",
                out,
            );
        }
        _ => {}
    }
}

fn check_punct(file: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    match t.text.as_str() {
        "[" => check_index(file, tokens, i, out),
        "/" | "/=" | "%" | "%=" => {
            push(
                file,
                t,
                lints::A1_DIV,
                "division/remainder may panic on zero; use checked_div or guard",
                out,
            );
        }
        _ => {}
    }
}

/// `[` opens an *index expression* only when the preceding token could
/// end an expression: an identifier, a closing `)`/`]`, or a literal.
/// That excludes attributes (`#[...]`), macro brackets (`vec![...]` —
/// preceded by `!`), array types (`<[u8; 4]>` — preceded by `<` or
/// `&`), and array literals in statement position (preceded by `=`,
/// `(`, `,`, ...).
fn check_index(file: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
        return;
    };
    let is_index = match prev.kind {
        TokenKind::Ident => !is_keyword(&prev.text),
        TokenKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    };
    if !is_index {
        return;
    }
    // `&x[..]` — indexing by the full range returns the whole slice and
    // cannot panic; allow it without an annotation.
    if let (Some(a), Some(b)) = (tokens.get(i + 1), tokens.get(i + 2)) {
        if a.is_punct("..") && b.is_punct("]") {
            return;
        }
    }
    push(
        file,
        &tokens[i],
        lints::A1_INDEX,
        "index expression may panic out of bounds; use .get()/.get_mut()",
        out,
    );
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "return"
            | "in"
            | "for"
            | "while"
            | "loop"
            | "break"
            | "continue"
            | "as"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "dyn"
            | "impl"
            | "where"
    )
}

fn push(file: &str, t: &Token, lint: &'static str, msg: &str, out: &mut Vec<Finding>) {
    out.push(Finding {
        file: file.to_string(),
        line: t.line,
        lint,
        snippet: t.text.clone(),
        message: msg.to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};

    fn run(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check("f.rs", &strip_test_code(lex(src).tokens), &mut out);
        out
    }

    fn lints_of(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|f| f.lint).collect()
    }

    #[test]
    fn flags_unwrap_and_expect_calls() {
        assert_eq!(lints_of("x.unwrap();"), [lints::A1_UNWRAP]);
        assert_eq!(lints_of("x.expect(\"msg\");"), [lints::A1_EXPECT]);
        // method definitions / non-dotted uses are not calls
        assert!(lints_of("fn expect_byte(&mut self) {}").is_empty());
        assert!(lints_of("self.expect_byte(b'x')").is_empty());
    }

    #[test]
    fn flags_panicking_macros() {
        assert_eq!(lints_of("panic!(\"boom\")"), [lints::A1_PANIC]);
        assert_eq!(lints_of("todo!()"), [lints::A1_TODO]);
        assert_eq!(lints_of("assert_eq!(a, b)"), [lints::A1_PANIC]);
        // identifiers that merely contain the word are fine
        assert!(lints_of("let panic_count = 3;").is_empty());
    }

    #[test]
    fn flags_index_expressions_only() {
        assert_eq!(lints_of("let y = xs[i];"), [lints::A1_INDEX]);
        assert_eq!(lints_of("f(a)[0]"), [lints::A1_INDEX]);
        assert!(lints_of("#[derive(Debug)] struct S;").is_empty());
        assert!(lints_of("let v = vec![1, 2];").is_empty());
        assert!(lints_of("fn f(b: &[u8]) -> [u8; 4] { todo() }").is_empty());
        assert!(lints_of("let s = &buf[..];").is_empty());
        assert!(lints_of("for x in [1, 2] {}").is_empty());
    }

    #[test]
    fn flags_division() {
        assert_eq!(lints_of("let r = a / b;"), [lints::A1_DIV]);
        assert_eq!(lints_of("a /= b;"), [lints::A1_DIV]);
        assert_eq!(lints_of("let m = a % b;"), [lints::A1_DIV]);
        // comments containing slashes never reach the token stream
        assert!(lints_of("// a / b\nlet x = 1;").is_empty());
    }

    #[test]
    fn line_numbers_are_reported() {
        let f = run("let a = 1;\nlet b = xs[a];");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }
}
