//! The audit engine: scope configuration, file walking, lint
//! dispatch, and `audit:allow` suppression.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::findings::{lints, Finding};
use crate::lexer::{lex, strip_test_code, Allow, Lexed};
use crate::{arith, discard, locks, panic_free};

/// Which files each lint family applies to. Entries are root-relative
/// paths; a directory means "every `.rs` file underneath it".
/// Missing entries are skipped silently so the config stays valid as
/// files move.
#[derive(Clone, Debug, Default)]
pub struct AuditConfig {
    /// A1 panic-freedom scope (hot-path files).
    pub a1: Vec<String>,
    /// A2 lock-order scope (everything that touches shared state).
    pub a2: Vec<String>,
    /// A3 checked-arithmetic scope (counting kernels).
    pub a3: Vec<String>,
    /// A4 discarded-Result scope (the daemon's I/O paths).
    pub a4: Vec<String>,
}

/// The project's lint scopes, mirroring ISSUE/DESIGN docs: panic
/// freedom on the request-handling and mining hot paths, lock analysis
/// across the daemon and miner state, arithmetic checks on the counting
/// kernels, and Result-discard checks on the whole daemon.
pub fn default_config() -> AuditConfig {
    let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
    AuditConfig {
        a1: s(&[
            "crates/serve/src/routes.rs",
            "crates/serve/src/server.rs",
            "crates/serve/src/http.rs",
            "crates/serve/src/json.rs",
            "crates/serve/src/state.rs",
            "crates/serve/src/persist",
            "crates/serve/src/cache.rs",
            "crates/core/src/window.rs",
            "crates/core/src/interleaved.rs",
            "crates/core/src/sequential.rs",
            "crates/core/src/incremental.rs",
            "crates/core/src/parallel.rs",
            "crates/obs/src",
            "crates/shard/src",
        ]),
        a2: s(&["crates/serve/src", "crates/core/src"]),
        a3: s(&[
            "crates/apriori/src/count.rs",
            "crates/apriori/src/hash_tree.rs",
            "crates/apriori/src/apriori.rs",
            "crates/obs/src",
        ]),
        a4: s(&["crates/serve/src", "crates/shard/src"]),
    }
}

/// A lexed file, cached so overlapping scopes lex once.
struct FileUnit {
    rel: String,
    lexed: Lexed,
}

/// Runs every lint pass over `root` and returns findings sorted by
/// (file, line, lint), with `audit:allow` suppression applied.
pub fn run_audit(root: &Path, config: &AuditConfig) -> io::Result<Vec<Finding>> {
    let mut cache: BTreeMap<String, FileUnit> = BTreeMap::new();
    let a1 = resolve_scope(root, &config.a1, &mut cache)?;
    let a2 = resolve_scope(root, &config.a2, &mut cache)?;
    let a3 = resolve_scope(root, &config.a3, &mut cache)?;
    let a4 = resolve_scope(root, &config.a4, &mut cache)?;

    let mut findings = Vec::new();

    for rel in &a1 {
        let unit = &cache[rel];
        panic_free::check(rel, &unit.lexed.tokens, &mut findings);
    }

    // A2 is a whole-scope analysis: fields and call summaries are
    // gathered across every in-scope file before edges are extracted.
    let mut lock_names = BTreeSet::new();
    for rel in &a2 {
        locks::collect_lock_fields(&cache[rel].lexed.tokens, &mut lock_names);
    }
    let mut summaries = BTreeMap::new();
    for rel in &a2 {
        locks::function_summaries(&cache[rel].lexed.tokens, &lock_names, &mut summaries);
    }
    let mut edges = Vec::new();
    for rel in &a2 {
        locks::check(
            rel,
            &cache[rel].lexed.tokens,
            &lock_names,
            &summaries,
            &mut edges,
            &mut findings,
        );
    }
    if std::env::var_os("CAR_AUDIT_DEBUG_EDGES").is_some() {
        for e in &edges {
            eprintln!("edge {} -> {} at {}:{}", e.from, e.to, e.file, e.line);
        }
    }
    findings.extend(locks::detect_cycles(&edges));

    for rel in &a3 {
        arith::check(rel, &cache[rel].lexed.tokens, &mut findings);
    }
    for rel in &a4 {
        discard::check(rel, &cache[rel].lexed.tokens, &mut findings);
    }

    let mut findings = apply_allows(findings, &cache);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint))
    });
    Ok(findings)
}

/// Expands scope entries to root-relative `.rs` file paths, lexing and
/// caching each file the first time it is seen.
fn resolve_scope(
    root: &Path,
    entries: &[String],
    cache: &mut BTreeMap<String, FileUnit>,
) -> io::Result<Vec<String>> {
    let mut rels = Vec::new();
    for entry in entries {
        let abs = root.join(entry);
        if abs.is_dir() {
            let mut files = Vec::new();
            walk_rs(&abs, &mut files)?;
            files.sort();
            for f in files {
                if let Some(rel) = relative(root, &f) {
                    rels.push(rel);
                }
            }
        } else if abs.is_file() {
            rels.push(entry.replace('\\', "/"));
        }
        // Missing paths are skipped: scopes describe intent, and the
        // acceptance gate (zero findings) is unaffected by absences.
    }
    for rel in &rels {
        if !cache.contains_key(rel) {
            let source = fs::read_to_string(root.join(rel))?;
            let mut lexed = lex(&source);
            lexed.tokens = strip_test_code(lexed.tokens);
            cache.insert(rel.clone(), FileUnit { rel: rel.clone(), lexed });
        }
    }
    rels.dedup();
    Ok(rels)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> Option<String> {
    path.strip_prefix(root).ok().map(|p| p.to_string_lossy().replace('\\', "/"))
}

/// Applies `audit:allow` directives: a directive suppresses matching
/// findings on its own line and on the next line, but only when it
/// carries a non-empty reason — a reasonless directive suppresses
/// nothing and is itself reported as `allow-no-reason`.
fn apply_allows(
    findings: Vec<Finding>,
    cache: &BTreeMap<String, FileUnit>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in findings {
        let allows: &[Allow] =
            cache.get(&f.file).map(|u| u.lexed.allows.as_slice()).unwrap_or(&[]);
        let suppressed = allows.iter().any(|a| {
            !a.reason.is_empty()
                && (a.line == f.line || a.line + 1 == f.line)
                && a.lints.iter().any(|l| l == f.lint)
        });
        if !suppressed {
            out.push(f);
        }
    }
    // Reasonless directives become findings of their own.
    for unit in cache.values() {
        for a in &unit.lexed.allows {
            if a.reason.is_empty() {
                out.push(Finding {
                    file: unit.rel.clone(),
                    line: a.line,
                    lint: lints::ALLOW_NO_REASON,
                    snippet: format!("audit:allow({})", a.lints.join(", ")),
                    message: "audit:allow requires a non-empty reason=\"...\""
                        .to_string(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end on a synthetic tree written to a temp dir.
    fn with_tree(files: &[(&str, &str)], f: impl FnOnce(&Path)) {
        let dir = std::env::temp_dir().join(format!(
            "car-audit-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = fs::remove_dir_all(&dir);
        for (rel, content) in files {
            let path = dir.join(rel);
            fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            fs::write(&path, content).expect("write");
        }
        f(&dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        with_tree(
            &[(
                "src/hot.rs",
                "fn f(x: Option<u32>) -> u32 {\n\
                 // audit:allow(a1-unwrap) reason=\"checked by caller\"\n\
                 x.unwrap()\n\
                 }\n",
            )],
            |root| {
                let config =
                    AuditConfig { a1: vec!["src/hot.rs".into()], ..Default::default() };
                let findings = run_audit(root, &config).expect("audit");
                assert!(findings.is_empty(), "unexpected: {findings:?}");
            },
        );
    }

    #[test]
    fn allow_without_reason_reports_both() {
        with_tree(
            &[(
                "src/hot.rs",
                "fn f(x: Option<u32>) -> u32 {\n\
                 x.unwrap() // audit:allow(a1-unwrap)\n\
                 }\n",
            )],
            |root| {
                let config =
                    AuditConfig { a1: vec!["src/hot.rs".into()], ..Default::default() };
                let findings = run_audit(root, &config).expect("audit");
                let lints_found: Vec<_> = findings.iter().map(|f| f.lint).collect();
                assert!(lints_found.contains(&lints::A1_UNWRAP));
                assert!(lints_found.contains(&lints::ALLOW_NO_REASON));
            },
        );
    }

    #[test]
    fn directory_scope_walks_recursively() {
        with_tree(
            &[
                ("src/a.rs", "struct S { a: Mutex<u64>, b: Mutex<u64> }\n"),
                (
                    "src/sub/b.rs",
                    "fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n",
                ),
                (
                    "src/sub/c.rs",
                    "fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }\n",
                ),
            ],
            |root| {
                let config = AuditConfig { a2: vec!["src".into()], ..Default::default() };
                let findings = run_audit(root, &config).expect("audit");
                assert!(
                    findings.iter().any(|f| f.lint == lints::A2_ORDER),
                    "expected a lock-order cycle, got {findings:?}"
                );
            },
        );
    }

    #[test]
    fn missing_scope_entries_are_skipped() {
        with_tree(&[("src/real.rs", "fn ok() {}\n")], |root| {
            let config = AuditConfig {
                a1: vec!["src/real.rs".into(), "src/not_there.rs".into()],
                ..Default::default()
            };
            let findings = run_audit(root, &config).expect("audit");
            assert!(findings.is_empty());
        });
    }
}
