//! The audit engine: scope configuration, file walking, parallel lint
//! dispatch, and `audit:allow` suppression.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::findings::{lints, Finding};
use crate::lexer::{lex, strip_test_code, Allow, Lexed};
use crate::{arith, atomics, discard, index, locks, panic_free, taint};

/// Which files each lint family applies to. Entries are root-relative
/// paths; a directory means "every `.rs` file underneath it".
/// Missing entries are skipped silently so the config stays valid as
/// files move.
#[derive(Clone, Debug, Default)]
pub struct AuditConfig {
    /// A1 panic-freedom scope (hot-path files).
    pub a1: Vec<String>,
    /// A2 lock-order scope (everything that touches shared state).
    pub a2: Vec<String>,
    /// A3 checked-arithmetic scope (counting kernels).
    pub a3: Vec<String>,
    /// A4 discarded-Result scope (the daemon's I/O paths).
    pub a4: Vec<String>,
    /// A5 taint-to-sink scope (network-facing request/fan-out paths).
    pub a5: Vec<String>,
    /// A6 atomics-discipline scope (lock-free gauges and flags).
    pub a6: Vec<String>,
}

/// The project's lint scopes, mirroring ISSUE/DESIGN docs: panic
/// freedom on the request-handling and mining hot paths, lock analysis
/// across the daemon and miner state, arithmetic checks on the counting
/// kernels, and Result-discard checks on the whole daemon.
pub fn default_config() -> AuditConfig {
    let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
    AuditConfig {
        a1: s(&[
            "crates/serve/src/routes.rs",
            "crates/serve/src/server.rs",
            "crates/serve/src/http.rs",
            "crates/serve/src/json.rs",
            "crates/serve/src/state.rs",
            "crates/serve/src/persist",
            "crates/serve/src/cache.rs",
            "crates/core/src/window.rs",
            "crates/core/src/interleaved.rs",
            "crates/core/src/sequential.rs",
            "crates/core/src/incremental.rs",
            "crates/core/src/parallel.rs",
            "crates/apriori/src/bitmap.rs",
            "crates/itemset/src/refstore.rs",
            "crates/obs/src",
            "crates/shard/src",
            "crates/chaos/src",
            "crates/cli/src/commands/trace.rs",
        ]),
        a2: s(&["crates/serve/src", "crates/core/src"]),
        a3: s(&[
            "crates/apriori/src/count.rs",
            "crates/apriori/src/hash_tree.rs",
            "crates/apriori/src/apriori.rs",
            "crates/apriori/src/bitmap.rs",
            "crates/itemset/src/refstore.rs",
            "crates/obs/src",
        ]),
        a4: s(&[
            "crates/serve/src",
            "crates/shard/src",
            "crates/chaos/src",
            "crates/cli/src/commands/trace.rs",
        ]),
        a5: s(&["crates/serve/src", "crates/shard/src"]),
        a6: s(&["crates/shard/src", "crates/serve/src", "crates/obs/src"]),
    }
}

/// Engine tuning knobs, separate from the lint scopes.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Worker threads for per-file passes; `0` means auto-detect,
    /// `1` runs fully serial (used to verify deterministic order).
    pub threads: usize,
    /// Suppress `a0-stale-allow` reporting (transition escape hatch).
    pub allow_stale_allows: bool,
}

/// The result of an audit run: findings plus engine timing.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Sorted, allow-filtered findings.
    pub findings: Vec<Finding>,
    /// End-to-end wall clock of the run in milliseconds.
    pub wall_clock_ms: u64,
}

/// A lexed file, cached so overlapping scopes lex once.
struct FileUnit {
    rel: String,
    lexed: Lexed,
}

/// Runs every lint pass over `root` with default options and returns
/// findings sorted by (file, line, lint), with `audit:allow`
/// suppression applied.
pub fn run_audit(root: &Path, config: &AuditConfig) -> io::Result<Vec<Finding>> {
    run_audit_with(root, config, &RunOptions::default()).map(|r| r.findings)
}

/// Runs the audit with explicit [`RunOptions`], returning findings and
/// timing. The run is phased: serial scope resolution and whole-scope
/// collection (lock fields, call summaries, the A5 symbol index and
/// two-pass taint summaries, the A6 atomic write classification), then
/// the per-file passes fan out across worker threads, and the per-file
/// results merge back in scope order — so the finding order is
/// byte-identical whatever the thread count.
pub fn run_audit_with(
    root: &Path,
    config: &AuditConfig,
    opts: &RunOptions,
) -> io::Result<AuditReport> {
    let started = Instant::now();
    let mut cache: BTreeMap<String, FileUnit> = BTreeMap::new();
    let a1 = resolve_scope(root, &config.a1, &mut cache)?;
    let a2 = resolve_scope(root, &config.a2, &mut cache)?;
    let a3 = resolve_scope(root, &config.a3, &mut cache)?;
    let a4 = resolve_scope(root, &config.a4, &mut cache)?;
    let a5 = resolve_scope(root, &config.a5, &mut cache)?;
    let a6 = resolve_scope(root, &config.a6, &mut cache)?;

    let mut findings = Vec::new();

    // ---- Whole-scope collection (serial, order-defining) ----

    // A2: lock fields and per-function acquisition summaries.
    let mut lock_names = BTreeSet::new();
    for rel in &a2 {
        locks::collect_lock_fields(&cache[rel].lexed.tokens, &mut lock_names);
    }
    let mut lock_summaries = BTreeMap::new();
    for rel in &a2 {
        locks::function_summaries(
            &cache[rel].lexed.tokens,
            &lock_names,
            &mut lock_summaries,
        );
    }

    // A5: symbol index per file, then two summary passes so one level
    // of call propagation is available to the checker.
    let mut fn_index: BTreeMap<&str, index::FileIndex> = BTreeMap::new();
    for rel in &a5 {
        fn_index.insert(rel.as_str(), index::index_file(&cache[rel].lexed.tokens));
    }
    let mut taint_s1 = taint::Summaries::new();
    for rel in &a5 {
        taint::summarize(
            &cache[rel].lexed.tokens,
            &fn_index[rel.as_str()],
            &taint::Summaries::new(),
            &mut taint_s1,
        );
    }
    let mut taint_summaries = taint::Summaries::new();
    for rel in &a5 {
        taint::summarize(
            &cache[rel].lexed.tokens,
            &fn_index[rel.as_str()],
            &taint_s1,
            &mut taint_summaries,
        );
    }

    // A6: atomic names, the locks guarding them, and the whole-scope
    // write classification (which atomics mirror lock-guarded state).
    let mut atomic_names = BTreeSet::new();
    let mut a6_locks = BTreeSet::new();
    for rel in &a6 {
        atomics::collect_atomics(&cache[rel].lexed.tokens, &mut atomic_names);
        locks::collect_lock_fields(&cache[rel].lexed.tokens, &mut a6_locks);
    }
    let mut usage = atomics::AtomicUsage::default();
    for rel in &a6 {
        atomics::collect_usage(
            &cache[rel].lexed.tokens,
            &atomic_names,
            &a6_locks,
            &mut usage,
        );
    }

    // ---- Per-file passes (parallel, merged in scope order) ----

    let in_scope = |scope: &[String], rel: &str| scope.iter().any(|s| s == rel);
    let mut files: Vec<&str> = Vec::new();
    for rel in a1.iter().chain(&a3).chain(&a4).chain(&a5).chain(&a6) {
        if !files.contains(&rel.as_str()) {
            files.push(rel.as_str());
        }
    }

    let per_file = |rel: &str| -> Vec<Finding> {
        let unit = &cache[rel];
        let mut out = Vec::new();
        if in_scope(&a1, rel) {
            panic_free::check(rel, &unit.lexed.tokens, &mut out);
        }
        if in_scope(&a3, rel) {
            arith::check(rel, &unit.lexed.tokens, &mut out);
        }
        if in_scope(&a4, rel) {
            discard::check(rel, &unit.lexed.tokens, &mut out);
        }
        if in_scope(&a5, rel) {
            taint::check(
                rel,
                &unit.lexed.tokens,
                &fn_index[rel],
                &taint_summaries,
                &mut out,
            );
        }
        if in_scope(&a6, rel) {
            atomics::check(
                rel,
                &unit.lexed.tokens,
                &atomic_names,
                &a6_locks,
                &usage,
                &mut out,
            );
        }
        out
    };

    let threads = match opts.threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8),
        n => n,
    };
    for mut batch in par_map(&files, threads, per_file) {
        findings.append(&mut batch);
    }

    // A2 stays serial: its edges feed one global cycle detection.
    let mut edges = Vec::new();
    for rel in &a2 {
        locks::check(
            rel,
            &cache[rel].lexed.tokens,
            &lock_names,
            &lock_summaries,
            &mut edges,
            &mut findings,
        );
    }
    if std::env::var_os("CAR_AUDIT_DEBUG_EDGES").is_some() {
        for e in &edges {
            eprintln!("edge {} -> {} at {}:{}", e.from, e.to, e.file, e.line);
        }
    }
    findings.extend(locks::detect_cycles(&edges));

    let mut findings = apply_allows(findings, &cache, !opts.allow_stale_allows);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint))
    });
    let wall_clock_ms = started.elapsed().as_millis() as u64;
    Ok(AuditReport { findings, wall_clock_ms })
}

/// Applies `f` to every item index-stripewise across `threads` scoped
/// worker threads, returning results in input order (same join-all
/// discipline as `car_core::parallel`: every handle is joined before a
/// stashed panic resumes, so no worker outlives the scope).
fn par_map<'x, T: Send>(
    items: &[&'x str],
    threads: usize,
    f: impl Fn(&'x str) -> T + Sync,
) -> Vec<T> {
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(|rel| f(rel)).collect();
    }
    let workers = threads.min(n);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < n {
                        out.push((i, f(items[i])));
                        i += workers;
                    }
                    out
                })
            })
            .collect();
        let mut first_panic = None;
        for handle in handles {
            match handle.join() {
                Ok(batch) => {
                    for (i, v) in batch {
                        slots[i] = Some(v);
                    }
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    slots.into_iter().map(|s| s.expect("par_map slot filled")).collect()
}

/// Expands scope entries to root-relative `.rs` file paths, lexing and
/// caching each file the first time it is seen.
fn resolve_scope(
    root: &Path,
    entries: &[String],
    cache: &mut BTreeMap<String, FileUnit>,
) -> io::Result<Vec<String>> {
    let mut rels = Vec::new();
    for entry in entries {
        let abs = root.join(entry);
        if abs.is_dir() {
            let mut files = Vec::new();
            walk_rs(&abs, &mut files)?;
            files.sort();
            for f in files {
                if let Some(rel) = relative(root, &f) {
                    rels.push(rel);
                }
            }
        } else if abs.is_file() {
            rels.push(entry.replace('\\', "/"));
        }
        // Missing paths are skipped: scopes describe intent, and the
        // acceptance gate (zero findings) is unaffected by absences.
    }
    for rel in &rels {
        if !cache.contains_key(rel) {
            let source = fs::read_to_string(root.join(rel))?;
            let mut lexed = lex(&source);
            lexed.tokens = strip_test_code(lexed.tokens);
            cache.insert(rel.clone(), FileUnit { rel: rel.clone(), lexed });
        }
    }
    rels.dedup();
    Ok(rels)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> Option<String> {
    path.strip_prefix(root).ok().map(|p| p.to_string_lossy().replace('\\', "/"))
}

/// Applies `audit:allow` directives: a directive suppresses matching
/// findings on its own line and on the next line, but only when it
/// carries a non-empty reason — a reasonless directive suppresses
/// nothing and is itself reported as `allow-no-reason`. When
/// `report_stale` is set, a *reasoned* directive that suppressed zero
/// findings is reported as `a0-stale-allow` so dead escape hatches
/// can't accumulate.
fn apply_allows(
    findings: Vec<Finding>,
    cache: &BTreeMap<String, FileUnit>,
    report_stale: bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut used: BTreeSet<(&str, u32)> = BTreeSet::new();
    for f in findings {
        let allows: &[Allow] =
            cache.get(&f.file).map(|u| u.lexed.allows.as_slice()).unwrap_or(&[]);
        let hit = allows.iter().find(|a| {
            !a.reason.is_empty()
                && (a.line == f.line || a.line + 1 == f.line)
                && a.lints.iter().any(|l| l == f.lint)
        });
        match hit {
            Some(a) => {
                let key = cache.get_key_value(&f.file).map(|(k, _)| k.as_str());
                if let Some(file) = key {
                    used.insert((file, a.line));
                }
            }
            None => out.push(f),
        }
    }
    for unit in cache.values() {
        for a in &unit.lexed.allows {
            if a.reason.is_empty() {
                // Reasonless directives become findings of their own.
                out.push(Finding {
                    file: unit.rel.clone(),
                    line: a.line,
                    lint: lints::ALLOW_NO_REASON,
                    snippet: format!("audit:allow({})", a.lints.join(", ")),
                    message: "audit:allow requires a non-empty reason=\"...\""
                        .to_string(),
                });
            } else if report_stale && !used.contains(&(unit.rel.as_str(), a.line)) {
                out.push(Finding {
                    file: unit.rel.clone(),
                    line: a.line,
                    lint: lints::A0_STALE_ALLOW,
                    snippet: format!("audit:allow({})", a.lints.join(", ")),
                    message: "reasoned audit:allow suppresses no findings; remove \
                              it or re-justify (transition: --allow-stale-allows)"
                        .to_string(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end on a synthetic tree written to a temp dir.
    fn with_tree(files: &[(&str, &str)], f: impl FnOnce(&Path)) {
        let dir = std::env::temp_dir().join(format!(
            "car-audit-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = fs::remove_dir_all(&dir);
        for (rel, content) in files {
            let path = dir.join(rel);
            fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            fs::write(&path, content).expect("write");
        }
        f(&dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        with_tree(
            &[(
                "src/hot.rs",
                "fn f(x: Option<u32>) -> u32 {\n\
                 // audit:allow(a1-unwrap) reason=\"checked by caller\"\n\
                 x.unwrap()\n\
                 }\n",
            )],
            |root| {
                let config =
                    AuditConfig { a1: vec!["src/hot.rs".into()], ..Default::default() };
                let findings = run_audit(root, &config).expect("audit");
                assert!(findings.is_empty(), "unexpected: {findings:?}");
            },
        );
    }

    #[test]
    fn allow_without_reason_reports_both() {
        with_tree(
            &[(
                "src/hot.rs",
                "fn f(x: Option<u32>) -> u32 {\n\
                 x.unwrap() // audit:allow(a1-unwrap)\n\
                 }\n",
            )],
            |root| {
                let config =
                    AuditConfig { a1: vec!["src/hot.rs".into()], ..Default::default() };
                let findings = run_audit(root, &config).expect("audit");
                let lints_found: Vec<_> = findings.iter().map(|f| f.lint).collect();
                assert!(lints_found.contains(&lints::A1_UNWRAP));
                assert!(lints_found.contains(&lints::ALLOW_NO_REASON));
            },
        );
    }

    #[test]
    fn directory_scope_walks_recursively() {
        with_tree(
            &[
                ("src/a.rs", "struct S { a: Mutex<u64>, b: Mutex<u64> }\n"),
                (
                    "src/sub/b.rs",
                    "fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n",
                ),
                (
                    "src/sub/c.rs",
                    "fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }\n",
                ),
            ],
            |root| {
                let config = AuditConfig { a2: vec!["src".into()], ..Default::default() };
                let findings = run_audit(root, &config).expect("audit");
                assert!(
                    findings.iter().any(|f| f.lint == lints::A2_ORDER),
                    "expected a lock-order cycle, got {findings:?}"
                );
            },
        );
    }

    #[test]
    fn missing_scope_entries_are_skipped() {
        with_tree(&[("src/real.rs", "fn ok() {}\n")], |root| {
            let config = AuditConfig {
                a1: vec!["src/real.rs".into(), "src/not_there.rs".into()],
                ..Default::default()
            };
            let findings = run_audit(root, &config).expect("audit");
            assert!(findings.is_empty());
        });
    }
}
