//! A6: lock-free/atomics discipline (`a6-relaxed-control`,
//! `a6-relaxed-mirror`, `a6-torn-write`).
//!
//! The PR 6 router publishes `units_routed`/replay-depth gauges as
//! `AtomicU64` mirrors of state mutated under the ingest lock: writes
//! happen inside the critical section, reads happen lock-free on the
//! metrics path. That pattern is *fine* — as long as everyone knows the
//! mirror is advisory. It stops being fine silently: someone reads the
//! mirror with `Ordering::Relaxed` and branches on it, or adds a second
//! writer outside the lock, and the "advisory copy" has become an
//! unsynchronised source of truth. These lints make each step explicit:
//!
//! * `a6-relaxed-control` — a `Relaxed` load feeding an `if`/`while`/
//!   `match` decision (directly, or via a `let` binding later used in a
//!   condition in the same function). Relaxed loads order nothing; a
//!   control decision based on one usually wants `Acquire` or a note
//!   explaining why staleness is acceptable.
//! * `a6-relaxed-mirror` — a `Relaxed` load, outside any lock, of an
//!   atomic that is written under a lock somewhere in the A6 scope
//!   (name-keyed, whole-scope, like the A2 lock graph).
//! * `a6-torn-write` — an atomic written both under a lock and outside
//!   one (any ordering): the lock-guarded invariant the in-lock writer
//!   maintains can be torn by the free writer.
//!
//! All three are suppressible with a reasoned `audit:allow`, which is
//! the point: the annotation documents the staleness contract at the
//! exact read/write site.

use std::collections::BTreeSet;

use crate::findings::{lints, Finding};
use crate::lexer::{Token, TokenKind};
use crate::locks::{acquisition_at, binding_of, for_each_function};

/// Atomic operations that mutate the value.
const WRITE_OPS: [&str; 12] = [
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Collects names declared as `Atomic*` fields/statics/parameters:
/// `name : [Arc<][std::sync::atomic::]AtomicU64`, same backwalk idiom
/// as the A2 lock-field discovery.
pub fn collect_atomics(tokens: &[Token], out: &mut BTreeSet<String>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !t.text.starts_with("Atomic")
            || t.text.len() <= "Atomic".len()
        {
            continue;
        }
        let mut k = i;
        while k > 0 {
            let p = &tokens[k - 1];
            let wrapper = (p.is_ident("Arc")
                || p.is_ident("std")
                || p.is_ident("sync")
                || p.is_ident("atomic"))
                || p.is_punct("::")
                || p.is_punct("<")
                || p.is_punct("&");
            if !wrapper {
                break;
            }
            k -= 1;
        }
        if k >= 2 && tokens[k - 1].is_punct(":") {
            let name = &tokens[k - 2];
            if name.kind == TokenKind::Ident {
                out.insert(name.text.clone());
            }
        }
    }
}

/// Whole-scope write classification: which atomics are written under a
/// lock, and which are written outside any lock.
#[derive(Clone, Debug, Default)]
pub struct AtomicUsage {
    /// Atomics with at least one write while a tracked lock is held.
    pub locked_writes: BTreeSet<String>,
    /// Atomics with at least one write outside any tracked lock.
    pub unlocked_writes: BTreeSet<String>,
}

/// An atomic operation site observed while scanning a function body.
struct OpSite {
    /// Token index of the atomic's name.
    idx: usize,
    /// The atomic's name.
    name: String,
    /// `true` for the `WRITE_OPS` family, `false` for `load`.
    is_write: bool,
    /// An `Ordering::Relaxed` argument appears in the call.
    relaxed: bool,
    /// A tracked lock is held at the site.
    under_lock: bool,
    /// 1-based line of the operation.
    line: u32,
}

/// Scans one function body for atomic ops, tracking held locks with
/// the same rules as the A2 pass (block scope, `drop`, statement-end
/// for temporaries).
fn for_each_op(
    tokens: &[Token],
    start: usize,
    end: usize,
    atomics: &BTreeSet<String>,
    lock_names: &BTreeSet<String>,
    mut cb: impl FnMut(OpSite),
) {
    struct Held {
        binding: Option<String>,
        depth: usize,
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
        } else if t.is_punct(";") {
            held.retain(|h| h.binding.is_some());
        } else if t.is_ident("drop") && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            if let Some(arg) = tokens.get(i + 2) {
                held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
            }
        } else if acquisition_at(tokens, i, lock_names).is_some() {
            held.push(Held { binding: binding_of(tokens, i), depth });
            i += 5;
            continue;
        } else if t.kind == TokenKind::Ident
            && atomics.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("."))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            let method = &tokens[i + 2];
            let is_write = WRITE_OPS.contains(&method.text.as_str());
            if is_write || method.is_ident("load") {
                // Find the matching `)` and look for `Relaxed` inside.
                let mut pd = 0i32;
                let mut j = i + 3;
                let mut relaxed = false;
                while j < end {
                    let p = &tokens[j];
                    if p.is_punct("(") {
                        pd += 1;
                    } else if p.is_punct(")") {
                        pd -= 1;
                        if pd == 0 {
                            break;
                        }
                    } else if p.is_ident("Relaxed") {
                        relaxed = true;
                    }
                    j += 1;
                }
                cb(OpSite {
                    idx: i,
                    name: t.text.clone(),
                    is_write,
                    relaxed,
                    under_lock: !held.is_empty(),
                    line: t.line,
                });
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Aggregates write classification for one file into `usage`.
pub fn collect_usage(
    tokens: &[Token],
    atomics: &BTreeSet<String>,
    lock_names: &BTreeSet<String>,
    usage: &mut AtomicUsage,
) {
    for_each_function(tokens, |_, start, end| {
        for_each_op(tokens, start, end, atomics, lock_names, |op| {
            if op.is_write {
                if op.under_lock {
                    usage.locked_writes.insert(op.name.clone());
                } else {
                    usage.unlocked_writes.insert(op.name.clone());
                }
            }
        });
    });
}

/// Token ranges of `if`/`while`/`match` condition expressions (keyword
/// to the opening `{` at depth 0) within `[start, end)`.
fn condition_ranges(tokens: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in start..end {
        let t = &tokens[i];
        if !(t.is_ident("if") || t.is_ident("while") || t.is_ident("match")) {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < end {
            let p = &tokens[j];
            if p.is_punct("(") || p.is_punct("[") {
                depth += 1;
            } else if p.is_punct(")") || p.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && (p.is_punct("{") || p.is_punct(";")) {
                break;
            }
            j += 1;
        }
        out.push((i + 1, j));
    }
    out
}

/// Runs the A6 checks over one file. `usage` must be the whole-scope
/// aggregate from [`collect_usage`].
pub fn check(
    file: &str,
    tokens: &[Token],
    atomics: &BTreeSet<String>,
    lock_names: &BTreeSet<String>,
    usage: &AtomicUsage,
    findings: &mut Vec<Finding>,
) {
    for_each_function(tokens, |fn_name, start, end| {
        let conds = condition_ranges(tokens, start, end);
        let in_cond = |idx: usize| conds.iter().any(|&(s, e)| idx >= s && idx < e);
        // `let x = FLAG.load(Relaxed);` followed by `if x ...` later in
        // the same function also counts as control-feeding.
        let feeds_later_cond = |idx: usize, binding: &str| {
            conds.iter().any(|&(s, e)| {
                s > idx
                    && tokens[s..e]
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && t.text == binding)
            })
        };
        for_each_op(tokens, start, end, atomics, lock_names, |op| {
            if op.is_write {
                if !op.under_lock && usage.locked_writes.contains(&op.name) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: op.line,
                        lint: lints::A6_TORN_WRITE,
                        snippet: format!("{}.<write>", op.name),
                        message: format!(
                            "atomic `{}` is written outside a lock in `{}` but also \
                             written under a lock elsewhere; the in-lock invariant \
                             can be torn",
                            op.name, fn_name
                        ),
                    });
                }
                return;
            }
            if !op.relaxed {
                return;
            }
            let control = in_cond(op.idx)
                || binding_of(tokens, op.idx)
                    .is_some_and(|b| feeds_later_cond(op.idx, &b));
            if control {
                findings.push(Finding {
                    file: file.to_string(),
                    line: op.line,
                    lint: lints::A6_RELAXED_CONTROL,
                    snippet: format!("{}.load(Relaxed)", op.name),
                    message: format!(
                        "Relaxed load of `{}` feeds a control-flow decision in `{}`; \
                         use Acquire or document why staleness is safe",
                        op.name, fn_name
                    ),
                });
            } else if !op.under_lock && usage.locked_writes.contains(&op.name) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: op.line,
                    lint: lints::A6_RELAXED_MIRROR,
                    snippet: format!("{}.load(Relaxed)", op.name),
                    message: format!(
                        "Relaxed load of `{}` in `{}` reads a mirror of lock-guarded \
                         state; document the staleness contract or read under the lock",
                        op.name, fn_name
                    ),
                });
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::locks::collect_lock_fields;

    fn run(src: &str) -> Vec<Finding> {
        let tokens = strip_test_code(lex(src).tokens);
        let mut atomics = BTreeSet::new();
        collect_atomics(&tokens, &mut atomics);
        let mut lock_names = BTreeSet::new();
        collect_lock_fields(&tokens, &mut lock_names);
        let mut usage = AtomicUsage::default();
        collect_usage(&tokens, &atomics, &lock_names, &mut usage);
        let mut findings = Vec::new();
        check("f.rs", &tokens, &atomics, &lock_names, &usage, &mut findings);
        findings
    }

    #[test]
    fn discovers_fields_and_statics() {
        let src = "static MAX: AtomicU8 = AtomicU8::new(0);\n\
                   struct S { gauge: Arc<AtomicU64>, n: u64 }\n";
        let tokens = lex(src).tokens;
        let mut atomics = BTreeSet::new();
        collect_atomics(&tokens, &mut atomics);
        assert!(atomics.contains("MAX"));
        assert!(atomics.contains("gauge"));
        assert!(!atomics.contains("n"));
    }

    #[test]
    fn relaxed_load_in_condition_is_control() {
        let f = run("struct S { shutdown: AtomicBool }\n\
                     fn f(s: &S) {\n\
                     if s.shutdown.load(Ordering::Relaxed) { return; }\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].lint, f[0].line), (lints::A6_RELAXED_CONTROL, 3));
    }

    #[test]
    fn relaxed_load_bound_then_branched_is_control() {
        let f = run("struct S { ceiling: AtomicU8 }\n\
                     fn f(s: &S, level: u8) {\n\
                     let c = s.ceiling.load(Ordering::Relaxed);\n\
                     if level > c { return; }\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].lint, f[0].line), (lints::A6_RELAXED_CONTROL, 3));
    }

    #[test]
    fn acquire_load_in_condition_is_clean() {
        let f = run("struct S { shutdown: AtomicBool }\n\
                     fn f(s: &S) {\n\
                     if s.shutdown.load(Ordering::Acquire) { return; }\n\
                     }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mirror_read_outside_lock_is_flagged() {
        let f = run("struct S { inner: Mutex<u64>, gauge: AtomicU64 }\n\
                     fn update(s: &S) {\n\
                     let g = s.inner.lock();\n\
                     s.gauge.store(1, Ordering::Relaxed);\n\
                     }\n\
                     fn metrics(s: &S) -> u64 {\n\
                     s.gauge.load(Ordering::Relaxed)\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].lint, f[0].line), (lints::A6_RELAXED_MIRROR, 7));
    }

    #[test]
    fn pure_counter_without_lock_writes_is_clean() {
        let f = run("struct S { hits: AtomicU64 }\n\
                     fn bump(s: &S) { s.hits.fetch_add(1, Ordering::Relaxed); }\n\
                     fn read(s: &S) -> u64 { s.hits.load(Ordering::Relaxed) }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn write_both_under_and_outside_lock_is_torn() {
        let f = run("struct S { inner: Mutex<u64>, gauge: AtomicU64 }\n\
                     fn a(s: &S) {\n\
                     let g = s.inner.lock();\n\
                     s.gauge.store(1, Ordering::Release);\n\
                     }\n\
                     fn b(s: &S) {\n\
                     s.gauge.store(0, Ordering::Release);\n\
                     }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].lint, f[0].line), (lints::A6_TORN_WRITE, 7));
    }

    #[test]
    fn mirror_read_under_the_lock_is_clean() {
        let f = run("struct S { inner: Mutex<u64>, gauge: AtomicU64 }\n\
                     fn update(s: &S) {\n\
                     let g = s.inner.lock();\n\
                     s.gauge.store(1, Ordering::Relaxed);\n\
                     let now = s.gauge.load(Ordering::Relaxed);\n\
                     }\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
