//! A hand-rolled, comment/string/lifetime-aware Rust lexer.
//!
//! The auditor needs to reason about *code*, not about the contents of
//! string literals, doc examples, or comments — a `// panic!` in prose
//! must never trip the panic-freedom lint. Pulling in `syn` is not an
//! option (the build environment has no crates registry), and a full
//! parser is unnecessary: every project lint is expressible over a
//! token stream with line numbers. So this module implements exactly
//! the subset of Rust lexing the lints need:
//!
//! * line (`//`) and nested block (`/* */`) comments are skipped, but
//!   scanned for `audit:allow(...)` directives;
//! * string, raw string (`r#"..."#`), byte string, and char literals
//!   are opaque single tokens;
//! * the `'a` lifetime vs `'a'` char-literal ambiguity is resolved with
//!   one byte of lookahead, the same way rustc's lexer does;
//! * multi-byte operators the lints care about (`+=`, `*=`, `/=`, `..`,
//!   `::`, `->`, `=>`, ...) come out as single punctuation tokens, so a
//!   lint matching `/` never fires inside `/=` by accident.
//!
//! Everything else (keywords vs identifiers, expression structure) is
//! left to the individual lints, which pattern-match short token
//! windows.

use std::fmt;

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// Punctuation / operator, possibly multi-byte (`+=`, `::`, `{`).
    Punct,
    /// A numeric literal (`42`, `0x1F`, `2.5e-3`).
    Num,
    /// A string or byte-string literal (raw or not), content elided.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexeme with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The kind of token.
    pub kind: TokenKind,
    /// The token text (elided to `""` for string literals — no lint
    /// inspects their contents, and eliding keeps findings small).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TokenKind::Str => write!(f, "\"...\""),
            _ => write!(f, "{}", self.text),
        }
    }
}

/// An `audit:allow` directive found in a comment.
///
/// Grammar (inside any comment):
/// `audit:allow(<lint>[, <lint>...]) reason="<non-empty text>"`.
/// The directive suppresses matching findings on its own line and on
/// the line directly below it (trailing- and leading-comment styles).
#[derive(Clone, Debug, PartialEq)]
pub struct Allow {
    /// 1-based line of the comment containing the directive.
    pub line: u32,
    /// Lint ids the directive names.
    pub lints: Vec<String>,
    /// The reason text; empty when missing (itself a finding).
    pub reason: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Allow directives harvested from comments.
    pub allows: Vec<Allow>,
}

/// Multi-byte punctuation, longest first so maximal-munch matching is a
/// simple linear scan.
const MULTI_PUNCT: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<", ">>", "..",
];

/// Lexes `source` into tokens and allow directives.
pub fn lex(source: &str) -> Lexed {
    Lexer { bytes: source.as_bytes(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.scan_allow(&text, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        let mut depth = 0usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if b == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        // A block comment can span lines; attribute the directive to the
        // comment's *last* line so "directly above the code" works.
        self.scan_allow(&text, self.line.max(start_line));
    }

    /// Consumes a `"..."` literal (escape-aware, may span lines).
    fn string_literal(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Str, String::new(), line);
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'a'`).
    fn quote(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(b'\\') => false,
            Some(b) if is_ident_start(b) => self.peek(2) != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            let start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push(TokenKind::Lifetime, text, line);
        } else {
            // Char literal: consume to the closing quote, honouring `\`.
            self.pos += 1;
            while let Some(b) = self.peek(0) {
                match b {
                    b'\\' => self.pos += 2,
                    b'\'' => {
                        self.pos += 1;
                        break;
                    }
                    _ => self.pos += 1,
                }
            }
            self.push(TokenKind::Char, String::new(), line);
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `b'x'`, `br#"..."#`.
    /// Returns false when the `r`/`b` begins a plain identifier.
    fn raw_or_byte_literal(&mut self) -> bool {
        let line = self.line;
        let mut i = self.pos;
        let mut raw = false;
        if self.bytes.get(i) == Some(&b'b') {
            i += 1;
        }
        if self.bytes.get(i) == Some(&b'r') {
            raw = true;
            i += 1;
        }
        let hashes_start = i;
        while raw && self.bytes.get(i) == Some(&b'#') {
            i += 1;
        }
        let hashes = i - hashes_start;
        match self.bytes.get(i) {
            Some(&b'"') => {
                // A (raw/byte) string literal.
                self.pos = i + 1;
                loop {
                    match self.peek(0) {
                        None => break,
                        Some(b'\n') => {
                            self.line += 1;
                            self.pos += 1;
                        }
                        Some(b'\\') if !raw => self.pos += 2,
                        Some(b'"') => {
                            self.pos += 1;
                            if !raw || (0..hashes).all(|h| self.peek(h) == Some(b'#')) {
                                self.pos += hashes;
                                break;
                            }
                        }
                        Some(_) => self.pos += 1,
                    }
                }
                self.push(TokenKind::Str, String::new(), line);
                true
            }
            Some(&b'\'') if self.bytes.get(self.pos) == Some(&b'b') && !raw => {
                // Byte literal b'x'.
                self.pos = i; // at the quote
                self.quote();
                true
            }
            _ if raw && hashes > 0 => {
                // Raw identifier r#foo: emit the identifier itself.
                self.pos = i;
                self.ident();
                true
            }
            _ => false,
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut prev = 0u8;
        while let Some(b) = self.peek(0) {
            let cont = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.'
                    && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                    && prev != b'.')
                || ((b == b'+' || b == b'-') && (prev == b'e' || prev == b'E'));
            if !cont {
                break;
            }
            prev = b;
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Num, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let rest = &self.bytes[self.pos..];
        for op in MULTI_PUNCT {
            if rest.starts_with(op.as_bytes()) {
                self.pos += op.len();
                self.push(TokenKind::Punct, op.to_string(), line);
                return;
            }
        }
        let b = self.bytes[self.pos..self.pos + 1].to_vec();
        self.pos += 1;
        self.push(TokenKind::Punct, String::from_utf8_lossy(&b).into_owned(), line);
    }

    /// Parses `audit:allow(a, b) reason="..."` out of a comment's text.
    fn scan_allow(&mut self, comment: &str, line: u32) {
        let Some(at) = comment.find("audit:allow(") else {
            return;
        };
        let after = &comment[at + "audit:allow(".len()..];
        let Some(close) = after.find(')') else {
            return;
        };
        let lints: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if lints.is_empty() {
            return;
        }
        let tail = &after[close + 1..];
        let reason = tail
            .find("reason=\"")
            .and_then(|r| {
                let body = &tail[r + "reason=\"".len()..];
                body.find('"').map(|end| body[..end].trim().to_string())
            })
            .unwrap_or_default();
        self.out.allows.push(Allow { line, lints, reason });
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Removes the bodies of `#[cfg(test)]` items and `#[test]` functions
/// from a token stream.
///
/// The project lints govern production code; test code is free to
/// `unwrap()` at will. Detection is attribute-driven: an attribute whose
/// tokens include `test` (and not `not`, so `#[cfg(not(test))]` and
/// `#[cfg_attr(not(test), ...)]` survive) causes the next brace-balanced
/// `{...}` block — the test module or test function body — to be
/// dropped.
pub fn strip_test_code(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Collect the attribute's tokens.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                } else if t.is_ident("test") {
                    has_test = true;
                } else if t.is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip item tokens up to its body, then the whole body.
                while j < tokens.len() && !tokens[j].is_punct("{") {
                    j += 1;
                }
                let mut braces = 0usize;
                while j < tokens.len() {
                    if tokens[j].is_punct("{") {
                        braces += 1;
                    } else if tokens[j].is_punct("}") {
                        braces -= 1;
                        if braces == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r#"
            // a panic! in prose and x.unwrap() too
            /* block unwrap() */
            let s = "panic!(\"no\")";
            let r = r#unused;
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"unused".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let x = r#"contains "quotes" and unwrap()"# ; done"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"done".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").tokens;
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn multibyte_ops_are_single_tokens() {
        let toks = lex("a += 1; b /= 2; c .. d; e::f; g / h").tokens;
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"/="));
        assert!(puncts.contains(&".."));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"/"));
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let toks = lex("1.5e-3 + 0x1F; 0..10; 9.0e15").tokens;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1.5e-3", "0x1F", "0", "10", "9.0e15"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\n\"two\nline\"\nc").tokens;
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(2));
        assert_eq!(find("c"), Some(6));
    }

    #[test]
    fn allow_directive_with_reason() {
        let lexed =
            lex("// audit:allow(a1-unwrap, a1-index) reason=\"bounded above\"\nx");
        assert_eq!(
            lexed.allows,
            vec![Allow {
                line: 1,
                lints: vec!["a1-unwrap".into(), "a1-index".into()],
                reason: "bounded above".into(),
            }]
        );
    }

    #[test]
    fn allow_directive_without_reason_is_kept_with_empty_reason() {
        let lexed = lex("let x = 1; // audit:allow(a1-unwrap)");
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].reason.is_empty());
    }

    #[test]
    fn strip_test_code_removes_cfg_test_modules() {
        let src = "
            fn real() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
            fn after() {}
        ";
        let toks = strip_test_code(lex(src).tokens);
        let ids: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"real"));
        assert!(ids.contains(&"after"));
        assert!(!ids.contains(&"tests"));
        assert!(!ids.contains(&"t"));
        // exactly one unwrap survives (the real one)
        assert_eq!(ids.iter().filter(|&&s| s == "unwrap").count(), 1);
    }

    #[test]
    fn strip_test_code_keeps_cfg_not_test() {
        let src = "
            #[cfg(not(test))]
            fn keep() { real_code(); }
            #[cfg_attr(not(test), warn(missing_docs))]
            mod m { fn also_kept() {} }
        ";
        let toks = strip_test_code(lex(src).tokens);
        let ids: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(ids.contains(&"keep"));
        assert!(ids.contains(&"also_kept"));
    }
}
