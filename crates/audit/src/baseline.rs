//! Baseline files: grandfathering known findings.
//!
//! A baseline is a JSON-lines file — one object per suppressed finding,
//! exactly the objects `--format json` emits (`file`, `lint`,
//! `snippet`; `line` is ignored so unrelated edits don't invalidate the
//! baseline). Suppression is count-aware: a baseline with two
//! `a1-unwrap` entries for a file suppresses at most two matching
//! findings; a third is reported. `--write-baseline <path>` snapshots
//! the current findings, and the tree is expected to keep the baseline
//! empty once the grandfathered debt is paid down.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::findings::Finding;

/// One baseline entry. `line` is intentionally absent.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Root-relative file path.
    pub file: String,
    /// Lint id.
    pub lint: String,
    /// Finding snippet (token text), narrowing the match.
    pub snippet: String,
}

/// Parses a baseline file. Blank lines and `#` comments are skipped;
/// a line that is not a recognisable entry is an error (a silently
/// ignored suppression would be worse than a loud failure).
pub fn load(path: &Path) -> io::Result<Vec<BaselineEntry>> {
    let text = fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let entry = parse_entry(line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: malformed baseline entry", path.display(), idx + 1),
            )
        })?;
        entries.push(entry);
    }
    Ok(entries)
}

/// Renders findings as baseline lines.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# car-audit baseline: grandfathered findings, one JSON object per line.\n\
         # Remove entries as the underlying findings are fixed.\n",
    );
    for f in findings {
        out.push_str(&format!(
            "{{\"file\":{},\"lint\":{},\"snippet\":{}}}\n",
            crate::findings::json_str(&f.file),
            crate::findings::json_str(f.lint),
            crate::findings::json_str(&f.snippet),
        ));
    }
    out
}

/// Removes baselined findings (count-aware) and returns the survivors.
pub fn apply(findings: Vec<Finding>, baseline: &[BaselineEntry]) -> Vec<Finding> {
    let mut budget: BTreeMap<BaselineEntry, usize> = BTreeMap::new();
    for e in baseline {
        *budget.entry(e.clone()).or_insert(0) += 1;
    }
    findings
        .into_iter()
        .filter(|f| {
            let key = BaselineEntry {
                file: f.file.clone(),
                lint: f.lint.to_string(),
                snippet: f.snippet.clone(),
            };
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            }
        })
        .collect()
}

/// Extracts `"key":"value"` pairs from one flat JSON object line. This
/// is not a general JSON parser — it handles exactly the objects this
/// crate writes (string values with `\"`, `\\`, `\n`, `\t`, `\r`,
/// `\uXXXX` escapes, plus the numeric `line` field, which it skips).
fn parse_entry(line: &str) -> Option<BaselineEntry> {
    let mut file = None;
    let mut lint = None;
    let mut snippet = None;
    for key in ["file", "lint", "snippet"] {
        let needle = format!("\"{key}\":");
        let at = line.find(&needle)?;
        let rest = line.get(at + needle.len()..)?;
        let rest = rest.trim_start();
        let value = parse_json_string(rest)?;
        match key {
            "file" => file = Some(value),
            "lint" => lint = Some(value),
            _ => snippet = Some(value),
        }
    }
    Some(BaselineEntry { file: file?, lint: lint?, snippet: snippet? })
}

fn parse_json_string(s: &str) -> Option<String> {
    let mut chars = s.chars();
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                '/' => out.push('/'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::lints;

    fn finding(file: &str, lint: &'static str, snippet: &str) -> Finding {
        Finding {
            file: file.into(),
            line: 1,
            lint,
            snippet: snippet.into(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_render_parse() {
        let f = finding("a/b.rs", lints::A1_UNWRAP, "unwrap");
        let text = render(std::slice::from_ref(&f));
        let entry = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(parse_entry)
            .next()
            .expect("one entry");
        assert_eq!(entry.file, "a/b.rs");
        assert_eq!(entry.lint, "a1-unwrap");
        assert_eq!(entry.snippet, "unwrap");
    }

    #[test]
    fn suppression_is_count_aware() {
        let baseline = vec![BaselineEntry {
            file: "a.rs".into(),
            lint: "a1-unwrap".into(),
            snippet: "unwrap".into(),
        }];
        let findings = vec![
            finding("a.rs", lints::A1_UNWRAP, "unwrap"),
            finding("a.rs", lints::A1_UNWRAP, "unwrap"),
        ];
        let left = apply(findings, &baseline);
        assert_eq!(left.len(), 1);
    }

    #[test]
    fn unrelated_findings_survive() {
        let baseline = vec![BaselineEntry {
            file: "a.rs".into(),
            lint: "a1-unwrap".into(),
            snippet: "unwrap".into(),
        }];
        let findings = vec![finding("b.rs", lints::A1_UNWRAP, "unwrap")];
        assert_eq!(apply(findings, &baseline).len(), 1);
    }

    #[test]
    fn escaped_strings_parse() {
        let entry =
            parse_entry(r#"{"file":"a\"b.rs","lint":"a1-panic","snippet":"x\\y"}"#)
                .expect("parses");
        assert_eq!(entry.file, "a\"b.rs");
        assert_eq!(entry.snippet, "x\\y");
    }
}
