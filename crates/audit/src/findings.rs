//! Finding and lint-id types shared by all audit passes.

use std::fmt;

/// Stable lint identifiers.
///
/// These appear in diagnostics, `audit:allow(...)` directives, baseline
/// files, and CI output; renaming one is a breaking change for all of
/// those, so they are centralised here.
pub mod lints {
    /// `unwrap()` call in a panic-free scope.
    pub const A1_UNWRAP: &str = "a1-unwrap";
    /// `expect(...)` call in a panic-free scope.
    pub const A1_EXPECT: &str = "a1-expect";
    /// `panic!`/`unreachable!`/`assert!` macro in a panic-free scope.
    pub const A1_PANIC: &str = "a1-panic";
    /// `todo!`/`unimplemented!` macro in a panic-free scope.
    pub const A1_TODO: &str = "a1-todo";
    /// Slice/array index expression in a panic-free scope.
    pub const A1_INDEX: &str = "a1-index";
    /// Integer division (`/`, `/=`, `%`) in a panic-free scope.
    pub const A1_DIV: &str = "a1-div";
    /// Cycle in the global lock-ordering graph.
    pub const A2_ORDER: &str = "a2-order";
    /// Blocking call (`.join()`, `.recv()`, blocking send) while a lock
    /// is held.
    pub const A2_BLOCKING: &str = "a2-blocking";
    /// Unchecked `+`/`*`/`+=`/`*=` on a support/confidence counter.
    pub const A3_UNCHECKED: &str = "a3-unchecked";
    /// `let _ =` discarding a fallible I/O result.
    pub const A4_DISCARD: &str = "a4-discard";
    /// `audit:allow` directive with a missing or empty reason.
    pub const ALLOW_NO_REASON: &str = "allow-no-reason";
    /// Reasoned `audit:allow` directive that suppressed zero findings.
    pub const A0_STALE_ALLOW: &str = "a0-stale-allow";
    /// Source-derived value reaching a protocol sink (request line,
    /// WAL framing, filesystem path).
    pub const A5_TAINT_TO_SINK: &str = "a5-taint-to-sink";
    /// `Ordering::Relaxed` load feeding a control-flow decision.
    pub const A6_RELAXED_CONTROL: &str = "a6-relaxed-control";
    /// `Ordering::Relaxed` load of an atomic that mirrors lock-guarded
    /// state (written under a lock elsewhere).
    pub const A6_RELAXED_MIRROR: &str = "a6-relaxed-mirror";
    /// Atomic written both under a lock and outside any lock.
    pub const A6_TORN_WRITE: &str = "a6-torn-write";

    /// All lint ids, for `--help` and directive validation.
    pub const ALL: [&str; 16] = [
        A0_STALE_ALLOW,
        A1_UNWRAP,
        A1_EXPECT,
        A1_PANIC,
        A1_TODO,
        A1_INDEX,
        A1_DIV,
        A2_ORDER,
        A2_BLOCKING,
        A3_UNCHECKED,
        A4_DISCARD,
        A5_TAINT_TO_SINK,
        A6_RELAXED_CONTROL,
        A6_RELAXED_MIRROR,
        A6_TORN_WRITE,
        ALLOW_NO_REASON,
    ];

    /// One-line description of a lint id, used for SARIF rule metadata.
    pub fn describe(lint: &str) -> &'static str {
        match lint {
            A0_STALE_ALLOW => "reasoned audit:allow directive suppresses no findings",
            A1_UNWRAP => "unwrap() in a panic-free scope",
            A1_EXPECT => "expect() in a panic-free scope",
            A1_PANIC => "panicking macro in a panic-free scope",
            A1_TODO => "todo!/unimplemented! in a panic-free scope",
            A1_INDEX => "slice/array index in a panic-free scope",
            A1_DIV => "unchecked integer division in a panic-free scope",
            A2_ORDER => "cycle in the global lock-ordering graph",
            A2_BLOCKING => "blocking call while holding a lock",
            A3_UNCHECKED => "unchecked arithmetic on a support counter",
            A4_DISCARD => "fallible I/O result discarded with let _ =",
            A5_TAINT_TO_SINK => {
                "untrusted input reaches a protocol sink without sanitization"
            }
            A6_RELAXED_CONTROL => "Relaxed atomic load feeds a control-flow decision",
            A6_RELAXED_MIRROR => "Relaxed load of a lock-mirrored atomic",
            A6_TORN_WRITE => "atomic written both under and outside a lock",
            ALLOW_NO_REASON => "audit:allow directive without a reason",
            _ => "project audit lint",
        }
    }
}

/// One diagnostic produced by an audit pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file, relative to the audited root.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable lint id (one of [`lints`]).
    pub lint: &'static str,
    /// A short source snippet or token context.
    pub snippet: String,
    /// Human-readable explanation of the problem.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} ({})",
            self.file, self.line, self.lint, self.message, self.snippet
        )
    }
}

impl Finding {
    /// Renders the finding as a JSON object (hand-rolled; the crate has
    /// no serialisation dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"lint\":{},\"snippet\":{},\"message\":{}}}",
            json_str(&self.file),
            self.line,
            json_str(self.lint),
            json_str(&self.snippet),
            json_str(&self.message),
        )
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn finding_json_shape() {
        let f = Finding {
            file: "crates/serve/src/json.rs".into(),
            line: 12,
            lint: lints::A1_UNWRAP,
            snippet: "x.unwrap()".into(),
            message: "unwrap() may panic".into(),
        };
        let j = f.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"lint\":\"a1-unwrap\""));
        assert!(j.contains("\"line\":12"));
    }
}
