//! car-audit: the project's zero-dependency static-analysis engine.
//!
//! The daemon (`car-serve`) and the mining kernels are meant to run for
//! weeks unattended; a single `unwrap()` on a malformed request or a
//! wrapped support counter is a production incident. This crate
//! mechanically enforces the project's reliability lints on every PR:
//!
//! * **A1 panic-freedom** (`a1-unwrap`, `a1-expect`, `a1-panic`,
//!   `a1-todo`, `a1-index`, `a1-div`) — no panicking constructs in the
//!   request-handling and mining hot paths.
//! * **A2 lock discipline** (`a2-order`, `a2-blocking`) — the global
//!   lock-ordering graph must be acyclic, and no thread may block on
//!   `.join()`/`.recv()` while holding a lock.
//! * **A3 checked arithmetic** (`a3-unchecked`) — support/confidence
//!   counters use `saturating_*`/`checked_*` forms.
//! * **A4 no discarded Results** (`a4-discard`) — the daemon never
//!   silently drops a fallible I/O result with `let _ =`.
//! * **A5 taint-to-sink** (`a5-taint-to-sink`) — untrusted input
//!   (request bytes, query params, decoded JSON) must not reach an
//!   outbound request line, WAL framing, or a filesystem path without
//!   passing a sanitizer; intraprocedural dataflow with one-level call
//!   summaries over the workspace symbol index.
//! * **A6 atomics discipline** (`a6-relaxed-control`,
//!   `a6-relaxed-mirror`, `a6-torn-write`) — `Relaxed` loads must not
//!   silently feed control flow or read lock-mirrored gauges, and an
//!   atomic written under a lock must not also be written outside it.
//! * **A0 allow hygiene** (`a0-stale-allow`) — a reasoned allow that
//!   suppresses nothing is itself reported.
//!
//! False positives and invariant-backed exceptions are annotated
//! in-source with `// audit:allow(<lint>) reason="..."`; an empty
//! reason is itself a finding (`allow-no-reason`).
//!
//! Everything is hand-rolled — lexer, JSON output, baseline parsing —
//! because the build environment has no crates registry and the
//! auditor must never be the thing that breaks the build.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod atomics;
pub mod baseline;
pub mod discard;
pub mod engine;
pub mod findings;
pub mod index;
pub mod lexer;
pub mod locks;
pub mod panic_free;
pub mod sarif;
pub mod taint;

pub use engine::{
    default_config, run_audit, run_audit_with, AuditConfig, AuditReport, RunOptions,
};
pub use findings::{lints, Finding};

use std::io::Write;
use std::path::{Path, PathBuf};

/// Usage text shared by `car-audit` and `car audit`.
pub const USAGE: &str = "\
car-audit: project static-analysis lints (panic-freedom, lock-order, arithmetic,
discarded Results, taint-to-sink dataflow, atomics discipline)

USAGE:
    car-audit [OPTIONS]

OPTIONS:
    --root <dir>                workspace root to audit (default: auto-detected)
    --format <human|json|sarif> diagnostic format (default: human)
    --jobs <n>                  worker threads (0 = auto, 1 = serial)
    --allow-stale-allows        do not report a0-stale-allow (transition aid)
    --baseline <file>           suppress findings listed in a baseline file
    --write-baseline <file>     write current findings as a new baseline and exit 0
    --help                      show this help

EXIT CODES:
    0  clean (no findings beyond the baseline)
    1  findings reported
    2  usage or I/O error
";

/// Output format for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

/// Parsed command-line options.
struct Options {
    root: Option<PathBuf>,
    format: Format,
    jobs: usize,
    allow_stale_allows: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_options(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: None,
        format: Format::Human,
        jobs: 0,
        allow_stale_allows: false,
        baseline: None,
        write_baseline: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--root" => {
                let v = it.next().ok_or("--root requires a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or("--format requires a value")?;
                match v.as_str() {
                    "human" => opts.format = Format::Human,
                    "json" => opts.format = Format::Json,
                    "sarif" => opts.format = Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                opts.jobs =
                    v.parse().map_err(|_| format!("--jobs needs a number, got `{v}`"))?;
            }
            "--allow-stale-allows" => opts.allow_stale_allows = true,
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a value")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it.next().ok_or("--write-baseline requires a value")?;
                opts.write_baseline = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Some(opts))
}

/// Walks upward from the current directory to the workspace root (the
/// first ancestor containing both `Cargo.toml` and `crates/`).
fn detect_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Runs the audit CLI. `args` excludes the program name. Returns the
/// process exit code; diagnostics go to `out`, errors to stderr.
pub fn run_cli(args: &[String], out: &mut dyn Write) -> i32 {
    let opts = match parse_options(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            let _ = out.write_all(USAGE.as_bytes());
            return 0;
        }
        Err(msg) => {
            eprintln!("car-audit: {msg}");
            eprintln!("{USAGE}");
            return 2;
        }
    };
    let root = match opts.root.clone().or_else(detect_root) {
        Some(r) => r,
        None => {
            eprintln!("car-audit: could not locate workspace root; pass --root <dir>");
            return 2;
        }
    };
    run_with_options(&root, &opts, out)
}

fn run_with_options(root: &Path, opts: &Options, out: &mut dyn Write) -> i32 {
    let run_opts =
        RunOptions { threads: opts.jobs, allow_stale_allows: opts.allow_stale_allows };
    let report = match run_audit_with(root, &default_config(), &run_opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("car-audit: audit failed: {e}");
            return 2;
        }
    };
    let findings = report.findings;

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, baseline::render(&findings)) {
            eprintln!("car-audit: cannot write baseline {}: {e}", path.display());
            return 2;
        }
        let _ =
            writeln!(out, "wrote {} finding(s) to {}", findings.len(), path.display());
        return 0;
    }

    let findings = match &opts.baseline {
        Some(path) => match baseline::load(path) {
            Ok(entries) => baseline::apply(findings, &entries),
            Err(e) => {
                eprintln!("car-audit: cannot read baseline {}: {e}", path.display());
                return 2;
            }
        },
        None => findings,
    };

    match opts.format {
        Format::Json => {
            let _ = writeln!(out, "{{");
            let _ = writeln!(out, "  \"wall_clock_ms\": {},", report.wall_clock_ms);
            let _ = writeln!(out, "  \"findings\": [");
            for (i, f) in findings.iter().enumerate() {
                let comma = if i + 1 < findings.len() { "," } else { "" };
                let _ = writeln!(out, "    {}{comma}", f.to_json());
            }
            let _ = writeln!(out, "  ]");
            let _ = writeln!(out, "}}");
        }
        Format::Sarif => {
            let _ = out.write_all(sarif::render(&findings).as_bytes());
        }
        Format::Human => {
            for f in &findings {
                let _ = writeln!(out, "{f}");
            }
            if findings.is_empty() {
                let _ = writeln!(
                    out,
                    "car-audit: clean ({} lints enforced)",
                    lints::ALL.len()
                );
            } else {
                let _ = writeln!(out, "car-audit: {} finding(s)", findings.len());
            }
        }
    }
    if findings.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_exits_zero() {
        let mut out = Vec::new();
        let code = run_cli(&["--help".to_string()], &mut out);
        assert_eq!(code, 0);
        assert!(String::from_utf8_lossy(&out).contains("car-audit"));
    }

    #[test]
    fn unknown_option_exits_two() {
        let mut out = Vec::new();
        let code = run_cli(&["--bogus".to_string()], &mut out);
        assert_eq!(code, 2);
    }

    #[test]
    fn unknown_format_exits_two() {
        let mut out = Vec::new();
        let code = run_cli(&["--format".to_string(), "xml".to_string()], &mut out);
        assert_eq!(code, 2);
    }
}
