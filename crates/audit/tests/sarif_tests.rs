//! SARIF 2.1.0 conformance: the rendered log must parse as JSON (via
//! car-serve's parser, the same one CI consumers use) and carry the
//! schema-mandated structure — version, tool driver with one rule per
//! lint, and results whose ruleIds resolve against those rules.

use car_audit::findings::lints;
use car_audit::{sarif, Finding};
use car_serve::json::Json;

fn sample_findings() -> Vec<Finding> {
    vec![
        Finding {
            file: "crates/shard/src/router.rs".to_string(),
            line: 812,
            lint: "a5-taint-to-sink",
            snippet: ".request(..)".to_string(),
            message: "tainted value reaches worker request line in `rules` (source at line 803)"
                .to_string(),
        },
        Finding {
            file: "crates/serve/src/http.rs".to_string(),
            line: 41,
            lint: "a0-stale-allow",
            snippet: "audit:allow(a4-discard)".to_string(),
            message: "reasoned audit:allow suppresses no findings".to_string(),
        },
    ]
}

#[test]
fn sarif_log_is_valid_json_with_the_mandated_skeleton() {
    let log = Json::parse(&sarif::render(&sample_findings()))
        .expect("SARIF log parses as JSON");

    assert_eq!(log.get("version").and_then(Json::as_str), Some("2.1.0"));
    let schema = log.get("$schema").and_then(Json::as_str).expect("$schema present");
    assert!(schema.contains("sarif-2.1.0"), "schema uri: {schema}");

    let runs = log.get("runs").and_then(Json::as_array).expect("runs array");
    assert_eq!(runs.len(), 1);
    let driver =
        runs[0].get("tool").and_then(|t| t.get("driver")).expect("tool.driver present");
    assert_eq!(driver.get("name").and_then(Json::as_str), Some("car-audit"));

    let rules = driver.get("rules").and_then(Json::as_array).expect("rules array");
    assert_eq!(rules.len(), lints::ALL.len(), "one reportingDescriptor per lint");
    for rule in rules {
        let id = rule.get("id").and_then(Json::as_str).expect("rule id");
        assert!(lints::ALL.contains(&id), "unknown rule id {id}");
        assert!(
            rule.get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Json::as_str)
                .is_some_and(|t| !t.is_empty()),
            "rule {id} missing shortDescription.text"
        );
    }
}

#[test]
fn sarif_results_carry_rule_level_message_and_location() {
    let findings = sample_findings();
    let log = Json::parse(&sarif::render(&findings)).expect("SARIF log parses as JSON");
    let results = log.get("runs").and_then(Json::as_array).expect("runs")[0]
        .get("results")
        .and_then(Json::as_array)
        .expect("results array");
    assert_eq!(results.len(), findings.len());

    for (result, finding) in results.iter().zip(&findings) {
        assert_eq!(result.get("ruleId").and_then(Json::as_str), Some(finding.lint));
        let expected_level =
            if finding.lint == "a0-stale-allow" { "note" } else { "error" };
        assert_eq!(result.get("level").and_then(Json::as_str), Some(expected_level));
        assert_eq!(
            result.get("message").and_then(|m| m.get("text")).and_then(Json::as_str),
            Some(finding.message.as_str())
        );

        let physical = result
            .get("locations")
            .and_then(Json::as_array)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .expect("physicalLocation present");
        assert_eq!(
            physical
                .get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Json::as_str),
            Some(finding.file.as_str())
        );
        assert_eq!(
            physical
                .get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Json::as_u64),
            Some(u64::from(finding.line))
        );
    }
}

#[test]
fn sarif_log_with_no_findings_has_an_empty_results_array() {
    let log = Json::parse(&sarif::render(&[])).expect("empty SARIF log parses");
    let results = log.get("runs").and_then(Json::as_array).expect("runs")[0]
        .get("results")
        .and_then(Json::as_array)
        .expect("results array");
    assert!(results.is_empty());
}
