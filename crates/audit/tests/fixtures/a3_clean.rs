//! Checked counterparts of the A3 patterns, plus the loop-index
//! exemption. Must audit clean.

fn tally(counts: &mut [u64], hits: usize) {
    let mut support_count = 0u64;
    support_count = support_count.saturating_add(1);
    if let Some(slot) = counts.get_mut(hits) {
        *slot = slot.saturating_add(1);
    }
}

fn combine(freq: u64, weight: u64) -> u64 {
    freq.saturating_mul(weight)
}

fn loop_indices_are_not_counters(n: usize) -> usize {
    let mut i = 0;
    let mut j = 0;
    while i < n {
        i += 1;
        j += 2;
    }
    j
}
