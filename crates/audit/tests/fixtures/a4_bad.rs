//! Seeded A4 violations: silently discarded fallible I/O.

fn ship(stream: &mut TcpStream, buf: &[u8]) {
    let _ = stream.write_all(buf);
}

fn reap(handle: JoinHandle<()>) {
    let _ = handle.join();
}
