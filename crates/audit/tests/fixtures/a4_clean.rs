//! Handled counterparts of the A4 patterns. Must audit clean.

fn ship(stream: &mut TcpStream, buf: &[u8], errors: &Counter) {
    if stream.write_all(buf).is_err() {
        errors.increment();
    }
}

fn reap(handle: JoinHandle<()>) {
    if handle.join().is_err() {
        log_warn("worker panicked");
    }
}

fn non_io_discard_is_fine(guard: MutexGuard<u64>) {
    let _ = guard;
}
