//! A0 fixture: a reasoned `audit:allow` that suppresses nothing — the
//! code under it was fixed but the escape hatch was left behind.

fn tidy(x: Option<u32>) -> u32 {
    // audit:allow(a1-unwrap) reason="the caller checked is_some"
    x.unwrap_or(0)
}
