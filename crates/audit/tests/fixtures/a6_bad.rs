//! A6 fixture: a Relaxed load feeding control flow, a lock-free read
//! of a lock-mirrored gauge, and a torn write, all unannotated. Each
//! site must be flagged with its lint.

struct Gauges {
    inner: Mutex<u64>,
    units: AtomicU64,
    shutdown: AtomicBool,
}

fn update(g: &Gauges) {
    let guard = g.inner.lock();
    g.units.store(guard.count(), Ordering::Relaxed);
}

fn health(g: &Gauges) -> u64 {
    g.units.load(Ordering::Relaxed)
}

fn spin(g: &Gauges) {
    while !g.shutdown.load(Ordering::Relaxed) {
        step();
    }
}

fn reset(g: &Gauges) {
    g.units.store(0, Ordering::Release);
}
