//! A5 fixture: one-level call-summary propagation — a helper whose
//! return value derives from its parameter taints exactly the call
//! sites whose argument is tainted.

fn render_target(suffix: &str) -> String {
    let mut target = String::from("/v1/rules/");
    target.push_str(suffix);
    target
}

fn fan_out(req: &Request, c: &mut Client) {
    let raw = req.query_param("shard").unwrap_or_default();
    let target = render_target(raw);
    c.request("GET", &target, None);
}

fn fixed_route(c: &mut Client) {
    let target = render_target("all");
    c.request("GET", &target, None);
}
