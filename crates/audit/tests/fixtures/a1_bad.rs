//! Seeded A1 violations. fixture_tests asserts the exact lint id and
//! line of every finding, so edits here must keep line numbers stable.

fn unwrap_it(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expect_it(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn panic_it() {
    panic!("boom")
}

fn todo_it() {
    todo!()
}

fn index_it(xs: &[u32]) -> u32 {
    xs[0]
}

fn div_it(a: u32, b: u32) -> u32 {
    a / b
}
