//! Panic-free counterparts of every A1 pattern, plus one violation
//! suppressed by a reasoned `audit:allow`. Must audit clean.

fn no_unwrap(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

fn no_expect(x: Option<u32>) -> Result<u32, &'static str> {
    x.ok_or("missing")
}

fn no_index(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or_default()
}

fn full_range_is_fine(xs: &[u32]) -> &[u32] {
    &xs[..]
}

fn no_div(a: u32, b: u32) -> u32 {
    a.checked_div(b).unwrap_or(0)
}

fn allowed_with_reason(xs: &[u32]) -> u32 {
    // audit:allow(a1-index) reason="index 0 is guarded by the caller's non-empty check"
    xs[0]
}

fn prose_only() {
    // an unwrap() or panic! in a comment is not code
    let _message = "neither is x.unwrap() in a string";
}
