//! A5 fixture: the post-fix pattern — query values are parsed to typed
//! numbers, range-checked, and the request line is re-rendered from the
//! typed values by a helper; JSON fields pass through as_u64 before
//! reaching WAL framing. Must audit clean.

fn worker_rules_target(min_confidence: Option<f64>) -> String {
    let mut target = String::from("/v1/rules");
    if let Some(q) = min_confidence {
        target.push_str("?min_confidence=");
        target.push_str(&q.to_string());
    }
    target
}

fn rules(state: &RouterState, req: &Request) -> Response {
    let min_confidence = match req.query_param("min_confidence") {
        None => None,
        Some(raw) => match raw.parse::<f64>() {
            Ok(q) if (0.0..=1.0).contains(&q) => Some(q),
            _ => return Response::error(400, "min_confidence must be in [0, 1]"),
        },
    };
    let target = worker_rules_target(min_confidence);
    let resp = state.client.request("GET", &target, None);
    Response::from(resp)
}

fn archive(req: &Request, out: &mut Vec<u8>) {
    let doc = Json::parse(&req.body).unwrap_or_default();
    let seq = doc.get("seq").and_then(Json::as_u64).unwrap_or(0);
    encode_record_into(seq, out);
}

fn wait_flag(req: &Request) -> bool {
    matches!(req.query_param("wait"), Some("1") | Some("true"))
}
