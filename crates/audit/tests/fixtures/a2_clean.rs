//! Disciplined locking: every function acquires `first` before
//! `second`, guards drop before blocking calls, and `Condvar::wait`
//! under a lock is fine (it releases the guard). Must audit clean.

struct Shared {
    first: Mutex<u64>,
    second: Mutex<u64>,
    ready: Condvar,
}

fn forward(s: &Shared) {
    let a = s.first.lock();
    let b = s.second.lock();
}

fn also_forward(s: &Shared) {
    {
        let a = s.first.lock();
    }
    let a = s.first.lock();
    let b = s.second.lock();
    drop(b);
    drop(a);
}

fn drop_then_block(s: &Shared, rx: &Receiver<u64>) {
    let a = s.first.lock();
    drop(a);
    let item = rx.recv();
}

fn condvar_wait_is_fine(s: &Shared) {
    let mut a = s.first.lock();
    a = s.ready.wait(a);
}
