//! Seeded A2 violations: a lock-order cycle between `first` and
//! `second`, and a channel `recv()` under a lock.

struct Shared {
    first: Mutex<u64>,
    second: Mutex<u64>,
}

fn forward(s: &Shared) {
    let a = s.first.lock();
    let b = s.second.lock();
}

fn backward(s: &Shared) {
    let b = s.second.lock();
    let a = s.first.lock();
}

fn block_under_lock(s: &Shared, rx: &Receiver<u64>) {
    let a = s.first.lock();
    let item = rx.recv();
}
