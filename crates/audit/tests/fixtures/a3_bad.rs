//! Seeded A3 violations: unchecked arithmetic on counter-named
//! bindings.

fn tally(counts: &mut [u64], hits: usize) {
    let mut support_count = 0u64;
    support_count += 1;
    counts[hits] += 1;
}

fn combine(freq: u64, weight: u64) -> u64 {
    freq * weight
}
