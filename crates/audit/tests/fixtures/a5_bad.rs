//! A5 fixture: the pre-PR-6-fix router fan-out — percent-decoded query
//! bytes are *validated* with parse() but the raw string is re-embedded
//! verbatim into the worker request line (CR/LF smuggling), plus raw
//! request bytes reaching WAL framing and a decoded name reaching a
//! filesystem path. Every sink line must be flagged.

fn rules(state: &RouterState, req: &Request) -> Response {
    let mut target = String::from("/v1/rules");
    if let Some(raw) = req.query_param("min_confidence") {
        if raw.parse::<f64>().is_err() {
            return Response::error(400, "min_confidence must be a float");
        }
        target.push_str("?min_confidence=");
        target.push_str(raw);
    }
    let resp = state.client.request("GET", &target, None);
    Response::from(resp)
}

fn archive(req: &Request, out: &mut Vec<u8>) {
    encode_payload(&req.body, out);
}

fn export(req: &Request, dir: &Path) -> PathBuf {
    let name = percent_decode(req.query).unwrap_or_default();
    dir.join(&name)
}
