//! A6 fixture: the same shapes as `a6_bad.rs` but every site carries a
//! reasoned `audit:allow` documenting its staleness/tearing contract.
//! Must audit clean (and none of the allows is stale).

struct Gauges {
    inner: Mutex<u64>,
    units: AtomicU64,
    shutdown: AtomicBool,
}

fn update(g: &Gauges) {
    let guard = g.inner.lock();
    g.units.store(guard.count(), Ordering::Relaxed);
}

fn health(g: &Gauges) -> u64 {
    // audit:allow(a6-relaxed-mirror) reason="advisory gauge: health reads may lag the ingest lock by design"
    g.units.load(Ordering::Relaxed)
}

fn spin(g: &Gauges) {
    // audit:allow(a6-relaxed-control) reason="shutdown flag: one extra loop iteration after the flip is harmless"
    while !g.shutdown.load(Ordering::Relaxed) {
        step();
    }
}

fn reset(g: &Gauges) {
    // audit:allow(a6-torn-write) reason="reset runs single-threaded before any worker starts"
    g.units.store(0, Ordering::Release);
}
