//! A reasonless `audit:allow` suppresses nothing and is itself a
//! finding: expect both `a1-unwrap` and `allow-no-reason` on line 5.

fn suppressed_badly(x: Option<u32>) -> u32 {
    x.unwrap() // audit:allow(a1-unwrap)
}
