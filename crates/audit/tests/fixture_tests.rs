//! Fixture corpus tests: every seeded violation is reported with the
//! expected lint id and line, and every clean counterpart audits clean.
//!
//! The fixtures live under `tests/fixtures/` (not compiled by cargo)
//! and are audited with a config scoping exactly one lint family at the
//! file under test, mirroring how the real scopes pin lints to paths.

use std::path::Path;

use car_audit::{run_audit, run_audit_with, AuditConfig, Finding, RunOptions};

fn audit_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    format!("tests/fixtures/{name}")
}

fn audit_a1(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a1: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn audit_a2(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a2: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn audit_a3(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a3: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn audit_a4(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a4: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn audit_a5(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a5: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn audit_a6(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a6: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn lint_lines(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.lint, f.line)).collect()
}

#[test]
fn a1_bad_reports_every_panicking_construct_with_exact_lines() {
    let findings = audit_a1("a1_bad.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![
            ("a1-unwrap", 5),
            ("a1-expect", 9),
            ("a1-panic", 13),
            ("a1-todo", 17),
            ("a1-index", 21),
            ("a1-div", 25),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn a1_clean_audits_clean() {
    let findings = audit_a1("a1_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a2_bad_reports_cycle_and_blocking_with_exact_lines() {
    let findings = audit_a2("a2_bad.rs");
    let lints = lint_lines(&findings);
    assert!(
        lints.contains(&("a2-order", 16)),
        "expected the reverse acquisition on line 16 to close the cycle: {findings:#?}"
    );
    assert!(
        lints.contains(&("a2-blocking", 21)),
        "expected recv() under lock on line 21: {findings:#?}"
    );
    assert_eq!(findings.len(), 2, "findings: {findings:#?}");
    let order = findings.iter().find(|f| f.lint == "a2-order").expect("order finding");
    assert!(order.snippet.contains("first") && order.snippet.contains("second"));
}

#[test]
fn a2_clean_audits_clean() {
    let findings = audit_a2("a2_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a3_bad_reports_unchecked_counter_arithmetic_with_exact_lines() {
    let findings = audit_a3("a3_bad.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![("a3-unchecked", 6), ("a3-unchecked", 7), ("a3-unchecked", 11)],
        "findings: {findings:#?}"
    );
}

#[test]
fn a3_clean_audits_clean() {
    let findings = audit_a3("a3_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a4_bad_reports_discarded_io_with_exact_lines() {
    let findings = audit_a4("a4_bad.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![("a4-discard", 4), ("a4-discard", 8)],
        "findings: {findings:#?}"
    );
}

#[test]
fn a4_clean_audits_clean() {
    let findings = audit_a4("a4_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a5_bad_reports_every_tainted_sink_with_exact_lines() {
    let findings = audit_a5("a5_bad.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![
            ("a5-taint-to-sink", 16),
            ("a5-taint-to-sink", 21),
            ("a5-taint-to-sink", 26),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn a5_clean_audits_clean() {
    let findings = audit_a5("a5_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a5_summary_taints_only_the_call_site_with_a_tainted_argument() {
    let findings = audit_a5("a5_summary.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![("a5-taint-to-sink", 14)],
        "findings: {findings:#?}"
    );
}

#[test]
fn a6_bad_reports_control_mirror_and_torn_with_exact_lines() {
    let findings = audit_a6("a6_bad.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![
            ("a6-relaxed-mirror", 17),
            ("a6-relaxed-control", 21),
            ("a6-torn-write", 27),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn a6_allowed_audits_clean_and_no_allow_is_stale() {
    let findings = audit_a6("a6_allowed.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a0_stale_allow_is_reported_and_flag_silences_it() {
    let findings = audit_a1("a0_stale.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![("a0-stale-allow", 5)],
        "findings: {findings:#?}"
    );

    let config = AuditConfig { a1: vec![fixture("a0_stale.rs")], ..Default::default() };
    let opts = RunOptions { allow_stale_allows: true, ..Default::default() };
    let report = run_audit_with(audit_root(), &config, &opts).expect("audit runs");
    assert!(report.findings.is_empty(), "findings: {:#?}", report.findings);
}

#[test]
fn parallel_engine_matches_serial_on_the_full_fixture_corpus() {
    let all = |names: &[&str]| names.iter().map(|n| fixture(n)).collect::<Vec<_>>();
    let config = AuditConfig {
        a1: all(&["a1_bad.rs", "a1_clean.rs", "allow_no_reason.rs", "a0_stale.rs"]),
        a2: all(&["a2_bad.rs", "a2_clean.rs"]),
        a3: all(&["a3_bad.rs", "a3_clean.rs"]),
        a4: all(&["a4_bad.rs", "a4_clean.rs"]),
        a5: all(&["a5_bad.rs", "a5_clean.rs", "a5_summary.rs"]),
        a6: all(&["a6_bad.rs", "a6_allowed.rs"]),
    };
    let serial = run_audit_with(
        audit_root(),
        &config,
        &RunOptions { threads: 1, ..Default::default() },
    )
    .expect("serial audit runs");
    let parallel = run_audit_with(
        audit_root(),
        &config,
        &RunOptions { threads: 4, ..Default::default() },
    )
    .expect("parallel audit runs");
    assert_eq!(serial.findings, parallel.findings);
    assert!(!serial.findings.is_empty(), "corpus should produce findings");
}

#[test]
fn reasonless_allow_reports_both_lints() {
    let findings = audit_a1("allow_no_reason.rs");
    let lints = lint_lines(&findings);
    assert!(lints.contains(&("a1-unwrap", 5)), "findings: {findings:#?}");
    assert!(lints.contains(&("allow-no-reason", 5)), "findings: {findings:#?}");
    assert_eq!(findings.len(), 2);
}
