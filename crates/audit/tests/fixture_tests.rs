//! Fixture corpus tests: every seeded violation is reported with the
//! expected lint id and line, and every clean counterpart audits clean.
//!
//! The fixtures live under `tests/fixtures/` (not compiled by cargo)
//! and are audited with a config scoping exactly one lint family at the
//! file under test, mirroring how the real scopes pin lints to paths.

use std::path::Path;

use car_audit::{run_audit, AuditConfig, Finding};

fn audit_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    format!("tests/fixtures/{name}")
}

fn audit_a1(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a1: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn audit_a2(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a2: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn audit_a3(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a3: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn audit_a4(name: &str) -> Vec<Finding> {
    let config = AuditConfig { a4: vec![fixture(name)], ..Default::default() };
    run_audit(audit_root(), &config).expect("audit runs")
}

fn lint_lines(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.lint, f.line)).collect()
}

#[test]
fn a1_bad_reports_every_panicking_construct_with_exact_lines() {
    let findings = audit_a1("a1_bad.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![
            ("a1-unwrap", 5),
            ("a1-expect", 9),
            ("a1-panic", 13),
            ("a1-todo", 17),
            ("a1-index", 21),
            ("a1-div", 25),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn a1_clean_audits_clean() {
    let findings = audit_a1("a1_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a2_bad_reports_cycle_and_blocking_with_exact_lines() {
    let findings = audit_a2("a2_bad.rs");
    let lints = lint_lines(&findings);
    assert!(
        lints.contains(&("a2-order", 16)),
        "expected the reverse acquisition on line 16 to close the cycle: {findings:#?}"
    );
    assert!(
        lints.contains(&("a2-blocking", 21)),
        "expected recv() under lock on line 21: {findings:#?}"
    );
    assert_eq!(findings.len(), 2, "findings: {findings:#?}");
    let order = findings.iter().find(|f| f.lint == "a2-order").expect("order finding");
    assert!(order.snippet.contains("first") && order.snippet.contains("second"));
}

#[test]
fn a2_clean_audits_clean() {
    let findings = audit_a2("a2_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a3_bad_reports_unchecked_counter_arithmetic_with_exact_lines() {
    let findings = audit_a3("a3_bad.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![("a3-unchecked", 6), ("a3-unchecked", 7), ("a3-unchecked", 11)],
        "findings: {findings:#?}"
    );
}

#[test]
fn a3_clean_audits_clean() {
    let findings = audit_a3("a3_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn a4_bad_reports_discarded_io_with_exact_lines() {
    let findings = audit_a4("a4_bad.rs");
    assert_eq!(
        lint_lines(&findings),
        vec![("a4-discard", 4), ("a4-discard", 8)],
        "findings: {findings:#?}"
    );
}

#[test]
fn a4_clean_audits_clean() {
    let findings = audit_a4("a4_clean.rs");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn reasonless_allow_reports_both_lints() {
    let findings = audit_a1("allow_no_reason.rs");
    let lints = lint_lines(&findings);
    assert!(lints.contains(&("a1-unwrap", 5)), "findings: {findings:#?}");
    assert!(lints.contains(&("allow-no-reason", 5)), "findings: {findings:#?}");
    assert_eq!(findings.len(), 2);
}
