//! Named workload presets.
//!
//! The association-rule literature evaluates on a few canonical dataset
//! shapes — the Quest families `T10.I4.D100K` and `T40.I10.D100K`, and
//! the `Retail` basket data. The real files are not redistributable
//! here, so these presets configure the generator to the same published
//! *shape statistics* (item universe, average transaction and pattern
//! sizes), scaled into a time-segmented form for cyclic mining. The
//! scale factor shrinks the transaction count while preserving shape,
//! letting tests use the same presets the benchmarks use.

use crate::cyclic::CyclicConfig;
use crate::quest::QuestConfig;

/// `T10.I4` shape: 1000 items, average transaction size 10, average
/// pattern size 4 — segmented into `units` time units whose sizes sum to
/// `100_000 / scale_divisor` transactions.
///
/// # Panics
///
/// Panics if `units == 0` or `scale_divisor == 0`.
pub fn t10i4_like(units: usize, scale_divisor: usize) -> CyclicConfig {
    assert!(units > 0 && scale_divisor > 0, "invalid preset scaling");
    CyclicConfig {
        quest: QuestConfig {
            num_items: 1000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 100,
            correlation: 0.5,
            corruption_mean: 0.25,
        },
        num_units: units,
        transactions_per_unit: (100_000 / scale_divisor / units).max(1),
        num_cyclic_patterns: 20,
        cyclic_pattern_len: 2,
        cycle_length_range: (2, 12.min(units as u32).max(2)),
        boost: 0.8,
        max_planted_per_transaction: 2,
    }
}

/// `T40.I10` shape: 1000 items, average transaction size 40, average
/// pattern size 10 — the dense family that stresses counting engines.
///
/// # Panics
///
/// Panics if `units == 0` or `scale_divisor == 0`.
pub fn t40i10_like(units: usize, scale_divisor: usize) -> CyclicConfig {
    assert!(units > 0 && scale_divisor > 0, "invalid preset scaling");
    CyclicConfig {
        quest: QuestConfig {
            num_items: 1000,
            avg_transaction_len: 40.0,
            avg_pattern_len: 10.0,
            num_patterns: 100,
            correlation: 0.5,
            corruption_mean: 0.25,
        },
        num_units: units,
        transactions_per_unit: (100_000 / scale_divisor / units).max(1),
        num_cyclic_patterns: 20,
        cyclic_pattern_len: 2,
        cycle_length_range: (2, 12.min(units as u32).max(2)),
        boost: 0.8,
        max_planted_per_transaction: 2,
    }
}

/// `Retail`-like shape: a large sparse universe (16 470 items in the
/// original, kept here) with short transactions — the long-tail regime.
///
/// # Panics
///
/// Panics if `units == 0` or `scale_divisor == 0`.
pub fn retail_like(units: usize, scale_divisor: usize) -> CyclicConfig {
    assert!(units > 0 && scale_divisor > 0, "invalid preset scaling");
    CyclicConfig {
        quest: QuestConfig {
            num_items: 16_470,
            avg_transaction_len: 10.0,
            avg_pattern_len: 3.0,
            num_patterns: 200,
            correlation: 0.3,
            corruption_mean: 0.4,
        },
        num_units: units,
        transactions_per_unit: (88_162 / scale_divisor / units).max(1),
        num_cyclic_patterns: 20,
        cyclic_pattern_len: 2,
        cycle_length_range: (2, 12.min(units as u32).max(2)),
        boost: 0.8,
        max_planted_per_transaction: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_cyclic;

    #[test]
    fn presets_produce_the_declared_shape() {
        // Scale down hard so the test runs in milliseconds.
        let data = generate_cyclic(&t10i4_like(8, 100), 1);
        assert_eq!(data.db.num_units(), 8);
        let flat = data.db.to_transaction_db();
        let avg = flat.avg_transaction_len();
        // T10 plus planted-pattern unions: between 8 and 14.
        assert!((8.0..14.0).contains(&avg), "avg tx len {avg}");
        assert!(flat.num_distinct_items() > 100);
    }

    #[test]
    fn t40_is_denser_than_t10() {
        let t10 = generate_cyclic(&t10i4_like(4, 200), 2);
        let t40 = generate_cyclic(&t40i10_like(4, 200), 2);
        let a = t10.db.to_transaction_db().avg_transaction_len();
        let b = t40.db.to_transaction_db().avg_transaction_len();
        assert!(b > 2.0 * a, "T40 ({b}) should dwarf T10 ({a})");
    }

    #[test]
    fn retail_universe_is_sparse() {
        let retail = generate_cyclic(&retail_like(4, 200), 3);
        let flat = retail.db.to_transaction_db();
        // Many distinct items relative to transaction count (440
        // transactions draw from a pool of ~200 patterns plus noise).
        assert!(flat.num_distinct_items() > 250, "{}", flat.num_distinct_items());
        assert!((6.0..14.0).contains(&flat.avg_transaction_len()));
    }

    #[test]
    fn transaction_budget_is_split_across_units() {
        let c = t10i4_like(10, 10);
        assert_eq!(c.transactions_per_unit, 1000);
        let c = retail_like(8, 88);
        assert_eq!(c.transactions_per_unit, 125);
    }

    #[test]
    #[should_panic(expected = "invalid preset scaling")]
    fn zero_units_rejected() {
        let _ = t10i4_like(0, 1);
    }
}
