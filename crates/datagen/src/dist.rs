//! Small distribution samplers over any [`rand::Rng`].
//!
//! The workspace's dependency policy allows `rand` but not `rand_distr`,
//! so the three distributions the Quest generator needs are implemented
//! here: Poisson (Knuth's method — fine for the small means used for
//! transaction and pattern sizes), exponential (inverse transform), and
//! normal (Box–Muller).

use rand::Rng;

/// Samples a Poisson-distributed count with the given mean.
///
/// Knuth's multiplication method: `O(mean)` per sample, exact. Suitable
/// for the small means (≈2–40) used for transaction sizes.
///
/// # Panics
///
/// Panics if `mean` is not finite and positive.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean.is_finite() && mean > 0.0, "Poisson mean must be positive");
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Guard against pathological means: cap at mean*20 + 64.
        if k > (mean * 20.0) as u64 + 64 {
            return k;
        }
    }
}

/// Samples an exponential variate with the given mean (`1/λ`).
///
/// # Panics
///
/// Panics if `mean` is not finite and positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive");
    // 1 - U avoids ln(0).
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

/// Samples a normal variate via Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal variate clamped into `[lo, hi]`.
pub fn clamped_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    normal(rng, mean, std_dev).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        for mean in [1.0, 5.0, 10.0] {
            let total: u64 = (0..n).map(|_| poisson(&mut r, mean)).sum();
            let empirical = total as f64 / n as f64;
            assert!(
                (empirical - mean).abs() < mean * 0.1 + 0.1,
                "mean {mean}: got {empirical}"
            );
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum();
        let empirical = total / n as f64;
        assert!((empirical - 2.0).abs() < 0.15, "got {empirical}");
        // Non-negative always.
        assert!((0..1000).all(|_| exponential(&mut r, 0.5) >= 0.0));
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = rng();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..5000 {
            let x = clamped_normal(&mut r, 0.5, 0.5, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "Poisson mean must be positive")]
    fn poisson_rejects_nonpositive_mean() {
        let _ = poisson(&mut rng(), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..10).map(|_| poisson(&mut r, 4.0)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..10).map(|_| poisson(&mut r, 4.0)).collect()
        };
        assert_eq!(a, b);
    }
}
