//! The IBM-Quest-style transaction generator.

use car_itemset::{Item, ItemSet};
use rand::Rng;

use crate::dist;

/// Parameters of the Quest generator, in the paper's notation:
/// `T<avg_transaction_len> I<avg_pattern_len> N<num_items>` with
/// `num_patterns` potentially-frequent patterns.
#[derive(Clone, Copy, Debug)]
pub struct QuestConfig {
    /// Universe size `N` (items are `0..num_items`).
    pub num_items: u32,
    /// Average transaction size `|T|` (Poisson mean).
    pub avg_transaction_len: f64,
    /// Average pattern size `|I|` (Poisson mean, minimum 1).
    pub avg_pattern_len: f64,
    /// Number of potentially-frequent patterns `|L|`.
    pub num_patterns: usize,
    /// Fraction of a pattern's items inherited from the previous pattern.
    pub correlation: f64,
    /// Mean of the per-pattern corruption level (items dropped with this
    /// probability when the pattern is placed in a transaction).
    pub corruption_mean: f64,
}

impl Default for QuestConfig {
    /// `T5.I3.N500` with 50 patterns — scaled-down defaults that mine in
    /// milliseconds, used as the base of the experiment suite.
    fn default() -> Self {
        QuestConfig {
            num_items: 500,
            avg_transaction_len: 5.0,
            avg_pattern_len: 3.0,
            num_patterns: 50,
            correlation: 0.5,
            corruption_mean: 0.25,
        }
    }
}

impl QuestConfig {
    /// Sets the item universe size.
    pub fn with_num_items(mut self, n: u32) -> Self {
        self.num_items = n;
        self
    }

    /// Sets the average transaction size.
    pub fn with_avg_transaction_len(mut self, t: f64) -> Self {
        self.avg_transaction_len = t;
        self
    }

    /// Sets the average pattern size.
    pub fn with_avg_pattern_len(mut self, i: f64) -> Self {
        self.avg_pattern_len = i;
        self
    }

    /// Sets the number of patterns in the pool.
    pub fn with_num_patterns(mut self, p: usize) -> Self {
        self.num_patterns = p;
        self
    }

    fn validate(&self) {
        assert!(self.num_items >= 1, "need at least one item");
        assert!(
            self.avg_transaction_len > 0.0 && self.avg_pattern_len > 0.0,
            "averages must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.correlation)
                && (0.0..=1.0).contains(&self.corruption_mean),
            "correlation and corruption must lie in [0,1]"
        );
    }
}

/// One potentially-frequent pattern of the pool.
#[derive(Clone, Debug)]
struct Pattern {
    items: ItemSet,
    /// Probability of dropping each item when the pattern is placed.
    corruption: f64,
}

/// A Quest generator instantiated with a pattern pool.
///
/// Construction draws the pool (sizes, item correlation between
/// consecutive patterns, exponential weights, corruption levels) from the
/// supplied RNG; [`QuestGenerator::gen_transaction`] then produces
/// transactions on demand.
pub struct QuestGenerator {
    config: QuestConfig,
    patterns: Vec<Pattern>,
    /// Cumulative pattern weights for roulette selection, normalised so
    /// the final entry is 1.0.
    cumulative_weights: Vec<f64>,
}

impl QuestGenerator {
    /// Draws a pattern pool according to `config`.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration values.
    pub fn new<R: Rng + ?Sized>(config: QuestConfig, rng: &mut R) -> Self {
        config.validate();
        let mut patterns: Vec<Pattern> = Vec::with_capacity(config.num_patterns);
        let mut weights: Vec<f64> = Vec::with_capacity(config.num_patterns);

        for p in 0..config.num_patterns {
            let size = dist::poisson(rng, config.avg_pattern_len).max(1) as usize;
            let size = size.min(config.num_items as usize);
            let mut items: Vec<Item> = Vec::with_capacity(size);
            // Correlation: reuse a fraction of the previous pattern.
            if p > 0 && config.correlation > 0.0 {
                let prev = &patterns[p - 1].items;
                for item in prev.iter() {
                    if items.len() < size && rng.gen::<f64>() < config.correlation {
                        items.push(item);
                    }
                }
            }
            while items.len() < size {
                let candidate = Item::new(rng.gen_range(0..config.num_items));
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            patterns.push(Pattern {
                items: ItemSet::from_items(items),
                corruption: dist::clamped_normal(
                    rng,
                    config.corruption_mean,
                    0.1,
                    0.0,
                    1.0,
                ),
            });
            weights.push(dist::exponential(rng, 1.0));
        }

        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative_weights = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect::<Vec<f64>>();

        QuestGenerator { config, patterns, cumulative_weights }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &QuestConfig {
        &self.config
    }

    /// Number of patterns in the pool.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    fn pick_pattern<R: Rng + ?Sized>(&self, rng: &mut R) -> &Pattern {
        let x: f64 = rng.gen();
        let idx = self
            .cumulative_weights
            .partition_point(|&w| w < x)
            .min(self.patterns.len() - 1);
        &self.patterns[idx]
    }

    /// Generates one transaction: patterns are picked by weight and their
    /// (corrupted) items added until the Poisson-drawn target size is
    /// reached.
    pub fn gen_transaction<R: Rng + ?Sized>(&self, rng: &mut R) -> ItemSet {
        let target = dist::poisson(rng, self.config.avg_transaction_len).max(1) as usize;
        let target = target.min(self.config.num_items as usize);
        let mut items: Vec<Item> = Vec::with_capacity(target + 4);

        if self.patterns.is_empty() {
            // Degenerate pool: fall back to uniform items.
            while items.len() < target {
                let it = Item::new(rng.gen_range(0..self.config.num_items));
                if !items.contains(&it) {
                    items.push(it);
                }
            }
            return ItemSet::from_items(items);
        }

        let mut attempts = 0;
        while items.len() < target && attempts < 8 * target + 8 {
            attempts += 1;
            let pattern = self.pick_pattern(rng);
            for item in pattern.items.iter() {
                // Corruption: drop each item independently.
                if rng.gen::<f64>() >= pattern.corruption && !items.contains(&item) {
                    items.push(item);
                    if items.len() >= target {
                        break;
                    }
                }
            }
        }
        // Pad with uniform noise if the pool could not fill the target
        // (tiny pools or heavy corruption).
        let mut pad_attempts = 0;
        while items.len() < target && pad_attempts < 16 * target + 16 {
            pad_attempts += 1;
            let it = Item::new(rng.gen_range(0..self.config.num_items));
            if !items.contains(&it) {
                items.push(it);
            }
        }
        ItemSet::from_items(items)
    }

    /// Generates a batch of transactions.
    pub fn gen_transactions<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
    ) -> Vec<ItemSet> {
        (0..n).map(|_| self.gen_transaction(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator(seed: u64) -> (QuestGenerator, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = QuestGenerator::new(QuestConfig::default(), &mut rng);
        (g, rng)
    }

    #[test]
    fn pool_has_requested_patterns() {
        let (g, _) = generator(1);
        assert_eq!(g.num_patterns(), 50);
        assert_eq!(g.config().num_items, 500);
    }

    #[test]
    fn transactions_have_plausible_sizes() {
        let (g, mut rng) = generator(2);
        let txs = g.gen_transactions(&mut rng, 2000);
        assert_eq!(txs.len(), 2000);
        let avg: f64 =
            txs.iter().map(ItemSet::len).sum::<usize>() as f64 / txs.len() as f64;
        // Poisson(5) clipped at min 1: mean near 5.
        assert!((3.0..7.0).contains(&avg), "avg transaction size {avg}");
        assert!(txs.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn items_stay_in_universe() {
        let config = QuestConfig::default().with_num_items(20);
        let mut rng = StdRng::seed_from_u64(3);
        let g = QuestGenerator::new(config, &mut rng);
        for t in g.gen_transactions(&mut rng, 500) {
            assert!(t.iter().all(|i| i.id() < 20));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (g1, mut r1) = generator(77);
        let (g2, mut r2) = generator(77);
        assert_eq!(g1.gen_transactions(&mut r1, 50), g2.gen_transactions(&mut r2, 50));
    }

    #[test]
    fn different_seeds_differ() {
        let (g1, mut r1) = generator(1);
        let (g2, mut r2) = generator(2);
        assert_ne!(g1.gen_transactions(&mut r1, 50), g2.gen_transactions(&mut r2, 50));
    }

    #[test]
    fn patterns_create_correlated_items() {
        // Pattern reuse should make some 2-itemsets much more frequent
        // than under independence.
        let (g, mut rng) = generator(5);
        let txs = g.gen_transactions(&mut rng, 3000);
        use std::collections::HashMap;
        let mut pair_counts: HashMap<(u32, u32), u32> = HashMap::new();
        for t in &txs {
            let v: Vec<u32> = t.iter().map(|i| i.id()).collect();
            for i in 0..v.len() {
                for j in i + 1..v.len() {
                    *pair_counts.entry((v[i], v[j])).or_insert(0) += 1;
                }
            }
        }
        let max_pair = pair_counts.values().copied().max().unwrap_or(0);
        // Under independence with N=500 and |T|=5, a fixed pair appears
        // ~ 3000 * C(5,2)/C(500,2) ≈ 0.24 times. Patterns push the top
        // pair orders of magnitude higher.
        assert!(max_pair > 30, "expected correlated pairs, max pair count {max_pair}");
    }

    #[test]
    #[should_panic(expected = "need at least one item")]
    fn zero_items_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = QuestGenerator::new(QuestConfig::default().with_num_items(0), &mut rng);
    }

    #[test]
    fn tiny_universe_still_terminates() {
        let config = QuestConfig {
            num_items: 3,
            avg_transaction_len: 10.0,
            avg_pattern_len: 2.0,
            num_patterns: 5,
            correlation: 0.5,
            corruption_mean: 0.9,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let g = QuestGenerator::new(config, &mut rng);
        let txs = g.gen_transactions(&mut rng, 200);
        assert!(txs.iter().all(|t| t.len() <= 3 && !t.is_empty()));
    }
}
