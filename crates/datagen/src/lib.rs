//! # car-datagen
//!
//! Synthetic transaction data in the style of the IBM Quest generator
//! (Agrawal & Srikant, VLDB 1994), extended with **cyclically scheduled
//! patterns** for evaluating cyclic association rule mining — the same
//! family of data the ICDE'98 paper used (the authors ran a modified
//! version of the Quest generator; see DESIGN.md for the substitution
//! note).
//!
//! Two layers:
//!
//! * [`QuestConfig`] / [`QuestGenerator`] — the classic generator: a pool
//!   of potentially-frequent patterns with exponentially distributed
//!   weights, per-pattern corruption levels, Poisson-distributed
//!   transaction and pattern sizes, and correlated consecutive patterns.
//! * [`CyclicConfig`] / [`generate_cyclic`] — a time-segmented database:
//!   every unit is filled with Quest background traffic, and *planted*
//!   patterns are additionally injected into the transactions of the
//!   units lying on their cycle. The planted ground truth is returned so
//!   tests and experiments can check recovery.
//!
//! All generation is deterministic given a seed.
//!
//! ```
//! use car_datagen::{CyclicConfig, generate_cyclic};
//!
//! let config = CyclicConfig::default().with_units(8).with_transactions_per_unit(50);
//! let data = generate_cyclic(&config, 42);
//! assert_eq!(data.db.num_units(), 8);
//! assert_eq!(data.db.num_transactions(), 400);
//! assert!(!data.planted.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cyclic;
pub mod dist;
pub mod presets;
mod quest;

pub use cyclic::{generate_cyclic, CyclicConfig, GeneratedData, PlantedPattern};
pub use quest::{QuestConfig, QuestGenerator};
