//! Time-segmented databases with planted cyclic patterns.

use car_itemset::{ItemSet, SegmentedDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::quest::{QuestConfig, QuestGenerator};

/// A pattern planted into the generated database on a cyclic schedule.
///
/// In every time unit `u ≡ offset (mod length)` each transaction of the
/// unit independently receives the pattern's items with probability
/// `boost`; in off-cycle units the pattern only appears through chance
/// background traffic. Mining with a minimum support between the
/// background level and `boost` should therefore recover the pattern with
/// (a multiple of) the planted cycle.
#[derive(Clone, Debug, PartialEq)]
pub struct PlantedPattern {
    /// The items injected together.
    pub items: ItemSet,
    /// Cycle length of the schedule.
    pub length: u32,
    /// Cycle offset of the schedule (`< length`).
    pub offset: u32,
    /// Per-transaction inclusion probability in on-cycle units.
    pub boost: f64,
}

impl PlantedPattern {
    /// Whether the pattern is active in time unit `u`.
    pub fn active_in(&self, unit: usize) -> bool {
        unit as u64 % u64::from(self.length) == u64::from(self.offset)
    }
}

/// Configuration of the cyclic database generator.
#[derive(Clone, Copy, Debug)]
pub struct CyclicConfig {
    /// Background traffic parameters.
    pub quest: QuestConfig,
    /// Number of time units `n`.
    pub num_units: usize,
    /// Transactions generated per unit.
    pub transactions_per_unit: usize,
    /// Number of planted cyclic patterns.
    pub num_cyclic_patterns: usize,
    /// Planted pattern size (items per pattern).
    pub cyclic_pattern_len: usize,
    /// Inclusive range of planted cycle lengths.
    pub cycle_length_range: (u32, u32),
    /// Per-transaction inclusion probability in on-cycle units.
    pub boost: f64,
    /// At most this many planted patterns are offered to any single
    /// transaction.
    ///
    /// When several planted schedules are active in the same unit,
    /// injecting *all* of them into every transaction welds their items
    /// into one dense co-occurrence blob, which makes the frequent-
    /// itemset lattice (and the number of derivable rules) explode
    /// combinatorially — a property of the data, not the miners.
    /// Limiting each transaction to a couple of planted patterns keeps
    /// the generated data realistic (a shopper follows one or two
    /// seasonal habits at a time) while preserving strong per-pattern
    /// on-cycle support.
    pub max_planted_per_transaction: usize,
}

impl Default for CyclicConfig {
    /// The base workload of the experiment suite: `T5.I3.N500`, 64 units
    /// of 1000 transactions, 20 planted patterns with cycle lengths in
    /// `[2, 12]` and boost 0.8.
    fn default() -> Self {
        CyclicConfig {
            quest: QuestConfig::default(),
            num_units: 64,
            transactions_per_unit: 1000,
            num_cyclic_patterns: 20,
            cyclic_pattern_len: 2,
            cycle_length_range: (2, 12),
            boost: 0.8,
            max_planted_per_transaction: 2,
        }
    }
}

impl CyclicConfig {
    /// Sets the number of time units.
    pub fn with_units(mut self, n: usize) -> Self {
        self.num_units = n;
        self
    }

    /// Sets the transactions per unit.
    pub fn with_transactions_per_unit(mut self, n: usize) -> Self {
        self.transactions_per_unit = n;
        self
    }

    /// Sets the number of planted cyclic patterns.
    pub fn with_num_cyclic_patterns(mut self, n: usize) -> Self {
        self.num_cyclic_patterns = n;
        self
    }

    /// Sets the planted cycle length range.
    pub fn with_cycle_length_range(mut self, lo: u32, hi: u32) -> Self {
        self.cycle_length_range = (lo, hi);
        self
    }

    /// Sets the Quest background parameters.
    pub fn with_quest(mut self, quest: QuestConfig) -> Self {
        self.quest = quest;
        self
    }

    fn validate(&self) {
        assert!(self.num_units > 0, "need at least one time unit");
        let (lo, hi) = self.cycle_length_range;
        assert!(lo >= 1 && lo <= hi, "invalid cycle length range");
        assert!((0.0..=1.0).contains(&self.boost), "boost must be in [0,1]");
        assert!(self.cyclic_pattern_len >= 1, "patterns need at least one item");
        assert!(
            self.cyclic_pattern_len as u32 <= self.quest.num_items,
            "pattern larger than item universe"
        );
        assert!(
            self.max_planted_per_transaction >= 1,
            "max_planted_per_transaction must be at least 1"
        );
    }
}

/// A generated database together with its planted ground truth.
#[derive(Clone, Debug)]
pub struct GeneratedData {
    /// The time-segmented transaction database.
    pub db: SegmentedDb,
    /// The planted cyclic patterns.
    pub planted: Vec<PlantedPattern>,
}

/// Generates a time-segmented database with planted cyclic patterns.
///
/// Deterministic given `(config, seed)`.
pub fn generate_cyclic(config: &CyclicConfig, seed: u64) -> GeneratedData {
    config.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let quest = QuestGenerator::new(config.quest, &mut rng);

    // Draw the planted patterns: distinct item combinations on random
    // schedules within the configured length range.
    let (lo, hi) = config.cycle_length_range;
    let mut planted: Vec<PlantedPattern> = Vec::with_capacity(config.num_cyclic_patterns);
    let mut tries = 0;
    while planted.len() < config.num_cyclic_patterns
        && tries < 64 * config.num_cyclic_patterns + 64
    {
        tries += 1;
        let mut items: Vec<u32> = Vec::with_capacity(config.cyclic_pattern_len);
        while items.len() < config.cyclic_pattern_len {
            let id = rng.gen_range(0..config.quest.num_items);
            if !items.contains(&id) {
                items.push(id);
            }
        }
        let items = ItemSet::from_ids(items);
        if planted.iter().any(|p| p.items == items) {
            continue;
        }
        let length = rng.gen_range(lo..=hi);
        let offset = rng.gen_range(0..length);
        planted.push(PlantedPattern { items, length, offset, boost: config.boost });
    }

    // Fill each unit with background traffic plus planted injections.
    let mut units: Vec<Vec<ItemSet>> = Vec::with_capacity(config.num_units);
    for u in 0..config.num_units {
        let active: Vec<&PlantedPattern> =
            planted.iter().filter(|p| p.active_in(u)).collect();
        let mut unit = Vec::with_capacity(config.transactions_per_unit);
        let mut offer_indices: Vec<usize> = (0..active.len()).collect();
        for _ in 0..config.transactions_per_unit {
            let mut t = quest.gen_transaction(&mut rng);
            // Offer at most `max_planted_per_transaction` active patterns
            // to this transaction (partial Fisher–Yates over the active
            // indices), each included with probability `boost`.
            let offers = active.len().min(config.max_planted_per_transaction);
            for slot in 0..offers {
                let pick = rng.gen_range(slot..offer_indices.len());
                offer_indices.swap(slot, pick);
                let p = active[offer_indices[slot]];
                if rng.gen::<f64>() < p.boost {
                    t = t.union(&p.items);
                }
            }
            unit.push(t);
        }
        units.push(unit);
    }

    GeneratedData { db: SegmentedDb::from_unit_itemsets(units), planted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CyclicConfig {
        CyclicConfig {
            quest: QuestConfig::default().with_num_items(100),
            num_units: 12,
            transactions_per_unit: 200,
            num_cyclic_patterns: 3,
            cyclic_pattern_len: 2,
            cycle_length_range: (2, 4),
            boost: 0.9,
            max_planted_per_transaction: 2,
        }
    }

    #[test]
    fn shape_matches_config() {
        let data = generate_cyclic(&small_config(), 1);
        assert_eq!(data.db.num_units(), 12);
        assert_eq!(data.db.num_transactions(), 12 * 200);
        assert_eq!(data.planted.len(), 3);
        for p in &data.planted {
            assert_eq!(p.items.len(), 2);
            assert!((2..=4).contains(&p.length));
            assert!(p.offset < p.length);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_cyclic(&small_config(), 42);
        let b = generate_cyclic(&small_config(), 42);
        assert_eq!(a.db, b.db);
        assert_eq!(a.planted, b.planted);
        let c = generate_cyclic(&small_config(), 43);
        assert_ne!(a.db, c.db);
    }

    #[test]
    fn planted_patterns_have_boosted_on_cycle_support() {
        let config = small_config();
        let data = generate_cyclic(&config, 7);
        for p in &data.planted {
            let mut on_support = Vec::new();
            let mut off_support = Vec::new();
            for (u, txs) in data.db.iter_units() {
                let count = txs.iter().filter(|t| p.items.is_subset_of(t)).count();
                let frac = count as f64 / txs.len() as f64;
                if p.active_in(u) {
                    on_support.push(frac);
                } else {
                    off_support.push(frac);
                }
            }
            let on_avg: f64 = on_support.iter().sum::<f64>() / on_support.len() as f64;
            let off_avg: f64 = if off_support.is_empty() {
                0.0
            } else {
                off_support.iter().sum::<f64>() / off_support.len() as f64
            };
            // With at most 2 of the 3 patterns offered per transaction,
            // on-cycle support is boost * min(1, 2/active) >= 0.6 here.
            assert!(
                on_avg > 0.5,
                "pattern {:?} on-cycle support {on_avg} too low",
                p.items
            );
            assert!(
                off_avg < 0.3,
                "pattern {:?} off-cycle support {off_avg} too high",
                p.items
            );
        }
    }

    #[test]
    fn active_in_matches_schedule() {
        let p = PlantedPattern {
            items: ItemSet::from_ids([1, 2]),
            length: 3,
            offset: 1,
            boost: 1.0,
        };
        assert!(!p.active_in(0));
        assert!(p.active_in(1));
        assert!(!p.active_in(2));
        assert!(p.active_in(4));
    }

    #[test]
    #[should_panic(expected = "invalid cycle length range")]
    fn invalid_range_rejected() {
        let mut c = small_config();
        c.cycle_length_range = (5, 2);
        let _ = generate_cyclic(&c, 0);
    }

    #[test]
    fn zero_patterns_is_pure_background() {
        let mut c = small_config();
        c.num_cyclic_patterns = 0;
        let data = generate_cyclic(&c, 3);
        assert!(data.planted.is_empty());
        assert_eq!(data.db.num_transactions(), 12 * 200);
    }
}
