//! Property-based tests: counting engines against a naive oracle, Apriori
//! against the definition-level miner, and rule-generation invariants.

use car_apriori::{
    count_candidates, eclat, fp_growth, generate_rules, naive, Apriori, AprioriConfig,
    CountStrategy, MinConfidence, MinSupport,
};
use car_itemset::ItemSet;
use proptest::prelude::*;

fn arb_transactions() -> impl Strategy<Value = Vec<ItemSet>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..12, 0..8).prop_map(ItemSet::from_ids),
        0..25,
    )
}

fn arb_candidates(k: usize) -> impl Strategy<Value = Vec<ItemSet>> {
    proptest::collection::btree_set(
        proptest::collection::btree_set(0u32..12, k..=k).prop_map(ItemSet::from_ids),
        0..20,
    )
    .prop_map(|s| s.into_iter().collect())
}

/// Half dense ids, half ids near `u32::MAX` — forces the hashed
/// `ItemMap` fallback inside the vertical bitmap build.
fn sparse_id(v: u32) -> u32 {
    if v < 12 {
        v
    } else {
        u32::MAX - 1 - (v - 12)
    }
}

fn arb_sparse_transactions() -> impl Strategy<Value = Vec<ItemSet>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..24).prop_map(sparse_id), 0..8)
            .prop_map(ItemSet::from_ids),
        0..25,
    )
}

fn arb_sparse_candidates(k: usize) -> impl Strategy<Value = Vec<ItemSet>> {
    proptest::collection::btree_set(
        proptest::collection::btree_set((0u32..24).prop_map(sparse_id), k..=k)
            .prop_map(ItemSet::from_ids),
        0..20,
    )
    .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn counting_engines_match_naive(
        tx in arb_transactions(),
        cands in (1usize..4).prop_flat_map(arb_candidates),
    ) {
        let expected: Vec<u64> = cands
            .iter()
            .map(|c| naive::count_itemset(c, &tx))
            .collect();
        for strategy in [
            CountStrategy::HashMap,
            CountStrategy::HashTree,
            CountStrategy::Vertical,
            CountStrategy::Auto,
        ] {
            prop_assert_eq!(
                count_candidates(&cands, &tx, strategy),
                expected.clone(),
                "strategy {:?}", strategy
            );
        }
    }

    #[test]
    fn apriori_matches_naive_miner(
        tx in arb_transactions(),
        threshold in 1u64..6,
    ) {
        let ms = MinSupport::count(threshold);
        let fast = Apriori::new(AprioriConfig::new(ms)).mine(&tx);
        let slow = naive::frequent_itemsets(&tx, ms, None);
        let mut a: Vec<(ItemSet, u64)> = fast.iter().map(|(s, c)| (s.clone(), c)).collect();
        let mut b: Vec<(ItemSet, u64)> = slow.iter().map(|(s, c)| (s.clone(), c)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn three_miners_agree(
        tx in arb_transactions(),
        threshold in 1u64..6,
        max_size in proptest::option::of(1usize..5),
    ) {
        // Apriori (level-wise), Eclat (tid-lists), and FP-Growth (pattern
        // growth) are three independent mechanisms; they must produce
        // identical frequent itemsets with identical counts.
        let ms = MinSupport::count(threshold);
        let mut config = AprioriConfig::new(ms);
        if let Some(cap) = max_size {
            config = config.with_max_size(cap);
        }
        let a = Apriori::new(config).mine(&tx);
        let e = eclat(&tx, ms, max_size);
        let f = fp_growth(&tx, ms, max_size);
        let sorted = |x: &car_apriori::FrequentItemsets| {
            let mut v: Vec<(ItemSet, u64)> = x.iter().map(|(s, c)| (s.clone(), c)).collect();
            v.sort();
            v
        };
        prop_assert_eq!(sorted(&a), sorted(&e), "apriori vs eclat");
        prop_assert_eq!(sorted(&a), sorted(&f), "apriori vs fp-growth");
    }

    #[test]
    fn apriori_engines_agree(
        tx in arb_transactions(),
        threshold in 1u64..5,
    ) {
        let base = AprioriConfig::new(MinSupport::count(threshold));
        let sorted = |f: &car_apriori::FrequentItemsets| {
            let mut v: Vec<(ItemSet, u64)> = f.iter().map(|(s, c)| (s.clone(), c)).collect();
            v.sort();
            v
        };
        let a = Apriori::new(base.with_counting(CountStrategy::HashMap)).mine(&tx);
        let b = Apriori::new(base.with_counting(CountStrategy::HashTree)).mine(&tx);
        let v = Apriori::new(base.with_counting(CountStrategy::Vertical)).mine(&tx);
        prop_assert_eq!(sorted(&a), sorted(&b), "hashmap vs hashtree");
        prop_assert_eq!(sorted(&a), sorted(&v), "hashmap vs vertical");
    }

    #[test]
    fn vertical_kernel_matches_naive_on_sparse_ids(
        tx in arb_sparse_transactions(),
        cands in (1usize..3).prop_flat_map(arb_sparse_candidates),
    ) {
        let expected: Vec<u64> = cands
            .iter()
            .map(|c| naive::count_itemset(c, &tx))
            .collect();
        prop_assert_eq!(
            count_candidates(&cands, &tx, CountStrategy::Vertical),
            expected
        );
    }

    #[test]
    fn frequent_itemsets_satisfy_definition(
        tx in arb_transactions(),
        threshold in 1u64..5,
    ) {
        let ms = MinSupport::count(threshold);
        let f = Apriori::new(AprioriConfig::new(ms)).mine(&tx);
        for (itemset, count) in f.iter() {
            prop_assert_eq!(count, naive::count_itemset(itemset, &tx));
            prop_assert!(count >= threshold.max(1));
            // Anti-monotonicity: every immediate subset is also large.
            for sub in itemset.immediate_subsets() {
                if !sub.is_empty() {
                    prop_assert!(f.contains(&sub), "{} missing subset {}", itemset, sub);
                }
            }
        }
    }

    #[test]
    fn rules_satisfy_thresholds(
        tx in arb_transactions(),
        threshold in 1u64..4,
        conf in 0.0f64..=1.0,
    ) {
        let f = Apriori::new(AprioriConfig::new(MinSupport::count(threshold))).mine(&tx);
        let minconf = MinConfidence::new(conf).unwrap();
        for r in generate_rules(&f, minconf) {
            // Both sides non-empty and disjoint.
            prop_assert!(!r.rule.antecedent.is_empty());
            prop_assert!(!r.rule.consequent.is_empty());
            prop_assert!(r.rule.antecedent.is_disjoint(&r.rule.consequent));
            // Counts are exact.
            let z = r.rule.itemset();
            prop_assert_eq!(r.rule_count, naive::count_itemset(&z, &tx));
            prop_assert_eq!(
                r.antecedent_count,
                naive::count_itemset(&r.rule.antecedent, &tx)
            );
            // Confidence threshold honoured (integer comparison).
            prop_assert!(minconf.accepts(r.rule_count, r.antecedent_count));
        }
    }

    #[test]
    fn rule_generation_is_complete(
        tx in arb_transactions(),
        threshold in 1u64..4,
    ) {
        // Every (X ⇒ Y) with Z = X∪Y frequent and confidence ≥ 0 must be
        // produced when minconf = 0.
        let f = Apriori::new(AprioriConfig::new(MinSupport::count(threshold))).mine(&tx);
        let rules = generate_rules(&f, MinConfidence::new(0.0).unwrap());
        let mut expected = 0usize;
        for (z, _) in f.iter() {
            if z.len() >= 2 {
                // antecedent nonempty, consequent nonempty: 2^n - 2 splits,
                // but confidence undefined (antecedent count 0) never
                // happens for subsets of a frequent itemset.
                expected += (1usize << z.len()) - 2;
            }
        }
        prop_assert_eq!(rules.len(), expected);
    }
}
