//! Closed and maximal frequent itemsets.
//!
//! The full frequent-itemset collection is heavily redundant: every
//! subset of a frequent itemset is frequent too. Two standard condensed
//! representations:
//!
//! * a frequent itemset is **closed** when no proper superset has the
//!   same support — the closed sets preserve *all* support information
//!   (any itemset's count equals the count of its smallest closed
//!   superset);
//! * a frequent itemset is **maximal** when no proper superset is
//!   frequent at all — the smallest representation, but counts of
//!   subsets are lost.
//!
//! These filters help when inspecting mining output and when exporting
//! compact summaries of per-unit lattices.

use car_itemset::ItemSet;

use crate::frequent::FrequentItemsets;

/// The closed frequent itemsets, sorted.
///
/// Quadratic per level-pair in the worst case (`O(Σ |L_k|·|L_{k+1}|·k)`),
/// which is fine for the post-processing role it plays here.
pub fn closed_itemsets(frequent: &FrequentItemsets) -> Vec<(ItemSet, u64)> {
    let mut out: Vec<(ItemSet, u64)> = Vec::new();
    let max = frequent.max_level();
    for k in 1..=max {
        'candidate: for (itemset, count) in frequent.level(k) {
            // Closed iff no (k+1)-superset has the same count. Supersets
            // with *larger* count are impossible; smaller-count supersets
            // do not affect closedness.
            for (sup, sup_count) in frequent.level(k + 1) {
                if sup_count == count && itemset.is_subset_of(sup) {
                    continue 'candidate;
                }
            }
            out.push((itemset.clone(), count));
        }
    }
    out.sort();
    out
}

/// The maximal frequent itemsets, sorted.
pub fn maximal_itemsets(frequent: &FrequentItemsets) -> Vec<(ItemSet, u64)> {
    let mut out: Vec<(ItemSet, u64)> = Vec::new();
    let max = frequent.max_level();
    for k in 1..=max {
        'candidate: for (itemset, count) in frequent.level(k) {
            for (sup, _) in frequent.level(k + 1) {
                if itemset.is_subset_of(sup) {
                    continue 'candidate;
                }
            }
            out.push((itemset.clone(), count));
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apriori, AprioriConfig, MinSupport};

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn mine(tx: &[ItemSet], min: u64) -> FrequentItemsets {
        Apriori::new(AprioriConfig::new(MinSupport::count(min))).mine(tx)
    }

    #[test]
    fn textbook_closed_and_maximal() {
        // Classic example: T = {ab, abc, abc} with minsup 2.
        let tx = vec![set(&[1, 2]), set(&[1, 2, 3]), set(&[1, 2, 3])];
        let f = mine(&tx, 2);
        // Frequent: 1(3) 2(3) 3(2) 12(3) 13(2) 23(2) 123(2).
        let closed = closed_itemsets(&f);
        assert_eq!(
            closed,
            vec![(set(&[1, 2]), 3), (set(&[1, 2, 3]), 2)],
            "only {{1,2}} (count 3) and {{1,2,3}} (count 2) are closed"
        );
        let maximal = maximal_itemsets(&f);
        assert_eq!(maximal, vec![(set(&[1, 2, 3]), 2)]);
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        let tx = vec![
            set(&[1, 2, 5]),
            set(&[2, 4]),
            set(&[2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 3]),
            set(&[1, 2, 3, 5]),
            set(&[1, 2, 3]),
        ];
        let f = mine(&tx, 2);
        let closed = closed_itemsets(&f);
        let maximal = maximal_itemsets(&f);
        assert!(!closed.is_empty());
        assert!(maximal.len() <= closed.len());
        for m in &maximal {
            assert!(closed.contains(m), "maximal {m:?} must be closed");
        }
    }

    #[test]
    fn closed_sets_preserve_support_information() {
        let tx = vec![
            set(&[1, 2, 5]),
            set(&[2, 4]),
            set(&[2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 3]),
            set(&[1, 2, 3, 5]),
            set(&[1, 2, 3]),
        ];
        let f = mine(&tx, 2);
        let closed = closed_itemsets(&f);
        // Every frequent itemset's count = max count among its closed
        // supersets.
        for (itemset, count) in f.iter() {
            let reconstructed = closed
                .iter()
                .filter(|(c, _)| itemset.is_subset_of(c))
                .map(|&(_, cnt)| cnt)
                .max()
                .expect("every frequent itemset has a closed superset");
            assert_eq!(reconstructed, count, "{itemset}");
        }
    }

    #[test]
    fn empty_input() {
        let f = FrequentItemsets::new(0);
        assert!(closed_itemsets(&f).is_empty());
        assert!(maximal_itemsets(&f).is_empty());
    }

    #[test]
    fn singletons_only() {
        let tx = vec![set(&[1]), set(&[2]), set(&[1])];
        let f = mine(&tx, 1);
        // No pair is frequent, so all singletons are closed and maximal.
        assert_eq!(closed_itemsets(&f).len(), 2);
        assert_eq!(maximal_itemsets(&f).len(), 2);
    }
}
