use std::fmt;

/// A minimum-support threshold: either an absolute transaction count or a
/// fraction of the database size.
///
/// An itemset is **large** (frequent) in a database of `n` transactions
/// when its count is at least [`MinSupport::threshold`]`(n)`. The
/// threshold is never below 1, so nothing is large in an empty database
/// and zero-count itemsets are never large — the boundary semantics the
/// cyclic miners rely on when a time unit has no transactions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MinSupport {
    /// At least this many transactions must contain the itemset.
    Count(u64),
    /// At least this fraction (in `[0, 1]`) of the database must contain
    /// the itemset.
    Fraction(f64),
}

impl MinSupport {
    /// An absolute count threshold (clamped up to 1).
    pub fn count(c: u64) -> Self {
        MinSupport::Count(c.max(1))
    }

    /// A fractional threshold; `None` unless `0.0 <= f <= 1.0`.
    pub fn fraction(f: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&f) {
            Some(MinSupport::Fraction(f))
        } else {
            None
        }
    }

    /// The absolute count an itemset needs in a database of
    /// `num_transactions` to be large. Always at least 1.
    pub fn threshold(self, num_transactions: usize) -> u64 {
        match self {
            MinSupport::Count(c) => c.max(1),
            MinSupport::Fraction(f) => {
                ((f * num_transactions as f64).ceil() as u64).max(1)
            }
        }
    }
}

impl fmt::Display for MinSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinSupport::Count(c) => write!(f, "count>={c}"),
            MinSupport::Fraction(x) => write!(f, "{}%", x * 100.0),
        }
    }
}

/// A minimum-confidence threshold in `[0, 1]`.
///
/// A rule `X ⇒ Y` meets the threshold in a database when
/// `count(X ∪ Y) >= minconf · count(X)`. The comparison is performed in
/// integer arithmetic (`count(X∪Y) · 2^32 >= minconf_fixed · count(X)`)
/// to keep miners deterministic across platforms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinConfidence(f64);

impl MinConfidence {
    /// Creates a threshold; `None` unless `0.0 <= f <= 1.0`.
    pub fn new(f: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&f) {
            Some(MinConfidence(f))
        } else {
            None
        }
    }

    /// The raw fraction.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether a rule with `rule_count` occurrences out of
    /// `antecedent_count` antecedent occurrences meets the threshold.
    ///
    /// Returns `false` when the antecedent never occurs (confidence is
    /// undefined, and such a rule cannot *hold*).
    pub fn accepts(self, rule_count: u64, antecedent_count: u64) -> bool {
        if antecedent_count == 0 {
            return false;
        }
        // Fixed-point comparison: rule_count / antecedent_count >= self.0.
        let lhs = (rule_count as u128) << 32;
        let rhs = (self.0 * 4_294_967_296.0) as u128 * antecedent_count as u128;
        lhs >= rhs
    }
}

impl fmt::Display for MinConfidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_threshold_clamps_to_one() {
        assert_eq!(MinSupport::count(0).threshold(100), 1);
        assert_eq!(MinSupport::count(5).threshold(100), 5);
        assert_eq!(MinSupport::Count(0).threshold(100), 1);
    }

    #[test]
    fn fraction_threshold_rounds_up() {
        let ms = MinSupport::fraction(0.5).unwrap();
        assert_eq!(ms.threshold(10), 5);
        assert_eq!(ms.threshold(9), 5); // ceil(4.5)
        assert_eq!(ms.threshold(1), 1);
        assert_eq!(ms.threshold(0), 1); // nothing large in empty db
        let tiny = MinSupport::fraction(0.0).unwrap();
        assert_eq!(tiny.threshold(100), 1); // still requires presence
    }

    #[test]
    fn fraction_validation() {
        assert!(MinSupport::fraction(-0.1).is_none());
        assert!(MinSupport::fraction(1.1).is_none());
        assert!(MinSupport::fraction(1.0).is_some());
        assert!(MinConfidence::new(0.5).is_some());
        assert!(MinConfidence::new(-0.5).is_none());
        assert!(MinConfidence::new(2.0).is_none());
    }

    #[test]
    fn confidence_accepts_boundary() {
        let half = MinConfidence::new(0.5).unwrap();
        assert!(half.accepts(1, 2)); // exactly 0.5
        assert!(half.accepts(2, 3));
        assert!(!half.accepts(1, 3));
        assert!(!half.accepts(0, 0)); // undefined confidence
        let one = MinConfidence::new(1.0).unwrap();
        assert!(one.accepts(3, 3));
        assert!(!one.accepts(2, 3));
        let zero = MinConfidence::new(0.0).unwrap();
        assert!(zero.accepts(0, 5));
        assert!(!zero.accepts(0, 0));
    }

    #[test]
    fn confidence_large_counts_do_not_overflow() {
        let c = MinConfidence::new(0.999).unwrap();
        assert!(c.accepts(u64::MAX, u64::MAX));
        assert!(!c.accepts(u64::MAX / 2, u64::MAX));
    }

    #[test]
    fn display_formats() {
        assert_eq!(MinSupport::count(3).to_string(), "count>=3");
        assert_eq!(MinSupport::fraction(0.25).unwrap().to_string(), "25%");
        assert_eq!(MinConfidence::new(0.6).unwrap().to_string(), "60%");
    }
}
