//! Association rule generation from frequent itemsets (`ap-genrules`).

use std::fmt;

use car_itemset::ItemSet;

use crate::candidate::apriori_gen;
use crate::frequent::FrequentItemsets;
use crate::support::MinConfidence;

/// An association rule `antecedent ⇒ consequent` (disjoint, non-empty).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rule {
    /// Left-hand side (`X` in `X ⇒ Y`).
    pub antecedent: ItemSet,
    /// Right-hand side (`Y` in `X ⇒ Y`).
    pub consequent: ItemSet,
}

impl Rule {
    /// Creates a rule, validating that both sides are non-empty and
    /// disjoint.
    pub fn new(antecedent: ItemSet, consequent: ItemSet) -> Option<Self> {
        if antecedent.is_empty() || consequent.is_empty() {
            return None;
        }
        if !antecedent.is_disjoint(&consequent) {
            return None;
        }
        Some(Rule { antecedent, consequent })
    }

    /// The union of both sides (the itemset whose support is the rule's
    /// support).
    pub fn itemset(&self) -> ItemSet {
        self.antecedent.union(&self.consequent)
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} => {}", self.antecedent, self.consequent)
    }
}

/// A rule with the counts needed to derive its quality metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct AssociationRule {
    /// The rule.
    pub rule: Rule,
    /// Transactions containing antecedent ∪ consequent.
    pub rule_count: u64,
    /// Transactions containing the antecedent.
    pub antecedent_count: u64,
    /// Transactions containing the consequent.
    pub consequent_count: u64,
    /// Database size.
    pub num_transactions: usize,
}

impl AssociationRule {
    /// Support fraction of the rule (`count(X∪Y) / |D|`).
    pub fn support(&self) -> f64 {
        if self.num_transactions == 0 {
            0.0
        } else {
            self.rule_count as f64 / self.num_transactions as f64
        }
    }

    /// Confidence (`count(X∪Y) / count(X)`).
    pub fn confidence(&self) -> f64 {
        if self.antecedent_count == 0 {
            0.0
        } else {
            self.rule_count as f64 / self.antecedent_count as f64
        }
    }

    /// Lift (`confidence / support(Y)`); 0 when undefined.
    pub fn lift(&self) -> f64 {
        if self.consequent_count == 0 || self.num_transactions == 0 {
            return 0.0;
        }
        let consequent_support =
            self.consequent_count as f64 / self.num_transactions as f64;
        self.confidence() / consequent_support
    }
}

/// Generates every association rule meeting `min_confidence` from the
/// frequent itemsets, using the `ap-genrules` strategy: consequents grow
/// level-wise and a failing consequent prunes all its supersets
/// (confidence is anti-monotone in the consequent).
///
/// The result is sorted by `(antecedent, consequent)` for determinism.
pub fn generate_rules(
    frequent: &FrequentItemsets,
    min_confidence: MinConfidence,
) -> Vec<AssociationRule> {
    let mut out = Vec::new();
    for (itemset, count) in frequent.iter() {
        if itemset.len() < 2 {
            continue;
        }
        rules_from_itemset(frequent, itemset, count, min_confidence, &mut out);
    }
    out.sort_by(|a, b| a.rule.cmp(&b.rule));
    out
}

/// Generates the rules derivable from one frequent itemset `z`.
fn rules_from_itemset(
    frequent: &FrequentItemsets,
    z: &ItemSet,
    z_count: u64,
    min_confidence: MinConfidence,
    out: &mut Vec<AssociationRule>,
) {
    // Consequents of size 1 first.
    let mut consequents: Vec<ItemSet> = Vec::new();
    for item in z.iter() {
        let y = ItemSet::single(item);
        if let Some(rule) = try_rule(frequent, z, z_count, &y, min_confidence) {
            out.push(rule);
            consequents.push(y);
        }
    }
    // Grow consequents level-wise; stop before the consequent swallows z.
    while !consequents.is_empty() && consequents[0].len() + 1 < z.len() {
        consequents.sort_unstable();
        let next = apriori_gen(&consequents);
        consequents = next
            .into_iter()
            .filter(|y| {
                if let Some(rule) = try_rule(frequent, z, z_count, y, min_confidence) {
                    out.push(rule);
                    true
                } else {
                    false
                }
            })
            .collect();
    }
}

fn try_rule(
    frequent: &FrequentItemsets,
    z: &ItemSet,
    z_count: u64,
    consequent: &ItemSet,
    min_confidence: MinConfidence,
) -> Option<AssociationRule> {
    let antecedent = z.difference(consequent);
    if antecedent.is_empty() {
        return None;
    }
    let antecedent_count =
        frequent.count(&antecedent).expect("subsets of a frequent itemset are frequent");
    if !min_confidence.accepts(z_count, antecedent_count) {
        return None;
    }
    let consequent_count =
        frequent.count(consequent).expect("subsets of a frequent itemset are frequent");
    Some(AssociationRule {
        rule: Rule { antecedent, consequent: consequent.clone() },
        rule_count: z_count,
        antecedent_count,
        consequent_count,
        num_transactions: frequent.num_transactions(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apriori, AprioriConfig, MinSupport};

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn mine(tx: &[ItemSet], minsup_count: u64) -> FrequentItemsets {
        Apriori::new(AprioriConfig::new(MinSupport::count(minsup_count))).mine(tx)
    }

    #[test]
    fn rule_validation() {
        assert!(Rule::new(set(&[1]), set(&[2])).is_some());
        assert!(Rule::new(ItemSet::empty(), set(&[2])).is_none());
        assert!(Rule::new(set(&[1]), ItemSet::empty()).is_none());
        assert!(Rule::new(set(&[1, 2]), set(&[2, 3])).is_none());
        let r = Rule::new(set(&[1]), set(&[2, 3])).unwrap();
        assert_eq!(r.itemset(), set(&[1, 2, 3]));
        assert_eq!(r.to_string(), "{1} => {2 3}");
    }

    #[test]
    fn generates_expected_rules_simple() {
        // 4 transactions; {1,2} appears 3 times, {1} 4, {2} 3.
        let tx = vec![set(&[1, 2]), set(&[1, 2]), set(&[1, 2]), set(&[1])];
        let f = mine(&tx, 1);
        let rules = generate_rules(&f, MinConfidence::new(0.8).unwrap());
        // 1 => 2 has confidence 3/4 = 0.75 (rejected); 2 => 1 has 3/3 = 1.
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].rule, Rule::new(set(&[2]), set(&[1])).unwrap());
        assert_eq!(rules[0].rule_count, 3);
        assert_eq!(rules[0].antecedent_count, 3);
        assert!((rules[0].confidence() - 1.0).abs() < 1e-12);
        assert!((rules[0].support() - 0.75).abs() < 1e-12);
        assert!((rules[0].lift() - 1.0).abs() < 1e-12);
    }

    /// Brute-force oracle over all frequent itemsets and all splits.
    fn oracle_rules(
        tx: &[ItemSet],
        f: &FrequentItemsets,
        minconf: MinConfidence,
    ) -> Vec<Rule> {
        let mut out = Vec::new();
        for (z, z_count) in f.iter() {
            if z.len() < 2 {
                continue;
            }
            for x in z.proper_nonempty_subsets() {
                let y = z.difference(&x);
                let x_count = tx.iter().filter(|t| x.is_subset_of(t)).count() as u64;
                if minconf.accepts(z_count, x_count) {
                    out.push(Rule { antecedent: x, consequent: y });
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn matches_oracle_on_han_kamber() {
        let tx = vec![
            set(&[1, 2, 5]),
            set(&[2, 4]),
            set(&[2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 3]),
            set(&[1, 2, 3, 5]),
            set(&[1, 2, 3]),
        ];
        let f = mine(&tx, 2);
        for conf in [0.0, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let minconf = MinConfidence::new(conf).unwrap();
            let got: Vec<Rule> =
                generate_rules(&f, minconf).into_iter().map(|r| r.rule).collect();
            let want = oracle_rules(&tx, &f, minconf);
            assert_eq!(got, want, "minconf={conf}");
        }
    }

    #[test]
    fn counts_are_consistent() {
        let tx = vec![
            set(&[1, 2, 3]),
            set(&[1, 2]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 2, 3]),
        ];
        let f = mine(&tx, 2);
        for r in generate_rules(&f, MinConfidence::new(0.0).unwrap()) {
            let z = r.rule.itemset();
            let true_rule = tx.iter().filter(|t| z.is_subset_of(t)).count() as u64;
            let true_ante =
                tx.iter().filter(|t| r.rule.antecedent.is_subset_of(t)).count() as u64;
            let true_cons =
                tx.iter().filter(|t| r.rule.consequent.is_subset_of(t)).count() as u64;
            assert_eq!(r.rule_count, true_rule, "{}", r.rule);
            assert_eq!(r.antecedent_count, true_ante, "{}", r.rule);
            assert_eq!(r.consequent_count, true_cons, "{}", r.rule);
            assert_eq!(r.num_transactions, tx.len());
        }
    }

    #[test]
    fn no_rules_from_singletons_only() {
        let tx = vec![set(&[1]), set(&[2])];
        let f = mine(&tx, 1);
        assert!(generate_rules(&f, MinConfidence::new(0.0).unwrap()).is_empty());
    }

    #[test]
    fn metrics_edge_cases() {
        let r = AssociationRule {
            rule: Rule::new(set(&[1]), set(&[2])).unwrap(),
            rule_count: 0,
            antecedent_count: 0,
            consequent_count: 0,
            num_transactions: 0,
        };
        assert_eq!(r.support(), 0.0);
        assert_eq!(r.confidence(), 0.0);
        assert_eq!(r.lift(), 0.0);
    }
}
