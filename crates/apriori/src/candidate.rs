//! Level-wise candidate generation (the `apriori-gen` procedure).

use car_itemset::ItemSet;

/// Generates the candidate `(k+1)`-itemsets from the large `k`-itemsets.
///
/// Implements both steps of `apriori-gen` (Agrawal & Srikant, 1994):
///
/// 1. **Join**: two large `k`-itemsets sharing their first `k−1` items
///    produce a `(k+1)`-candidate.
/// 2. **Prune**: a candidate survives only if *every* `k`-subset is large
///    (property: all subsets of a frequent itemset are frequent).
///
/// `large` must be sorted and duplicate-free with uniform length `k ≥ 1`;
/// the output is sorted, duplicate-free, of length `k + 1`.
///
/// # Panics
///
/// Panics in debug builds if `large` is unsorted or mixes lengths.
pub fn apriori_gen(large: &[ItemSet]) -> Vec<ItemSet> {
    debug_assert!(large.windows(2).all(|w| w[0] < w[1]), "input must be sorted");
    debug_assert!(
        large.windows(2).all(|w| w[0].len() == w[1].len()),
        "input must have uniform length"
    );
    if large.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();

    // Sorted input groups itemsets by their (k-1)-prefix, so joinable
    // pairs are contiguous: join each itemset with the following ones
    // while prefixes agree.
    let k = large[0].len();
    for (i, a) in large.iter().enumerate() {
        for b in &large[i + 1..] {
            if a.as_slice()[..k - 1] != b.as_slice()[..k - 1] {
                break;
            }
            let candidate = a.apriori_join(b).expect("sorted same-prefix pair must join");
            if prune_ok(&candidate, large) {
                out.push(candidate);
            }
        }
    }
    out
}

/// Prune step: every immediate subset must be large.
///
/// The two subsets obtained by dropping one of the last two items are the
/// join parents and are large by construction, but checking all `k+1`
/// subsets keeps the function independent of how the candidate was built.
///
/// `large` is sorted (the caller's precondition), so membership is a
/// binary search — no hash set needs to be built per level.
fn prune_ok(candidate: &ItemSet, large: &[ItemSet]) -> bool {
    candidate.immediate_subsets().all(|sub| large.binary_search(&sub).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(apriori_gen(&[]).is_empty());
    }

    #[test]
    fn singletons_join_pairwise() {
        let large = vec![set(&[1]), set(&[2]), set(&[3])];
        let cands = apriori_gen(&large);
        assert_eq!(cands, vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])]);
    }

    #[test]
    fn prune_removes_candidates_with_small_subsets() {
        // {1,2}, {1,3} join to {1,2,3} but {2,3} is not large → pruned.
        let large = vec![set(&[1, 2]), set(&[1, 3])];
        assert!(apriori_gen(&large).is_empty());

        // Adding {2,3} lets the candidate through.
        let large = vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])];
        assert_eq!(apriori_gen(&large), vec![set(&[1, 2, 3])]);
    }

    #[test]
    fn classic_textbook_case() {
        // Agrawal–Srikant example: L3 = {123, 124, 134, 135, 234} gives
        // C4 = {1234} ({1345} is pruned because {145} ∉ L3).
        let large = vec![
            set(&[1, 2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3, 4]),
            set(&[1, 3, 5]),
            set(&[2, 3, 4]),
        ];
        assert_eq!(apriori_gen(&large), vec![set(&[1, 2, 3, 4])]);
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let large: Vec<ItemSet> = (1u32..=6).map(|i| set(&[i])).collect();
        let cands = apriori_gen(&large);
        assert_eq!(cands.len(), 15); // C(6,2)
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn non_adjacent_prefix_groups_do_not_join() {
        let large = vec![set(&[1, 2]), set(&[3, 4])];
        assert!(apriori_gen(&large).is_empty());
    }
}
