//! Support counting engines.
//!
//! Counting is the hot loop of Apriori: for every transaction, find which
//! candidate `k`-itemsets it contains. Two engines are provided and kept
//! behaviourally identical (tests cross-check them):
//!
//! * [`CountStrategy::HashMap`] — enumerate the `k`-subsets of each
//!   transaction and look them up in a fast hash map. Simple and very
//!   fast while `C(|t|, k)` stays small (short transactions, low `k`).
//! * [`CountStrategy::HashTree`] — the Apriori paper's hash tree, which
//!   scales to long transactions and large candidate sets.
//! * [`CountStrategy::Auto`] — picks per batch based on transaction
//!   length and candidate count.

use car_itemset::ItemSet;

use crate::hash::FastHashMap;
use crate::hash_tree::HashTree;

/// Which support-counting engine to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CountStrategy {
    /// Subset enumeration + hash map lookup.
    HashMap,
    /// Classic Apriori hash tree.
    HashTree,
    /// Choose automatically per counting batch.
    #[default]
    Auto,
}

/// Counts, for each candidate, the number of transactions containing it.
///
/// All candidates must share the same size `k ≥ 1`. Returns counts
/// parallel to `candidates`. Transactions shorter than `k` are skipped.
///
/// # Panics
///
/// Panics if candidates have size 0 or mixed sizes.
pub fn count_candidates(
    candidates: &[ItemSet],
    transactions: &[ItemSet],
    strategy: CountStrategy,
) -> Vec<u64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let k = candidates[0].len();
    assert!(k >= 1, "candidates must be non-empty itemsets");
    assert!(candidates.iter().all(|c| c.len() == k), "candidates must have uniform size");

    match strategy {
        CountStrategy::HashMap => count_hashmap(candidates, transactions, k),
        CountStrategy::HashTree => count_hashtree(candidates, transactions),
        CountStrategy::Auto => {
            // Subset enumeration explodes with transaction length; the
            // hash tree wins once C(|t|, k) routinely exceeds the number
            // of candidates a transaction could realistically contain.
            let max_len = transactions.iter().map(ItemSet::len).max().unwrap_or(0);
            if binomial_capped(max_len, k, 4 * candidates.len() as u64 + 64)
                > 4 * candidates.len() as u64
            {
                count_hashtree(candidates, transactions)
            } else {
                count_hashmap(candidates, transactions, k)
            }
        }
    }
}

fn count_hashmap(candidates: &[ItemSet], transactions: &[ItemSet], k: usize) -> Vec<u64> {
    let index: FastHashMap<&ItemSet, usize> =
        candidates.iter().enumerate().map(|(i, c)| (c, i)).collect();
    let mut counts = vec![0u64; candidates.len()];
    for t in transactions {
        if t.len() < k {
            continue;
        }
        for sub in t.k_subsets(k) {
            if let Some(&i) = index.get(&sub) {
                counts[i] = counts[i].saturating_add(1);
            }
        }
    }
    counts
}

fn count_hashtree(candidates: &[ItemSet], transactions: &[ItemSet]) -> Vec<u64> {
    let mut tree = HashTree::build(candidates.to_vec());
    tree.count_all(transactions);
    let (_, counts) = tree.into_counts();
    counts
}

/// `C(n, k)` capped at `cap` to avoid overflow.
fn binomial_capped(n: usize, k: usize, cap: u64) -> u64 {
    if k > n {
        return 0;
    }
    let mut r: u64 = 1;
    for i in 0..k {
        r = r.saturating_mul((n - i) as u64) / (i as u64 + 1);
        if r >= cap {
            return cap;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn naive(candidates: &[ItemSet], transactions: &[ItemSet]) -> Vec<u64> {
        candidates
            .iter()
            .map(|c| transactions.iter().filter(|t| c.is_subset_of(t)).count() as u64)
            .collect()
    }

    #[test]
    fn all_strategies_agree_with_naive() {
        let candidates = vec![set(&[1, 2]), set(&[2, 3]), set(&[4, 5]), set(&[1, 5])];
        let transactions = vec![
            set(&[1, 2, 3]),
            set(&[1, 2, 5]),
            set(&[4, 5]),
            set(&[2]),
            set(&[]),
            set(&[1, 2, 3, 4, 5]),
        ];
        let expected = naive(&candidates, &transactions);
        for strategy in
            [CountStrategy::HashMap, CountStrategy::HashTree, CountStrategy::Auto]
        {
            assert_eq!(
                count_candidates(&candidates, &transactions, strategy),
                expected,
                "strategy {strategy:?}"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(count_candidates(&[], &[set(&[1])], CountStrategy::Auto).is_empty());
        assert_eq!(count_candidates(&[set(&[1])], &[], CountStrategy::Auto), vec![0]);
    }

    #[test]
    fn singleton_candidates() {
        let candidates = vec![set(&[1]), set(&[2]), set(&[9])];
        let transactions = vec![set(&[1, 2]), set(&[1]), set(&[2, 9])];
        for strategy in [CountStrategy::HashMap, CountStrategy::HashTree] {
            assert_eq!(
                count_candidates(&candidates, &transactions, strategy),
                vec![2, 2, 1]
            );
        }
    }

    #[test]
    fn long_transactions_trigger_auto_hashtree_and_stay_correct() {
        // One long transaction makes subset enumeration expensive; Auto
        // must still produce exact counts.
        let candidates: Vec<ItemSet> =
            (0..10u32).map(|i| set(&[i, i + 10, i + 20])).collect();
        let mut transactions = vec![ItemSet::from_ids(0..30u32)];
        transactions.push(set(&[0, 10, 20]));
        let expected = naive(&candidates, &transactions);
        assert_eq!(
            count_candidates(&candidates, &transactions, CountStrategy::Auto),
            expected
        );
    }

    #[test]
    fn binomial_capped_behaviour() {
        assert_eq!(binomial_capped(5, 2, 1000), 10);
        assert_eq!(binomial_capped(5, 6, 1000), 0);
        assert_eq!(binomial_capped(100, 50, 7), 7); // capped
        assert_eq!(binomial_capped(4, 0, 10), 1);
    }

    #[test]
    #[should_panic(expected = "uniform size")]
    fn mixed_candidate_sizes_panic() {
        let _ = count_candidates(
            &[set(&[1]), set(&[1, 2])],
            &[set(&[1])],
            CountStrategy::HashMap,
        );
    }
}
