//! Support counting engines.
//!
//! Counting is the hot loop of Apriori: for every candidate `k`-itemset,
//! how many transactions contain it? Three engines are provided and kept
//! behaviourally identical (tests and proptests cross-check them):
//!
//! * [`CountStrategy::HashMap`] — enumerate the `k`-subsets of each
//!   transaction and look them up in a fast hash map. Simple and fast
//!   while `C(|t|, k)` stays small (short transactions, low `k`).
//! * [`CountStrategy::HashTree`] — the Apriori paper's hash tree, which
//!   scales to long transactions and large candidate sets.
//! * [`CountStrategy::Vertical`] — per-batch vertical tid-bitmaps (one
//!   `Vec<u64>` bitset per candidate item): support is a chained `u64`
//!   AND + popcount. See [`crate::bitmap`].
//!
//! # The measured `Auto` crossover
//!
//! [`CountStrategy::Auto`] picks per batch from measured crossovers on
//! the fig8 workload (QUEST-style data, 2000 transactions, ~780
//! candidate pairs; medians from the `fig8_counting` bench, which CI
//! re-runs in quick mode and archives as `BENCH_fig8.json`):
//!
//! * At the paper's default density (avg transaction length 5), Vertical
//!   counts the batch ~8× faster than HashMap and ~28× faster than
//!   HashTree (1.12ms → 141µs / 4.01ms → 141µs).
//! * At high density (avg length 20), Vertical is ~61× faster than
//!   HashMap and ~246× faster than HashTree (15.5ms / 62.3ms → 253µs).
//!   The horizontal engines degrade with `C(|t|, k)` subset blow-up or
//!   tree fan-out; Vertical's cost is `O(candidates · k · ⌈n/64⌉)` and
//!   does not depend on transaction length at all.
//!
//! The crossover is therefore not density-based but *size*-based:
//! Vertical pays one bitmap build (`O(Σ|t|)` bit sets) per batch, which
//! only fails to amortise when the batch is trivially small. The rule:
//!
//! * batches with `candidates · transactions <` [`VERTICAL_MIN_WORK`]
//!   (tiny unit scans, e.g. a handful of candidates over a short unit)
//!   keep the old horizontal split — HashMap, or HashTree once the
//!   estimated subset-enumeration work `C(max|t|, k)` exceeds
//!   [`HASHTREE_ENUM_FACTOR`]`· candidates`;
//! * everything else counts vertically.

use car_itemset::ItemSet;

use crate::bitmap::count_vertical;
use crate::hash::FastHashMap;
use crate::hash_tree::HashTree;

/// Which support-counting engine to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CountStrategy {
    /// Subset enumeration + hash map lookup.
    HashMap,
    /// Classic Apriori hash tree.
    HashTree,
    /// Vertical tid-bitmaps: chained AND + popcount per candidate.
    Vertical,
    /// Choose automatically per counting batch (see module docs for the
    /// measured crossover rule).
    #[default]
    Auto,
}

/// The engine [`count_candidates_detailed`] actually ran for a batch
/// (resolves [`CountStrategy::Auto`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountEngine {
    /// Subset enumeration + hash map.
    HashMap,
    /// Hash tree.
    HashTree,
    /// Vertical tid-bitmaps.
    Vertical,
}

/// Result of one counting batch: per-candidate counts plus what ran.
#[derive(Clone, Debug)]
pub struct CountOutcome {
    /// Per-candidate support counts, parallel to the input slice.
    pub counts: Vec<u64>,
    /// The engine that produced them.
    pub engine: CountEngine,
    /// Vertical bitmap constructions performed (0 or 1 per batch) —
    /// threaded into `MiningStats::bitmap_builds` by the miners.
    pub bitmap_builds: u64,
}

/// Below this `candidates × transactions` product a batch is too small
/// for the vertical build to amortise; measured on the fig8 workload
/// (the build overhead dominates only for near-trivial batches).
pub const VERTICAL_MIN_WORK: u64 = 4096;

/// In the small-batch regime, switch from subset enumeration to the
/// hash tree when `C(max|t|, k)` exceeds this multiple of the candidate
/// count.
pub const HASHTREE_ENUM_FACTOR: u64 = 4;

/// Counts, for each candidate, the number of transactions containing it.
///
/// All candidates must share the same size `k ≥ 1`. Returns counts
/// parallel to `candidates`. Transactions shorter than `k` are skipped.
///
/// # Panics
///
/// Panics if candidates have size 0 or mixed sizes.
pub fn count_candidates(
    candidates: &[ItemSet],
    transactions: &[ItemSet],
    strategy: CountStrategy,
) -> Vec<u64> {
    count_candidates_detailed(candidates, transactions, strategy).counts
}

/// Like [`count_candidates`], but also reports which engine ran and how
/// many vertical bitmap builds it performed.
///
/// # Panics
///
/// Panics if candidates have size 0 or mixed sizes.
pub fn count_candidates_detailed(
    candidates: &[ItemSet],
    transactions: &[ItemSet],
    strategy: CountStrategy,
) -> CountOutcome {
    if candidates.is_empty() {
        return CountOutcome {
            counts: Vec::new(),
            engine: CountEngine::HashMap,
            bitmap_builds: 0,
        };
    }
    let k = candidates[0].len();
    assert!(k >= 1, "candidates must be non-empty itemsets");
    assert!(candidates.iter().all(|c| c.len() == k), "candidates must have uniform size");

    let engine = match strategy {
        CountStrategy::HashMap => CountEngine::HashMap,
        CountStrategy::HashTree => CountEngine::HashTree,
        CountStrategy::Vertical => CountEngine::Vertical,
        CountStrategy::Auto => auto_engine(candidates, transactions, k),
    };
    match engine {
        CountEngine::HashMap => CountOutcome {
            counts: count_hashmap(candidates, transactions, k),
            engine,
            bitmap_builds: 0,
        },
        CountEngine::HashTree => CountOutcome {
            counts: count_hashtree(candidates, transactions),
            engine,
            bitmap_builds: 0,
        },
        CountEngine::Vertical => CountOutcome {
            counts: count_vertical(candidates, transactions, k),
            engine,
            bitmap_builds: 1,
        },
    }
}

/// The measured-crossover rule for [`CountStrategy::Auto`]; see the
/// module docs for the numbers behind it.
fn auto_engine(
    candidates: &[ItemSet],
    transactions: &[ItemSet],
    k: usize,
) -> CountEngine {
    let batch_work = (candidates.len() as u64).saturating_mul(transactions.len() as u64);
    if batch_work >= VERTICAL_MIN_WORK {
        return CountEngine::Vertical;
    }
    // Tiny batch: the horizontal engines' old split. Subset enumeration
    // explodes with transaction length; the hash tree wins once
    // C(|t|, k) routinely exceeds the number of candidates a
    // transaction could realistically contain.
    let max_len = transactions.iter().map(ItemSet::len).max().unwrap_or(0);
    let enum_cap = HASHTREE_ENUM_FACTOR.saturating_mul(candidates.len() as u64);
    if binomial_capped(max_len, k, enum_cap.saturating_add(64)) > enum_cap {
        CountEngine::HashTree
    } else {
        CountEngine::HashMap
    }
}

fn count_hashmap(candidates: &[ItemSet], transactions: &[ItemSet], k: usize) -> Vec<u64> {
    let index: FastHashMap<&ItemSet, usize> =
        candidates.iter().enumerate().map(|(i, c)| (c, i)).collect();
    let mut counts = vec![0u64; candidates.len()];
    for t in transactions {
        if t.len() < k {
            continue;
        }
        for sub in t.k_subsets(k) {
            if let Some(&i) = index.get(&sub) {
                counts[i] = counts[i].saturating_add(1);
            }
        }
    }
    counts
}

fn count_hashtree(candidates: &[ItemSet], transactions: &[ItemSet]) -> Vec<u64> {
    let mut tree = HashTree::build(candidates.to_vec());
    tree.count_all(transactions);
    let (_, counts) = tree.into_counts();
    counts
}

/// `C(n, k)` capped at `cap` to avoid overflow.
fn binomial_capped(n: usize, k: usize, cap: u64) -> u64 {
    if k > n {
        return 0;
    }
    let mut r: u64 = 1;
    for i in 0..k {
        r = r.saturating_mul((n - i) as u64) / (i as u64 + 1);
        if r >= cap {
            return cap;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn naive(candidates: &[ItemSet], transactions: &[ItemSet]) -> Vec<u64> {
        candidates
            .iter()
            .map(|c| transactions.iter().filter(|t| c.is_subset_of(t)).count() as u64)
            .collect()
    }

    #[test]
    fn all_strategies_agree_with_naive() {
        let candidates = vec![set(&[1, 2]), set(&[2, 3]), set(&[4, 5]), set(&[1, 5])];
        let transactions = vec![
            set(&[1, 2, 3]),
            set(&[1, 2, 5]),
            set(&[4, 5]),
            set(&[2]),
            set(&[]),
            set(&[1, 2, 3, 4, 5]),
        ];
        let expected = naive(&candidates, &transactions);
        for strategy in [
            CountStrategy::HashMap,
            CountStrategy::HashTree,
            CountStrategy::Vertical,
            CountStrategy::Auto,
        ] {
            assert_eq!(
                count_candidates(&candidates, &transactions, strategy),
                expected,
                "strategy {strategy:?}"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(count_candidates(&[], &[set(&[1])], CountStrategy::Auto).is_empty());
        for strategy in
            [CountStrategy::HashMap, CountStrategy::HashTree, CountStrategy::Vertical]
        {
            assert_eq!(count_candidates(&[set(&[1])], &[], strategy), vec![0]);
        }
    }

    #[test]
    fn singleton_candidates() {
        let candidates = vec![set(&[1]), set(&[2]), set(&[9])];
        let transactions = vec![set(&[1, 2]), set(&[1]), set(&[2, 9])];
        for strategy in
            [CountStrategy::HashMap, CountStrategy::HashTree, CountStrategy::Vertical]
        {
            assert_eq!(
                count_candidates(&candidates, &transactions, strategy),
                vec![2, 2, 1]
            );
        }
    }

    #[test]
    fn long_transactions_trigger_auto_hashtree_and_stay_correct() {
        // One long transaction makes subset enumeration expensive; in the
        // small-batch regime Auto must pick the hash tree and still
        // produce exact counts.
        let candidates: Vec<ItemSet> =
            (0..10u32).map(|i| set(&[i, i + 10, i + 20])).collect();
        let mut transactions = vec![ItemSet::from_ids(0..30u32)];
        transactions.push(set(&[0, 10, 20]));
        let expected = naive(&candidates, &transactions);
        let outcome =
            count_candidates_detailed(&candidates, &transactions, CountStrategy::Auto);
        assert_eq!(outcome.counts, expected);
        assert_eq!(outcome.engine, CountEngine::HashTree);
        assert_eq!(outcome.bitmap_builds, 0);
    }

    #[test]
    fn auto_goes_vertical_on_large_batches() {
        // 100 candidates × 100 transactions exceeds VERTICAL_MIN_WORK.
        let candidates: Vec<ItemSet> = (0..100u32).map(|i| set(&[i, i + 1])).collect();
        let transactions: Vec<ItemSet> =
            (0..100u32).map(|i| set(&[i, i + 1, i + 2])).collect();
        let outcome =
            count_candidates_detailed(&candidates, &transactions, CountStrategy::Auto);
        assert_eq!(outcome.engine, CountEngine::Vertical);
        assert_eq!(outcome.bitmap_builds, 1);
        assert_eq!(outcome.counts, naive(&candidates, &transactions));
    }

    #[test]
    fn detailed_reports_forced_engines() {
        let candidates = vec![set(&[1])];
        let transactions = vec![set(&[1])];
        for (strategy, engine, builds) in [
            (CountStrategy::HashMap, CountEngine::HashMap, 0),
            (CountStrategy::HashTree, CountEngine::HashTree, 0),
            (CountStrategy::Vertical, CountEngine::Vertical, 1),
        ] {
            let outcome = count_candidates_detailed(&candidates, &transactions, strategy);
            assert_eq!(outcome.engine, engine);
            assert_eq!(outcome.bitmap_builds, builds);
        }
    }

    #[test]
    fn binomial_capped_behaviour() {
        assert_eq!(binomial_capped(5, 2, 1000), 10);
        assert_eq!(binomial_capped(5, 6, 1000), 0);
        assert_eq!(binomial_capped(100, 50, 7), 7); // capped
        assert_eq!(binomial_capped(4, 0, 10), 1);
    }

    #[test]
    #[should_panic(expected = "uniform size")]
    fn mixed_candidate_sizes_panic() {
        let _ = count_candidates(
            &[set(&[1]), set(&[1, 2])],
            &[set(&[1])],
            CountStrategy::HashMap,
        );
    }
}
