//! Vertical tid-bitmap support counting.
//!
//! The horizontal engines ([`count_hashmap`], the hash tree) walk the
//! database transaction-major and ask, per transaction, *which candidates
//! does this contain?* — subset enumeration or tree probes, both of which
//! hash. This module flips the layout: one `Vec<u64>` bitset per item,
//! bit `t` set iff transaction `t` contains the item. Support of a
//! candidate `{a, b, c}` is then
//!
//! ```text
//! popcount(row(a) & row(b) & row(c))
//! ```
//!
//! word by word — a chained `u64` AND plus `count_ones()`, no subset
//! enumeration, no hashing, no per-candidate allocation (the row-slice
//! scratch is reused across candidates). At the paper's densities this
//! is memory-bandwidth bound and beats both horizontal engines by a
//! wide margin (see `count.rs` module docs for the measured crossover).
//!
//! Rows are built only for items that actually occur in the candidate
//! batch; item ids are mapped to dense row indices through [`ItemMap`],
//! which stores the mapping in a flat [`RefMap`] when the id space is
//! dense (the common case — vocabulary-interned ids count up from 0)
//! and falls back to a hash map when ids are sparse enough that a flat
//! table would waste memory.
//!
//! Every bitmap construction increments the process-global
//! `car_mine_bitmap_builds_total` counter, which is how the INTERLEAVED
//! tests prove that cycle skipping means *the bitmap for a skipped unit
//! is never built at all*.
//!
//! [`count_hashmap`]: crate::count::CountStrategy::HashMap

use car_itemset::refstore::{RefCounter, RefMap};
use car_itemset::ItemSet;
use car_obs::counters::MINE;

use crate::hash::FastHashMap;

/// Bits per `u64` word, as a shift (`tid >> WORD_SHIFT` = word index).
const WORD_SHIFT: usize = 6;
/// Mask selecting the bit offset inside a word (`tid & WORD_MASK`).
const WORD_MASK: usize = 63;

/// When is a flat table worth it? A flat [`RefMap`] allocates one slot
/// per id up to the maximum, so we require the universe to be within
/// this factor of the number of distinct keys (plus slack for small
/// inputs) before choosing it over hashing.
const FLAT_DENSITY_FACTOR: usize = 8;
const FLAT_DENSITY_SLACK: usize = 1024;

/// A map from raw `u32` item ids to copyable values that picks its
/// backing store by id density: flat `Vec` when ids are dense (the
/// vocabulary-interned common case), hash map when they are sparse
/// (ids up to `u32::MAX` are accepted at the ingest boundary).
#[derive(Clone, Debug)]
pub enum ItemMap<V: Copy> {
    /// Flat `Vec`-backed store — O(1) loads, memory ∝ largest id.
    Flat(RefMap<V>),
    /// Hashed fallback for sparse id spaces.
    Hashed(FastHashMap<u32, V>),
}

impl<V: Copy> ItemMap<V> {
    /// Chooses a backing store for a key universe with the given
    /// maximum id and (approximate) number of distinct ids.
    pub fn for_universe(max_id: u32, distinct: usize) -> Self {
        let budget = distinct
            .saturating_mul(FLAT_DENSITY_FACTOR)
            .saturating_add(FLAT_DENSITY_SLACK);
        if (max_id as usize) < budget {
            ItemMap::Flat(RefMap::with_capacity((max_id as usize).saturating_add(1)))
        } else {
            ItemMap::Hashed(FastHashMap::default())
        }
    }

    /// Inserts a mapping, returning the previous value if any.
    pub fn insert(&mut self, id: u32, value: V) -> Option<V> {
        match self {
            ItemMap::Flat(m) => m.insert(id as usize, value),
            ItemMap::Hashed(m) => m.insert(id, value),
        }
    }

    /// The value mapped to `id`, if any.
    #[inline]
    pub fn get(&self, id: u32) -> Option<V> {
        match self {
            ItemMap::Flat(m) => m.get(id as usize).copied(),
            ItemMap::Hashed(m) => m.get(&id).copied(),
        }
    }

    /// Whether `id` has a mapping.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.get(id).is_some()
    }
}

/// Dense-or-hashed item occurrence counter for level-1 scans: flat
/// [`RefCounter`] when the id space is dense, hash map otherwise. The
/// flat path clears in O(touched), so the interleaved miner reuses one
/// counter across every unit scan without repaying allocation.
#[derive(Clone, Debug)]
pub enum ItemCounter {
    /// Flat dense counters with a touched list.
    Flat(RefCounter),
    /// Hashed fallback for sparse id spaces.
    Hashed(FastHashMap<u32, u64>),
}

impl ItemCounter {
    /// Chooses a backing store for a key universe with the given
    /// maximum id and an upper bound on the number of distinct ids
    /// (total occurrences works — dense data has `max_id` well below
    /// it).
    pub fn for_universe(max_id: u32, distinct_hint: usize) -> Self {
        let budget = distinct_hint
            .saturating_mul(FLAT_DENSITY_FACTOR)
            .saturating_add(FLAT_DENSITY_SLACK);
        if (max_id as usize) < budget {
            ItemCounter::Flat(RefCounter::new())
        } else {
            ItemCounter::Hashed(FastHashMap::default())
        }
    }

    /// Adds `n` to the count of `id` (saturating).
    pub fn add(&mut self, id: u32, n: u64) {
        match self {
            ItemCounter::Flat(c) => c.add(id as usize, n),
            ItemCounter::Hashed(m) => {
                let slot = m.entry(id).or_insert(0);
                *slot = slot.saturating_add(n);
            }
        }
    }

    /// The count of `id` (0 when never seen).
    pub fn get(&self, id: u32) -> u64 {
        match self {
            ItemCounter::Flat(c) => c.get(id as usize),
            ItemCounter::Hashed(m) => m.get(&id).copied().unwrap_or(0),
        }
    }

    /// Number of distinct ids counted.
    pub fn len(&self) -> usize {
        match self {
            ItemCounter::Flat(c) => c.len(),
            ItemCounter::Hashed(m) => m.len(),
        }
    }

    /// Whether nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The counted ids, sorted ascending.
    pub fn ids_sorted(&self) -> Vec<u32> {
        match self {
            ItemCounter::Flat(c) => c.keys_sorted().iter().map(|&k| k as u32).collect(),
            ItemCounter::Hashed(m) => {
                let mut ids: Vec<u32> = m.keys().copied().collect();
                ids.sort_unstable();
                ids
            }
        }
    }

    /// Resets every count, keeping allocations (O(touched) on the flat
    /// path).
    pub fn clear(&mut self) {
        match self {
            ItemCounter::Flat(c) => c.clear(),
            ItemCounter::Hashed(m) => m.clear(),
        }
    }
}

/// Per-batch vertical bitmaps: one tid-bitset row per interned item.
pub struct TidBitmaps {
    /// `rows[r]` is the bitset of transactions containing item `r`,
    /// all rows `words` long.
    rows: Vec<Vec<u64>>,
    /// Raw item id → row index.
    index: ItemMap<u32>,
    /// Scratch holding the resolved row slots of the current candidate;
    /// reused so counting allocates nothing per candidate.
    scratch: Vec<u32>,
}

impl TidBitmaps {
    /// Builds bitmaps over `transactions` for exactly the items that
    /// occur in `candidates`. Transactions shorter than `min_len`
    /// contribute no bits — they cannot contain any candidate of that
    /// size, so skipping them saves work without changing any count.
    ///
    /// Increments the global `car_mine_bitmap_builds_total` counter:
    /// one build per call, so "a skipped unit builds zero bitmaps" is
    /// observable.
    pub fn build(
        candidates: &[ItemSet],
        transactions: &[ItemSet],
        min_len: usize,
    ) -> Self {
        MINE.add_bitmap_builds(1);

        // Intern the candidate items to dense row indices.
        let mut ids: Vec<u32> =
            candidates.iter().flat_map(|c| c.iter().map(|item| item.id())).collect();
        ids.sort_unstable();
        ids.dedup();
        let max_id = ids.last().copied().unwrap_or(0);
        let mut index = ItemMap::for_universe(max_id, ids.len());
        for (row, &id) in ids.iter().enumerate() {
            index.insert(id, row as u32);
        }

        let words = (transactions.len() >> WORD_SHIFT).saturating_add(1);
        let mut rows = vec![vec![0u64; words]; ids.len()];
        for (tid, t) in transactions.iter().enumerate() {
            if t.len() < min_len {
                continue;
            }
            for item in t.iter() {
                if let Some(row) = index.get(item.id()) {
                    if let Some(row_words) = rows.get_mut(row as usize) {
                        if let Some(word) = row_words.get_mut(tid >> WORD_SHIFT) {
                            *word |= 1u64 << (tid & WORD_MASK);
                        }
                    }
                }
            }
        }
        TidBitmaps { rows, index, scratch: Vec::new() }
    }

    /// The support of `candidate`: the number of transactions containing
    /// every item of it. An item with no row (never seen in the build
    /// batch) gives support 0. The empty candidate also counts as 0 —
    /// the miners never ask for it.
    pub fn support(&mut self, candidate: &ItemSet) -> u64 {
        self.scratch.clear();
        for item in candidate.iter() {
            match self.index.get(item.id()) {
                Some(row) => self.scratch.push(row),
                None => return 0,
            }
        }
        let Some((&first, rest)) = self.scratch.split_first() else {
            return 0;
        };
        let Some(first_row) = self.rows.get(first as usize) else {
            return 0;
        };
        let mut support: u64 = 0;
        for (w, &word) in first_row.iter().enumerate() {
            let mut acc = word;
            for &row in rest {
                if acc == 0 {
                    break;
                }
                acc &= self
                    .rows
                    .get(row as usize)
                    .and_then(|r| r.get(w))
                    .copied()
                    .unwrap_or(0);
            }
            support = support.saturating_add(u64::from(acc.count_ones()));
        }
        support
    }
}

/// Counts every candidate's support via vertical bitmaps; counts are
/// parallel to `candidates`. `k` is the uniform candidate size (used to
/// skip transactions too short to matter).
pub fn count_vertical(
    candidates: &[ItemSet],
    transactions: &[ItemSet],
    k: usize,
) -> Vec<u64> {
    let mut bitmaps = TidBitmaps::build(candidates, transactions, k);
    candidates.iter().map(|c| bitmaps.support(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn naive(candidates: &[ItemSet], transactions: &[ItemSet]) -> Vec<u64> {
        candidates
            .iter()
            .map(|c| transactions.iter().filter(|t| c.is_subset_of(t)).count() as u64)
            .collect()
    }

    #[test]
    fn matches_naive_on_small_batch() {
        let candidates = vec![set(&[1, 2]), set(&[2, 3]), set(&[4, 5]), set(&[1, 5])];
        let transactions = vec![
            set(&[1, 2, 3]),
            set(&[1, 2, 5]),
            set(&[4, 5]),
            set(&[2]),
            set(&[]),
            set(&[1, 2, 3, 4, 5]),
        ];
        assert_eq!(
            count_vertical(&candidates, &transactions, 2),
            naive(&candidates, &transactions)
        );
    }

    #[test]
    fn handles_more_than_64_transactions() {
        // Crosses the word boundary: 200 transactions, every third one
        // contains {7, 9}.
        let transactions: Vec<ItemSet> = (0..200u32)
            .map(|i| if i % 3 == 0 { set(&[7, 9, i + 100]) } else { set(&[7, i + 100]) })
            .collect();
        let candidates = vec![set(&[7, 9]), set(&[7]), set(&[9, 100])];
        assert_eq!(
            count_vertical(&candidates, &transactions, 1),
            naive(&candidates, &transactions)
        );
    }

    #[test]
    fn unknown_items_count_zero() {
        let candidates = vec![set(&[42, 43])];
        let transactions = vec![set(&[1, 2]), set(&[3])];
        assert_eq!(count_vertical(&candidates, &transactions, 2), vec![0]);
    }

    #[test]
    fn sparse_ids_fall_back_to_hashed_and_stay_correct() {
        // Ids near u32::MAX would OOM a flat table; ItemMap must pick
        // the hashed store and counts must be unaffected.
        let a = u32::MAX - 1;
        let b = u32::MAX - 7;
        let candidates = vec![set(&[b, a]), set(&[a])];
        let transactions = vec![set(&[b, a]), set(&[a]), set(&[b])];
        assert!(matches!(
            ItemMap::<u32>::for_universe(u32::MAX - 1, 2),
            ItemMap::Hashed(_)
        ));
        assert_eq!(
            count_vertical(&candidates, &transactions, 1),
            naive(&candidates, &transactions)
        );
    }

    #[test]
    fn dense_ids_choose_flat_store() {
        assert!(matches!(ItemMap::<u32>::for_universe(100, 50), ItemMap::Flat(_)));
        let mut m = ItemMap::<u32>::for_universe(100, 50);
        assert_eq!(m.insert(3, 7), None);
        assert_eq!(m.insert(3, 8), Some(7));
        assert_eq!(m.get(3), Some(8));
        assert!(m.contains(3));
        assert!(!m.contains(4));
    }

    #[test]
    fn build_increments_global_counter() {
        let before = MINE.snapshot().bitmap_builds;
        let _ = count_vertical(&[set(&[1])], &[set(&[1])], 1);
        assert!(MINE.snapshot().bitmap_builds >= before + 1);
    }

    #[test]
    fn short_transactions_are_skipped_without_affecting_counts() {
        let candidates = vec![set(&[1, 2, 3])];
        let transactions = vec![set(&[1, 2]), set(&[1, 2, 3]), set(&[3])];
        assert_eq!(count_vertical(&candidates, &transactions, 3), vec![1]);
    }
}
