//! The hash tree of the original Apriori paper: an index over candidate
//! `k`-itemsets that lets one transaction discover all contained
//! candidates without enumerating every `k`-subset or every candidate.

use car_itemset::{Item, ItemSet};

/// Fan-out of interior nodes.
const FANOUT: usize = 16;
/// A leaf splits into an interior node when it exceeds this many
/// candidates (and items remain to hash on).
const LEAF_CAP: usize = 8;

/// A hash tree over candidate `k`-itemsets.
///
/// Interior nodes at depth `d` hash the `d`-th item of a candidate into
/// one of a fixed number of buckets; leaves store candidate indices. Counting a
/// transaction walks the tree once per viable item prefix and verifies
/// containment only for the few candidates in the reached leaves.
///
/// A transaction can reach the same leaf through different item choices
/// that hash alike, so counting stamps each candidate with the current
/// transaction number and increments at most once per transaction.
pub struct HashTree {
    k: usize,
    root: Node,
    candidates: Vec<ItemSet>,
    counts: Vec<u64>,
    /// Last transaction stamp per candidate, to deduplicate leaf visits.
    stamps: Vec<u64>,
    next_stamp: u64,
}

enum Node {
    Interior(Box<[Node; FANOUT]>),
    Leaf(Vec<u32>),
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }

    fn new_interior() -> Node {
        Node::Interior(Box::new(std::array::from_fn(|_| Node::empty_leaf())))
    }
}

#[inline]
fn bucket(item: Item) -> usize {
    // Multiply-shift keeps consecutive ids from clustering in one bucket.
    (item.id().wrapping_mul(2_654_435_761) >> 16) as usize % FANOUT
}

impl HashTree {
    /// Builds a hash tree over candidates of uniform size `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if candidates are empty-sized or of mixed sizes.
    pub fn build(candidates: Vec<ItemSet>) -> Self {
        let k = candidates.first().map_or(1, ItemSet::len);
        assert!(k >= 1, "hash tree candidates must be non-empty itemsets");
        assert!(
            candidates.iter().all(|c| c.len() == k),
            "hash tree candidates must have uniform size"
        );
        let n = candidates.len();
        let mut tree = HashTree {
            k,
            root: Node::empty_leaf(),
            candidates,
            counts: vec![0; n],
            stamps: vec![0; n],
            next_stamp: 0,
        };
        for idx in 0..n {
            Self::insert(&mut tree.root, &tree.candidates, idx as u32, 0, tree.k);
        }
        tree
    }

    fn insert(node: &mut Node, candidates: &[ItemSet], idx: u32, depth: usize, k: usize) {
        match node {
            Node::Interior(children) => {
                let item = candidates[idx as usize].as_slice()[depth];
                Self::insert(&mut children[bucket(item)], candidates, idx, depth + 1, k);
            }
            Node::Leaf(list) => {
                list.push(idx);
                if list.len() > LEAF_CAP && depth < k {
                    let moved = std::mem::take(list);
                    *node = Node::new_interior();
                    for m in moved {
                        Self::insert(node, candidates, m, depth, k);
                    }
                }
            }
        }
    }

    /// Number of candidates in the tree.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Counts one transaction: every candidate contained in `transaction`
    /// has its count incremented exactly once.
    pub fn count_transaction(&mut self, transaction: &ItemSet) {
        if transaction.len() < self.k || self.candidates.is_empty() {
            return;
        }
        // Wrapping (not saturating): a saturated stamp would compare
        // equal forever and silently stop counting, while a u64 wrap is
        // unreachable in practice and harmless if it ever happened.
        self.next_stamp = self.next_stamp.wrapping_add(1);
        let stamp = self.next_stamp;
        // Split borrows: traversal reads the tree and candidate list and
        // mutates counts/stamps only.
        Self::visit(
            &self.root,
            &self.candidates,
            &mut self.counts,
            &mut self.stamps,
            stamp,
            transaction.as_slice(),
            transaction.as_slice(),
            0,
            self.k,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn visit(
        node: &Node,
        candidates: &[ItemSet],
        counts: &mut [u64],
        stamps: &mut [u64],
        stamp: u64,
        full: &[Item],
        items: &[Item],
        depth: usize,
        k: usize,
    ) {
        match node {
            Node::Leaf(list) => {
                // The path routes by bucket, not by item, so containment
                // is verified against the full transaction.
                for &idx in list {
                    let i = idx as usize;
                    if stamps[i] != stamp && candidates[i].is_subset_of_slice(full) {
                        stamps[i] = stamp;
                        counts[i] = counts[i].saturating_add(1);
                    }
                }
            }
            Node::Interior(children) => {
                // Descend once per remaining item, leaving enough items to
                // complete a k-candidate.
                let remaining_needed = k - depth;
                if items.len() < remaining_needed {
                    return;
                }
                let last_start = items.len() - remaining_needed;
                let next_depth = depth + 1;
                for i in 0..=last_start {
                    let rest = items.get(i + 1..).unwrap_or(&[]);
                    Self::visit(
                        &children[bucket(items[i])],
                        candidates,
                        counts,
                        stamps,
                        stamp,
                        full,
                        rest,
                        next_depth,
                        k,
                    );
                }
            }
        }
    }

    /// Counts a batch of transactions.
    pub fn count_all<'a, I>(&mut self, transactions: I)
    where
        I: IntoIterator<Item = &'a ItemSet>,
    {
        for t in transactions {
            self.count_transaction(t);
        }
    }

    /// The accumulated counts, parallel to the candidate order passed to
    /// [`HashTree::build`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the tree, returning `(candidates, counts)`.
    pub fn into_counts(self) -> (Vec<ItemSet>, Vec<u64>) {
        (self.candidates, self.counts)
    }
}

/// Containment of a sorted candidate in a sorted item slice.
trait SubsetOfSlice {
    fn is_subset_of_slice(&self, items: &[Item]) -> bool;
}

impl SubsetOfSlice for ItemSet {
    fn is_subset_of_slice(&self, items: &[Item]) -> bool {
        let mut j = 0;
        for &x in self.as_slice() {
            loop {
                if j >= items.len() {
                    return false;
                }
                match items[j].cmp(&x) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn naive_counts(candidates: &[ItemSet], transactions: &[ItemSet]) -> Vec<u64> {
        candidates
            .iter()
            .map(|c| transactions.iter().filter(|t| c.is_subset_of(t)).count() as u64)
            .collect()
    }

    #[test]
    fn counts_simple_pairs() {
        let candidates = vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])];
        let transactions = vec![set(&[1, 2, 3]), set(&[1, 2]), set(&[3])];
        let mut tree = HashTree::build(candidates.clone());
        tree.count_all(&transactions);
        assert_eq!(tree.counts(), naive_counts(&candidates, &transactions));
        assert_eq!(tree.counts(), &[2, 1, 1]);
    }

    #[test]
    fn short_transactions_are_skipped() {
        let mut tree = HashTree::build(vec![set(&[1, 2, 3])]);
        tree.count_transaction(&set(&[1, 2]));
        tree.count_transaction(&set(&[]));
        assert_eq!(tree.counts(), &[0]);
    }

    #[test]
    fn no_double_counting_with_colliding_buckets() {
        // Many items that may collide in buckets; each candidate must be
        // counted once per containing transaction regardless.
        let candidates: Vec<ItemSet> = (0..40u32).map(|i| set(&[i, i + 1])).collect();
        let transactions = vec![ItemSet::from_ids(0..41u32); 3];
        let mut tree = HashTree::build(candidates.clone());
        tree.count_all(&transactions);
        assert!(tree.counts().iter().all(|&c| c == 3), "{:?}", tree.counts());
    }

    #[test]
    fn deep_tree_splits_and_stays_correct() {
        // Enough candidates to force splits beyond the root.
        let mut candidates = Vec::new();
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                for c in (b + 1)..12 {
                    candidates.push(set(&[a, b, c]));
                }
            }
        }
        let transactions: Vec<ItemSet> = vec![
            ItemSet::from_ids(0..6u32),
            ItemSet::from_ids(3..12u32),
            ItemSet::from_ids([0, 2, 4, 6, 8, 10]),
            set(&[1, 5, 9]),
        ];
        let mut tree = HashTree::build(candidates.clone());
        tree.count_all(&transactions);
        assert_eq!(tree.counts(), naive_counts(&candidates, &transactions));
    }

    #[test]
    fn empty_candidate_list() {
        let mut tree = HashTree::build(Vec::new());
        tree.count_transaction(&set(&[1, 2, 3]));
        assert!(tree.counts().is_empty());
        assert_eq!(tree.num_candidates(), 0);
    }

    #[test]
    #[should_panic(expected = "uniform size")]
    fn mixed_sizes_panic() {
        let _ = HashTree::build(vec![set(&[1]), set(&[1, 2])]);
    }

    #[test]
    fn into_counts_returns_aligned_data() {
        let candidates = vec![set(&[1]), set(&[2])];
        let mut tree = HashTree::build(candidates.clone());
        tree.count_all(&[set(&[1]), set(&[1, 2])]);
        let (cands, counts) = tree.into_counts();
        assert_eq!(cands, candidates);
        assert_eq!(counts, vec![2, 1]);
    }
}
