//! # car-apriori
//!
//! Frequent itemset mining substrate for the cyclic association rules
//! workspace: a from-scratch implementation of the Apriori algorithm
//! (Agrawal & Srikant, VLDB 1994), which both algorithms of the ICDE'98
//! cyclic-rules paper extend.
//!
//! Components:
//!
//! * [`apriori_gen`] — level-wise candidate generation (join + prune).
//! * Three interchangeable support-counting engines, cross-checked by
//!   tests and proptests:
//!   - a subset-enumeration counter over a fast hash map
//!     ([`CountStrategy::HashMap`]),
//!   - a classic **hash tree** ([`CountStrategy::HashTree`], the structure
//!     from the original Apriori paper), and
//!   - a **vertical tid-bitmap** kernel ([`CountStrategy::Vertical`]):
//!     support is a chained `u64` AND + popcount over per-item bitsets
//!     (see [`bitmap`]), by far the fastest at realistic batch sizes.
//! * [`Apriori`] — the level-wise driver producing [`FrequentItemsets`].
//! * [`generate_rules`] — `ap-genrules` association rule generation with
//!   confidence-based consequent pruning.
//! * [`MinSupport`] / [`MinConfidence`] — threshold handling (absolute
//!   counts or fractions) with explicit empty-database semantics.
//! * [`naive`] — deliberately simple reference implementations used as
//!   oracles by tests and as baselines by benchmarks.
//!
//! ```
//! use car_apriori::{Apriori, AprioriConfig, MinSupport};
//! use car_itemset::ItemSet;
//!
//! let tx = vec![
//!     ItemSet::from_ids([1, 2, 3]),
//!     ItemSet::from_ids([1, 2]),
//!     ItemSet::from_ids([2, 3]),
//! ];
//! let config = AprioriConfig::new(MinSupport::fraction(0.5).unwrap());
//! let frequent = Apriori::new(config).mine(&tx);
//! assert_eq!(frequent.count(&ItemSet::from_ids([1, 2])), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apriori;
pub mod bitmap;
mod candidate;
mod closed;
mod count;
mod eclat;
mod fpgrowth;
mod frequent;
pub mod hash;
mod hash_tree;
pub mod naive;
mod rules;
mod support;

pub use apriori::{Apriori, AprioriConfig, AprioriStats};
pub use bitmap::{count_vertical, ItemMap, TidBitmaps};
pub use candidate::apriori_gen;
pub use closed::{closed_itemsets, maximal_itemsets};
pub use count::{
    count_candidates, count_candidates_detailed, CountEngine, CountOutcome, CountStrategy,
};
pub use eclat::eclat;
pub use fpgrowth::fp_growth;
pub use frequent::FrequentItemsets;
pub use hash_tree::HashTree;
pub use rules::{generate_rules, AssociationRule, Rule};
pub use support::{MinConfidence, MinSupport};
