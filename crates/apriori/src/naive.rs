//! Deliberately simple reference implementations.
//!
//! These are used as oracles by the test suites and as baselines by the
//! benchmark harness. They favour obviousness over speed: frequent
//! itemsets are found by enumerating candidate subsets breadth-first with
//! no pruning beyond the definition, and counting scans every
//! transaction.

use car_itemset::ItemSet;

use crate::frequent::FrequentItemsets;
use crate::support::MinSupport;

/// Counts the transactions containing `itemset`.
pub fn count_itemset(itemset: &ItemSet, transactions: &[ItemSet]) -> u64 {
    transactions.iter().filter(|t| itemset.is_subset_of(t)).count() as u64
}

/// Finds all large itemsets by definition-level breadth-first search.
///
/// Exponential in the worst case — intended for small test inputs and
/// baseline measurements only. Results are identical to
/// [`Apriori::mine`](crate::Apriori::mine).
pub fn frequent_itemsets(
    transactions: &[ItemSet],
    min_support: MinSupport,
    max_size: Option<usize>,
) -> FrequentItemsets {
    let threshold = min_support.threshold(transactions.len());
    let mut result = FrequentItemsets::new(transactions.len());

    // Universe of items actually present.
    let mut universe: Vec<u32> =
        transactions.iter().flat_map(|t| t.iter().map(|i| i.id())).collect();
    universe.sort_unstable();
    universe.dedup();

    // Level 1 by definition.
    let mut frontier: Vec<ItemSet> = Vec::new();
    for &id in &universe {
        let s = ItemSet::from_ids([id]);
        let c = count_itemset(&s, transactions);
        if c >= threshold {
            result.insert(s.clone(), c);
            frontier.push(s);
        }
    }

    // Extend each frontier itemset by every larger frequent item; count
    // by definition; keep the large ones. (No join/prune smartness.)
    let mut size = 1;
    while !frontier.is_empty() {
        size += 1;
        if max_size.is_some_and(|cap| size > cap) {
            break;
        }
        let mut next: Vec<ItemSet> = Vec::new();
        for s in &frontier {
            let max = s.as_slice().last().expect("non-empty").id();
            for &id in universe.iter().filter(|&&id| id > max) {
                let candidate = s.with_appended(id.into());
                let c = count_itemset(&candidate, transactions);
                if c >= threshold {
                    result.insert(candidate.clone(), c);
                    next.push(candidate);
                }
            }
        }
        frontier = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apriori, AprioriConfig};

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn count_itemset_by_definition() {
        let tx = vec![set(&[1, 2]), set(&[1]), set(&[2, 3])];
        assert_eq!(count_itemset(&set(&[1]), &tx), 2);
        assert_eq!(count_itemset(&set(&[1, 2]), &tx), 1);
        assert_eq!(count_itemset(&set(&[4]), &tx), 0);
        assert_eq!(count_itemset(&ItemSet::empty(), &tx), 3);
    }

    #[test]
    fn agrees_with_apriori() {
        let tx = vec![
            set(&[1, 2, 5]),
            set(&[2, 4]),
            set(&[2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 3]),
            set(&[1, 2, 3, 5]),
            set(&[1, 2, 3]),
        ];
        for min in [1u64, 2, 3, 5] {
            let ms = MinSupport::count(min);
            let naive = frequent_itemsets(&tx, ms, None);
            let fast = Apriori::new(AprioriConfig::new(ms)).mine(&tx);
            let mut a: Vec<_> = naive.iter().map(|(s, c)| (s.clone(), c)).collect();
            let mut b: Vec<_> = fast.iter().map(|(s, c)| (s.clone(), c)).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "min support {min}");
        }
    }

    #[test]
    fn max_size_is_respected() {
        let tx = vec![set(&[1, 2, 3]); 3];
        let f = frequent_itemsets(&tx, MinSupport::count(1), Some(2));
        assert_eq!(f.max_level(), 2);
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn empty_transactions() {
        let f = frequent_itemsets(&[], MinSupport::count(1), None);
        assert!(f.is_empty());
    }
}
