use std::fmt;

use car_itemset::ItemSet;

use crate::hash::FastHashMap;

/// The frequent (large) itemsets of one database, with their counts,
/// organised by level (itemset size).
#[derive(Clone, Default)]
pub struct FrequentItemsets {
    num_transactions: usize,
    /// `levels[k-1]` maps each large `k`-itemset to its count.
    levels: Vec<FastHashMap<ItemSet, u64>>,
}

impl FrequentItemsets {
    /// Creates an empty result for a database of `num_transactions`.
    pub fn new(num_transactions: usize) -> Self {
        FrequentItemsets { num_transactions, levels: Vec::new() }
    }

    /// Records a large itemset with its count.
    ///
    /// # Panics
    ///
    /// Panics if the itemset is empty.
    pub fn insert(&mut self, itemset: ItemSet, count: u64) {
        let k = itemset.len();
        assert!(k >= 1, "cannot record the empty itemset");
        if self.levels.len() < k {
            self.levels.resize_with(k, FastHashMap::default);
        }
        self.levels[k - 1].insert(itemset, count);
    }

    /// Size of the underlying database.
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// The count of an itemset, if it is large.
    pub fn count(&self, itemset: &ItemSet) -> Option<u64> {
        self.levels
            .get(itemset.len().checked_sub(1)?)
            .and_then(|m| m.get(itemset).copied())
    }

    /// The support fraction of an itemset, if it is large (count divided
    /// by database size; `None` for an empty database).
    pub fn support(&self, itemset: &ItemSet) -> Option<f64> {
        if self.num_transactions == 0 {
            return None;
        }
        self.count(itemset).map(|c| c as f64 / self.num_transactions as f64)
    }

    /// Whether the itemset is large.
    pub fn contains(&self, itemset: &ItemSet) -> bool {
        self.count(itemset).is_some()
    }

    /// Largest level with at least one itemset (0 when empty).
    pub fn max_level(&self) -> usize {
        self.levels.iter().rposition(|m| !m.is_empty()).map_or(0, |i| i + 1)
    }

    /// Number of large itemsets across all levels.
    pub fn len(&self) -> usize {
        self.levels.iter().map(FastHashMap::len).sum()
    }

    /// Whether no itemset is large.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(FastHashMap::is_empty)
    }

    /// Iterates the large `k`-itemsets (arbitrary order).
    pub fn level(&self, k: usize) -> impl Iterator<Item = (&ItemSet, u64)> {
        self.levels
            .get(k.wrapping_sub(1))
            .into_iter()
            .flat_map(|m| m.iter().map(|(s, &c)| (s, c)))
    }

    /// The large `k`-itemsets, sorted (the form candidate generation
    /// expects).
    pub fn level_sorted(&self, k: usize) -> Vec<ItemSet> {
        let mut v: Vec<ItemSet> = self.level(k).map(|(s, _)| s.clone()).collect();
        v.sort_unstable();
        v
    }

    /// Iterates every large itemset with its count (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&ItemSet, u64)> {
        self.levels.iter().flat_map(|m| m.iter().map(|(s, &c)| (s, c)))
    }
}

impl fmt::Debug for FrequentItemsets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FrequentItemsets({} itemsets over {} transactions, max level {})",
            self.len(),
            self.num_transactions,
            self.max_level()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn insert_and_query() {
        let mut f = FrequentItemsets::new(10);
        f.insert(set(&[1]), 7);
        f.insert(set(&[1, 2]), 4);
        assert_eq!(f.count(&set(&[1])), Some(7));
        assert_eq!(f.count(&set(&[1, 2])), Some(4));
        assert_eq!(f.count(&set(&[2])), None);
        assert_eq!(f.count(&set(&[1, 2, 3])), None);
        assert_eq!(f.support(&set(&[1, 2])), Some(0.4));
        assert!(f.contains(&set(&[1])));
        assert_eq!(f.len(), 2);
        assert_eq!(f.max_level(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn empty_result() {
        let f = FrequentItemsets::new(5);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.max_level(), 0);
        assert_eq!(f.count(&set(&[1])), None);
        assert_eq!(f.count(&ItemSet::empty()), None);
    }

    #[test]
    fn support_of_empty_database_is_none() {
        let mut f = FrequentItemsets::new(0);
        f.insert(set(&[1]), 0);
        assert_eq!(f.support(&set(&[1])), None);
    }

    #[test]
    fn level_sorted_is_sorted() {
        let mut f = FrequentItemsets::new(3);
        f.insert(set(&[3]), 1);
        f.insert(set(&[1]), 2);
        f.insert(set(&[2]), 3);
        assert_eq!(f.level_sorted(1), vec![set(&[1]), set(&[2]), set(&[3])]);
        assert!(f.level_sorted(2).is_empty());
        assert_eq!(f.level(1).count(), 3);
    }

    #[test]
    #[should_panic(expected = "empty itemset")]
    fn inserting_empty_itemset_panics() {
        FrequentItemsets::new(1).insert(ItemSet::empty(), 1);
    }
}
