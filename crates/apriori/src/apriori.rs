//! The level-wise Apriori driver.

use car_itemset::{Item, ItemSet};

use crate::bitmap::ItemCounter;
use crate::candidate::apriori_gen;
use crate::count::{count_candidates_detailed, CountStrategy};
use crate::frequent::FrequentItemsets;
use crate::support::MinSupport;

/// Configuration for an [`Apriori`] run.
#[derive(Clone, Copy, Debug)]
pub struct AprioriConfig {
    /// Minimum support for an itemset to be large.
    pub min_support: MinSupport,
    /// Optional cap on itemset size (`None` = unbounded).
    pub max_size: Option<usize>,
    /// Support counting engine.
    pub counting: CountStrategy,
}

impl AprioriConfig {
    /// Configuration with the given support threshold and defaults
    /// elsewhere (no size cap, automatic counting engine).
    pub fn new(min_support: MinSupport) -> Self {
        AprioriConfig { min_support, max_size: None, counting: CountStrategy::Auto }
    }

    /// Caps the size of mined itemsets.
    pub fn with_max_size(mut self, max_size: usize) -> Self {
        self.max_size = Some(max_size);
        self
    }

    /// Selects the counting engine.
    pub fn with_counting(mut self, counting: CountStrategy) -> Self {
        self.counting = counting;
        self
    }
}

/// Work counters reported by [`Apriori::mine_with_stats`].
///
/// `candidates_counted` is the number of `(candidate, database)` support
/// computations performed — the unit in which the ICDE'98 paper measures
/// the work its INTERLEAVED optimizations avoid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AprioriStats {
    /// Candidate itemsets whose support was counted (including level 1
    /// items).
    pub candidates_counted: u64,
    /// Number of levels (database passes) executed.
    pub levels: u64,
    /// Vertical tid-bitmap constructions performed by the counting
    /// kernel (one per batch the `Vertical` engine ran for).
    pub bitmap_builds: u64,
}

/// The Apriori frequent-itemset miner (Agrawal & Srikant, VLDB 1994).
///
/// Level-wise search: count single items, then repeatedly generate
/// candidate `(k+1)`-itemsets from the large `k`-itemsets (join + prune)
/// and count them, until no candidates survive.
#[derive(Clone, Debug)]
pub struct Apriori {
    config: AprioriConfig,
}

impl Apriori {
    /// Creates a miner with the given configuration.
    pub fn new(config: AprioriConfig) -> Self {
        Apriori { config }
    }

    /// Mines all large itemsets of `transactions`.
    pub fn mine(&self, transactions: &[ItemSet]) -> FrequentItemsets {
        self.mine_with_stats(transactions).0
    }

    /// Mines all large itemsets, also reporting work counters.
    pub fn mine_with_stats(
        &self,
        transactions: &[ItemSet],
    ) -> (FrequentItemsets, AprioriStats) {
        let mut stats = AprioriStats::default();
        let mut result = FrequentItemsets::new(transactions.len());
        let threshold = self.config.min_support.threshold(transactions.len());

        // Level 1: direct item counting through a flat refstore when the
        // id space is dense (the vocabulary-interned common case); one
        // cheap pre-pass sizes the store.
        let mut max_id: u32 = 0;
        let mut occurrences: usize = 0;
        for t in transactions {
            for item in t.iter() {
                max_id = max_id.max(item.id());
                occurrences = occurrences.saturating_add(1);
            }
        }
        let mut item_counts = ItemCounter::for_universe(max_id, occurrences);
        for t in transactions {
            for item in t.iter() {
                item_counts.add(item.id(), 1);
            }
        }
        stats.candidates_counted =
            stats.candidates_counted.saturating_add(item_counts.len() as u64);
        stats.levels = 1;
        let mut large: Vec<ItemSet> = Vec::new();
        for id in item_counts.ids_sorted() {
            let count = item_counts.get(id);
            if count >= threshold {
                let s = ItemSet::single(Item::new(id));
                result.insert(s.clone(), count);
                large.push(s);
            }
        }

        // Levels k >= 2.
        let mut k = 1;
        while !large.is_empty() {
            k += 1;
            if self.config.max_size.is_some_and(|cap| k > cap) {
                break;
            }
            let candidates = apriori_gen(&large);
            if candidates.is_empty() {
                break;
            }
            stats.candidates_counted =
                stats.candidates_counted.saturating_add(candidates.len() as u64);
            stats.levels = stats.levels.saturating_add(1);
            let span = car_obs::time_span!("mine.apriori.support_count");
            let outcome = count_candidates_detailed(
                &candidates,
                transactions,
                self.config.counting,
            );
            drop(span);
            stats.bitmap_builds =
                stats.bitmap_builds.saturating_add(outcome.bitmap_builds);
            large = candidates
                .into_iter()
                .zip(&outcome.counts)
                .filter(|&(_, &c)| c >= threshold)
                .map(|(s, &c)| {
                    result.insert(s.clone(), c);
                    s
                })
                .collect();
        }
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    /// The classic 9-transaction example from Han & Kamber.
    fn han_kamber() -> Vec<ItemSet> {
        vec![
            set(&[1, 2, 5]),
            set(&[2, 4]),
            set(&[2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 3]),
            set(&[1, 2, 3, 5]),
            set(&[1, 2, 3]),
        ]
    }

    #[test]
    fn han_kamber_example() {
        let config = AprioriConfig::new(MinSupport::count(2));
        let f = Apriori::new(config).mine(&han_kamber());
        // Known result: L1 = 5 itemsets, L2 = 6, L3 = 2.
        assert_eq!(f.level(1).count(), 5);
        assert_eq!(f.level(2).count(), 6);
        assert_eq!(f.level(3).count(), 2);
        assert_eq!(f.count(&set(&[1, 2])), Some(4));
        assert_eq!(f.count(&set(&[1, 2, 3])), Some(2));
        assert_eq!(f.count(&set(&[1, 2, 5])), Some(2));
        assert_eq!(f.count(&set(&[4])), Some(2));
        assert_eq!(f.count(&set(&[2, 5])), Some(2));
        assert_eq!(f.count(&set(&[3, 5])), None);
        assert_eq!(f.max_level(), 3);
    }

    #[test]
    fn both_engines_agree_on_han_kamber() {
        let base = AprioriConfig::new(MinSupport::count(2));
        let a =
            Apriori::new(base.with_counting(CountStrategy::HashMap)).mine(&han_kamber());
        let b =
            Apriori::new(base.with_counting(CountStrategy::HashTree)).mine(&han_kamber());
        let mut av: Vec<_> = a.iter().map(|(s, c)| (s.clone(), c)).collect();
        let mut bv: Vec<_> = b.iter().map(|(s, c)| (s.clone(), c)).collect();
        av.sort();
        bv.sort();
        assert_eq!(av, bv);
    }

    #[test]
    fn fraction_threshold() {
        // 50% of 4 transactions = 2.
        let tx = vec![set(&[1, 2]), set(&[1]), set(&[2]), set(&[3])];
        let f = Apriori::new(AprioriConfig::new(MinSupport::fraction(0.5).unwrap()))
            .mine(&tx);
        assert_eq!(f.count(&set(&[1])), Some(2));
        assert_eq!(f.count(&set(&[2])), Some(2));
        assert_eq!(f.count(&set(&[3])), None);
        assert_eq!(f.count(&set(&[1, 2])), None); // count 1 < 2
    }

    #[test]
    fn empty_database_yields_nothing() {
        let f = Apriori::new(AprioriConfig::new(MinSupport::fraction(0.1).unwrap()))
            .mine(&[]);
        assert!(f.is_empty());
        assert_eq!(f.num_transactions(), 0);
    }

    #[test]
    fn max_size_caps_levels() {
        let tx = vec![set(&[1, 2, 3]); 5];
        let config = AprioriConfig::new(MinSupport::count(1)).with_max_size(2);
        let f = Apriori::new(config).mine(&tx);
        assert_eq!(f.max_level(), 2);
        assert!(f.contains(&set(&[1, 2])));
        assert!(!f.contains(&set(&[1, 2, 3])));
    }

    #[test]
    fn single_transaction_full_lattice() {
        let tx = vec![set(&[1, 2, 3])];
        let f = Apriori::new(AprioriConfig::new(MinSupport::count(1))).mine(&tx);
        assert_eq!(f.len(), 7); // all non-empty subsets
        assert_eq!(f.count(&set(&[1, 2, 3])), Some(1));
    }
}
