//! A fast, non-cryptographic hasher and hash-map aliases.
//!
//! The standard library's default SipHash is robust against hash-flooding
//! but slow for the short keys (itemsets of a handful of `u32`s) that
//! dominate Apriori workloads. This module implements the multiply-xor
//! scheme popularised by rustc's `FxHasher`, avoiding an external
//! dependency. Mining inputs are not attacker-controlled hash keys, so the
//! weaker collision guarantees are acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply-rotate hasher (Fx-style).
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&vec![1u32, 2]), hash_of(&vec![2u32, 1]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FastHashMap<u32, u32> = FastHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        let mut s: FastHashSet<&str> = FastHashSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }

    #[test]
    fn spreads_small_integers() {
        // Not a statistical test — just ensure low bits differ across a
        // small range so bucket distribution is sane.
        let hashes: Vec<u64> = (0u32..64).map(|i| hash_of(&i)).collect();
        let distinct_low: std::collections::HashSet<u64> =
            hashes.iter().map(|h| h & 0xff).collect();
        assert!(distinct_low.len() > 32, "low byte collides too much");
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h2.finish());
    }
}
