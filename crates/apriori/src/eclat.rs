//! Eclat: vertical (tid-list) frequent itemset mining.
//!
//! Eclat (Zaki, 1997) represents each itemset by the sorted list of
//! transaction ids containing it and computes supports by intersecting
//! tid-lists instead of scanning transactions. It explores the itemset
//! lattice depth-first within equivalence classes sharing a prefix.
//!
//! In this workspace Eclat serves two purposes: a cross-checking oracle
//! for the Apriori implementations (identical outputs, very different
//! mechanics), and a faster per-unit substrate when units are dense and
//! deep itemsets exist.

use car_itemset::{Item, ItemSet};

use crate::frequent::FrequentItemsets;
use crate::hash::FastHashMap;
use crate::support::MinSupport;

/// Mines all large itemsets of `transactions` with the Eclat algorithm.
///
/// Produces exactly the same itemsets and counts as
/// [`Apriori::mine`](crate::Apriori::mine) (property-tested).
pub fn eclat(
    transactions: &[ItemSet],
    min_support: MinSupport,
    max_size: Option<usize>,
) -> FrequentItemsets {
    let threshold = min_support.threshold(transactions.len());
    let mut result = FrequentItemsets::new(transactions.len());
    if max_size == Some(0) {
        return result;
    }

    // Build vertical tid-lists for frequent single items.
    let mut tidlists: FastHashMap<Item, Vec<u32>> = FastHashMap::default();
    for (tid, t) in transactions.iter().enumerate() {
        for item in t.iter() {
            tidlists.entry(item).or_default().push(tid as u32);
        }
    }
    let mut roots: Vec<(ItemSet, Vec<u32>)> = tidlists
        .into_iter()
        .filter(|(_, tids)| tids.len() as u64 >= threshold)
        .map(|(item, tids)| (ItemSet::single(item), tids))
        .collect();
    roots.sort_by(|a, b| a.0.cmp(&b.0));

    for (itemset, tids) in &roots {
        result.insert(itemset.clone(), tids.len() as u64);
    }

    // Depth-first extension within prefix equivalence classes.
    extend(&roots, threshold, max_size, &mut result);
    result
}

/// Recursively extends each member of a prefix class with its
/// right-siblings.
fn extend(
    class: &[(ItemSet, Vec<u32>)],
    threshold: u64,
    max_size: Option<usize>,
    result: &mut FrequentItemsets,
) {
    for (i, (prefix, prefix_tids)) in class.iter().enumerate() {
        if max_size.is_some_and(|cap| prefix.len() + 1 > cap) {
            return;
        }
        let mut child_class: Vec<(ItemSet, Vec<u32>)> = Vec::new();
        for (sibling, sibling_tids) in &class[i + 1..] {
            let last = *sibling.as_slice().last().expect("non-empty");
            let tids = intersect(prefix_tids, sibling_tids);
            if tids.len() as u64 >= threshold {
                let itemset = prefix.with_appended(last);
                result.insert(itemset.clone(), tids.len() as u64);
                child_class.push((itemset, tids));
            }
        }
        if !child_class.is_empty() {
            extend(&child_class, threshold, max_size, result);
        }
    }
}

/// Intersects two sorted tid-lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apriori, AprioriConfig};

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn han_kamber() -> Vec<ItemSet> {
        vec![
            set(&[1, 2, 5]),
            set(&[2, 4]),
            set(&[2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 3]),
            set(&[1, 2, 3, 5]),
            set(&[1, 2, 3]),
        ]
    }

    fn as_sorted(f: &FrequentItemsets) -> Vec<(ItemSet, u64)> {
        let mut v: Vec<_> = f.iter().map(|(s, c)| (s.clone(), c)).collect();
        v.sort();
        v
    }

    #[test]
    fn matches_apriori_on_han_kamber() {
        let tx = han_kamber();
        for min in [1u64, 2, 3, 4] {
            let ms = MinSupport::count(min);
            let a = Apriori::new(AprioriConfig::new(ms)).mine(&tx);
            let e = eclat(&tx, ms, None);
            assert_eq!(as_sorted(&a), as_sorted(&e), "minsup {min}");
        }
    }

    #[test]
    fn respects_max_size() {
        let tx = vec![set(&[1, 2, 3, 4]); 3];
        let e = eclat(&tx, MinSupport::count(1), Some(2));
        assert_eq!(e.max_level(), 2);
        assert_eq!(e.len(), 4 + 6);
        let unlimited = eclat(&tx, MinSupport::count(1), None);
        assert_eq!(unlimited.len(), 15); // 2^4 - 1
        let zero = eclat(&tx, MinSupport::count(1), Some(0));
        assert!(zero.is_empty());
    }

    #[test]
    fn empty_database() {
        let e = eclat(&[], MinSupport::fraction(0.5).unwrap(), None);
        assert!(e.is_empty());
    }

    #[test]
    fn intersect_is_exact() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[1, 2]), vec![1, 2]);
    }
}
