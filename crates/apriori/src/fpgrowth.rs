//! FP-Growth: frequent itemset mining without candidate generation.
//!
//! FP-Growth (Han, Pei, Yin; SIGMOD 2000) compresses the database into a
//! prefix tree (**FP-tree**) whose paths share common frequent-item
//! prefixes, then mines recursively over *conditional* trees — no
//! candidate generation, two database passes total.
//!
//! It completes the substrate trio (Apriori levels + hash tree, Eclat
//! tid-lists, FP-Growth pattern growth): three independent mechanisms
//! that must produce identical frequent itemsets, which the property
//! tests exploit as a three-way oracle.

use car_itemset::{Item, ItemSet};

use crate::frequent::FrequentItemsets;
use crate::hash::FastHashMap;
use crate::support::MinSupport;

/// An FP-tree node (arena-allocated; `u32` indices).
struct Node {
    item: Item,
    count: u64,
    parent: u32,
    /// First child; siblings are linked through `sibling`.
    child: u32,
    sibling: u32,
    /// Next node carrying the same item (header chain).
    next_same_item: u32,
}

const NONE: u32 = u32::MAX;

/// An FP-tree with per-item header chains.
struct FpTree {
    nodes: Vec<Node>,
    /// `headers[i]` = (item, first node of that item's chain, item count).
    headers: Vec<(Item, u32, u64)>,
    header_index: FastHashMap<Item, usize>,
}

impl FpTree {
    /// Builds a tree from `(itemset, count)` rows. Items within each row
    /// must be filtered to frequent ones; the tree orders them by
    /// descending `item_counts` (ties by ascending id).
    fn build(
        rows: impl Iterator<Item = (Vec<Item>, u64)>,
        item_counts: &FastHashMap<Item, u64>,
    ) -> Self {
        let mut headers: Vec<(Item, u32, u64)> =
            item_counts.iter().map(|(&item, &count)| (item, NONE, count)).collect();
        // Descending count, ascending id — the canonical f-list order.
        headers.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        let header_index: FastHashMap<Item, usize> =
            headers.iter().enumerate().map(|(i, &(item, _, _))| (item, i)).collect();

        let mut tree = FpTree {
            nodes: vec![Node {
                item: Item::new(u32::MAX),
                count: 0,
                parent: NONE,
                child: NONE,
                sibling: NONE,
                next_same_item: NONE,
            }],
            headers,
            header_index,
        };

        for (mut items, count) in rows {
            // Order by f-list rank.
            items.sort_by_key(|it| tree.header_index[it]);
            tree.insert(&items, count);
        }
        tree
    }

    fn insert(&mut self, path: &[Item], count: u64) {
        let mut current = 0u32;
        for &item in path {
            // Look for an existing child with this item.
            let mut child = self.nodes[current as usize].child;
            let mut found = NONE;
            while child != NONE {
                if self.nodes[child as usize].item == item {
                    found = child;
                    break;
                }
                child = self.nodes[child as usize].sibling;
            }
            current = if found != NONE {
                self.nodes[found as usize].count += count;
                found
            } else {
                let idx = self.nodes.len() as u32;
                let header_slot = self.header_index[&item];
                self.nodes.push(Node {
                    item,
                    count,
                    parent: current,
                    child: NONE,
                    sibling: self.nodes[current as usize].child,
                    next_same_item: self.headers[header_slot].1,
                });
                self.nodes[current as usize].child = idx;
                self.headers[header_slot].1 = idx;
                idx
            };
        }
    }

    /// The conditional pattern base of `header_slot`: prefix paths (as
    /// item vectors, unordered) with the counts of the slot's nodes.
    fn pattern_base(&self, header_slot: usize) -> Vec<(Vec<Item>, u64)> {
        let mut base = Vec::new();
        let mut node = self.headers[header_slot].1;
        while node != NONE {
            let count = self.nodes[node as usize].count;
            let mut path = Vec::new();
            let mut up = self.nodes[node as usize].parent;
            while up != 0 && up != NONE {
                path.push(self.nodes[up as usize].item);
                up = self.nodes[up as usize].parent;
            }
            if !path.is_empty() {
                base.push((path, count));
            }
            node = self.nodes[node as usize].next_same_item;
        }
        base
    }
}

/// Mines all large itemsets of `transactions` with FP-Growth.
///
/// Produces exactly the same itemsets and counts as
/// [`Apriori::mine`](crate::Apriori::mine) and [`eclat`](crate::eclat)
/// (property-tested three ways).
pub fn fp_growth(
    transactions: &[ItemSet],
    min_support: MinSupport,
    max_size: Option<usize>,
) -> FrequentItemsets {
    let threshold = min_support.threshold(transactions.len());
    let mut result = FrequentItemsets::new(transactions.len());
    if max_size == Some(0) {
        return result;
    }

    // Pass 1: item counts.
    let mut item_counts: FastHashMap<Item, u64> = FastHashMap::default();
    for t in transactions {
        for item in t.iter() {
            *item_counts.entry(item).or_insert(0) += 1;
        }
    }
    item_counts.retain(|_, c| *c >= threshold);

    // Pass 2: build the tree from frequent-filtered transactions.
    let rows = transactions.iter().filter_map(|t| {
        let items: Vec<Item> =
            t.iter().filter(|it| item_counts.contains_key(it)).collect();
        (!items.is_empty()).then_some((items, 1u64))
    });
    let tree = FpTree::build(rows, &item_counts);

    mine_tree(&tree, threshold, max_size, &mut Vec::new(), &mut result);
    result
}

/// Recursively mines `tree`, with `suffix` the items already fixed.
fn mine_tree(
    tree: &FpTree,
    threshold: u64,
    max_size: Option<usize>,
    suffix: &mut Vec<Item>,
    result: &mut FrequentItemsets,
) {
    // Process header items from least to most frequent (bottom of the
    // f-list) — the classic order; any order is correct.
    for slot in (0..tree.headers.len()).rev() {
        let (item, _, count) = tree.headers[slot];
        suffix.push(item);
        result.insert(ItemSet::from_items(suffix.iter().copied()), count);

        if max_size.map_or(true, |cap| suffix.len() < cap) {
            // Conditional pattern base → conditional item counts.
            let base = tree.pattern_base(slot);
            let mut cond_counts: FastHashMap<Item, u64> = FastHashMap::default();
            for (path, c) in &base {
                for &it in path {
                    *cond_counts.entry(it).or_insert(0) += c;
                }
            }
            cond_counts.retain(|_, c| *c >= threshold);
            if !cond_counts.is_empty() {
                let rows = base.into_iter().filter_map(|(path, c)| {
                    let items: Vec<Item> = path
                        .into_iter()
                        .filter(|it| cond_counts.contains_key(it))
                        .collect();
                    (!items.is_empty()).then_some((items, c))
                });
                let cond_tree = FpTree::build(rows, &cond_counts);
                mine_tree(&cond_tree, threshold, max_size, suffix, result);
            }
        }
        suffix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eclat, Apriori, AprioriConfig};

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn han_kamber() -> Vec<ItemSet> {
        vec![
            set(&[1, 2, 5]),
            set(&[2, 4]),
            set(&[2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 3]),
            set(&[1, 2, 3, 5]),
            set(&[1, 2, 3]),
        ]
    }

    fn as_sorted(f: &FrequentItemsets) -> Vec<(ItemSet, u64)> {
        let mut v: Vec<_> = f.iter().map(|(s, c)| (s.clone(), c)).collect();
        v.sort();
        v
    }

    #[test]
    fn matches_apriori_and_eclat_on_han_kamber() {
        let tx = han_kamber();
        for min in [1u64, 2, 3, 4] {
            let ms = MinSupport::count(min);
            let a = Apriori::new(AprioriConfig::new(ms)).mine(&tx);
            let e = eclat(&tx, ms, None);
            let f = fp_growth(&tx, ms, None);
            assert_eq!(as_sorted(&a), as_sorted(&f), "apriori vs fp, minsup {min}");
            assert_eq!(as_sorted(&e), as_sorted(&f), "eclat vs fp, minsup {min}");
        }
    }

    #[test]
    fn respects_max_size() {
        let tx = vec![set(&[1, 2, 3, 4]); 3];
        let f = fp_growth(&tx, MinSupport::count(1), Some(2));
        assert_eq!(f.max_level(), 2);
        assert_eq!(f.len(), 4 + 6);
        assert!(fp_growth(&tx, MinSupport::count(1), Some(0)).is_empty());
    }

    #[test]
    fn empty_and_sparse_inputs() {
        assert!(fp_growth(&[], MinSupport::count(1), None).is_empty());
        let f = fp_growth(&[ItemSet::empty()], MinSupport::count(1), None);
        assert!(f.is_empty());
        // All items below threshold.
        let f = fp_growth(&[set(&[1]), set(&[2])], MinSupport::count(2), None);
        assert!(f.is_empty());
    }

    #[test]
    fn single_path_tree() {
        // All transactions identical → single path; the recursion must
        // still enumerate every subset with the right count.
        let tx = vec![set(&[1, 2, 3]); 4];
        let f = fp_growth(&tx, MinSupport::count(2), None);
        assert_eq!(f.len(), 7);
        for (s, c) in f.iter() {
            assert_eq!(c, 4, "{s}");
        }
    }

    #[test]
    fn shared_prefixes_accumulate_counts() {
        let tx =
            vec![set(&[1, 2]), set(&[1, 2, 3]), set(&[1, 3]), set(&[2, 3]), set(&[1])];
        let f = fp_growth(&tx, MinSupport::count(2), None);
        assert_eq!(f.count(&set(&[1])), Some(4));
        assert_eq!(f.count(&set(&[1, 2])), Some(2));
        assert_eq!(f.count(&set(&[1, 3])), Some(2));
        assert_eq!(f.count(&set(&[2, 3])), Some(2));
        assert_eq!(f.count(&set(&[1, 2, 3])), None); // count 1
    }
}
