//! # car-cycles
//!
//! Temporal substrate for cyclic association rule mining (Özden,
//! Ramaswamy, Silberschatz; ICDE 1998).
//!
//! A rule mined over a time-segmented database either *holds* or *does not
//! hold* in each time unit, which induces a **binary sequence** over the
//! units. A [`Cycle`] `(l, o)` asserts that the sequence is 1 at every unit
//! `i ≡ o (mod l)`. This crate provides:
//!
//! * [`BitSeq`] — a compact binary sequence.
//! * [`Cycle`] — cycle arithmetic: membership of units, the *multiple-of*
//!   relation, and enumeration of all cycles within length bounds.
//! * [`CycleSet`] — the candidate-cycle set at the heart of the paper's
//!   INTERLEAVED algorithm, supporting the three optimization primitives:
//!   - `eliminate(unit)` — **cycle elimination**: kill every candidate
//!     `(l, unit mod l)` after a miss at `unit`;
//!   - `includes_unit(unit)` — **cycle skipping**: test whether a unit is
//!     on any remaining candidate cycle;
//!   - `intersect` — **cycle pruning**: candidate cycles of an itemset are
//!     at most the intersection of its subsets' cycles.
//! * [`detect_cycles`] — exact cycle detection for a binary sequence,
//!   implemented as elimination from the full candidate set (exactly the
//!   procedure the SEQUENTIAL algorithm uses on rule sequences).
//! * [`minimal_cycles`] — filtering of cycles that are multiples of other
//!   detected cycles (only *minimal* cycles are reported to users).
//! * [`detect_approx_cycles`] — the paper's future-work relaxation: cycles
//!   that tolerate a bounded number of misses.
//!
//! ```
//! use car_cycles::{BitSeq, CycleBounds, detect_cycles, minimal_cycles};
//!
//! // A rule that holds every other unit starting at unit 1.
//! let seq = BitSeq::from_bits([false, true, false, true, false, true]);
//! let bounds = CycleBounds::new(1, 3).unwrap();
//! let set = detect_cycles(&seq, bounds);
//! let cycles = minimal_cycles(&set);
//! assert_eq!(cycles.len(), 1);
//! assert_eq!((cycles[0].length(), cycles[0].offset()), (2, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod bitseq;
mod bounds;
mod cycle;
mod cycleset;
mod detect;
mod merge;
mod online;
pub mod spectrum;

pub use approx::{detect_approx_cycles, ApproxCycle};
pub use bitseq::BitSeq;
pub use bounds::CycleBounds;
pub use cycle::Cycle;
pub use cycleset::CycleSet;
pub use detect::{detect_cycles, detect_cycles_batch, has_any_cycle, minimal_cycles};
pub use merge::merge_minimal_cycle_lists;
pub use online::OnlineRuleCycles;
pub use spectrum::{autocorrelation, dominant_period, spectrum, PeriodStrength};
