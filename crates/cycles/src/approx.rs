//! Approximate cycles: the relaxation sketched as future work in the
//! ICDE'98 paper, where a cycle is allowed a bounded number of *misses*
//! (on-cycle units where the sequence is 0).
//!
//! Exact cycles are brittle on noisy data — one promotional week that
//! breaks a seasonal pattern destroys the cycle. An [`ApproxCycle`]
//! instead reports how many of the on-cycle units missed, and detection
//! keeps cycles whose miss count is within a caller-supplied budget.

use crate::{BitSeq, Cycle, CycleBounds};

/// A cycle together with its observational quality on a sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApproxCycle {
    /// The cycle.
    pub cycle: Cycle,
    /// Number of on-cycle units where the sequence was 0.
    pub misses: u32,
    /// Number of on-cycle units within the sequence (hits + misses).
    pub occurrences: u32,
}

impl ApproxCycle {
    /// Fraction of on-cycle units that hit; 0 when the cycle never occurs
    /// within the sequence.
    pub fn hit_rate(&self) -> f64 {
        if self.occurrences == 0 {
            0.0
        } else {
            f64::from(self.occurrences - self.misses) / f64::from(self.occurrences)
        }
    }

    /// Whether the cycle is exact (no misses) and non-vacuous.
    pub fn is_exact(&self) -> bool {
        self.misses == 0 && self.occurrences > 0
    }
}

/// Detects cycles allowing at most `max_misses` misses per cycle.
///
/// Runs in `O(zeros(seq) · (l_max − l_min) + Σ l)`: one counter per
/// candidate cycle, bumped for every zero of the sequence. Vacuous cycles
/// (no on-cycle unit within the sequence) are never reported. The result
/// is sorted by `(length, offset)`; no minimality filtering is applied
/// because a multiple of an approximate cycle can have strictly fewer
/// misses and is therefore informative in its own right.
pub fn detect_approx_cycles(
    seq: &BitSeq,
    bounds: CycleBounds,
    max_misses: u32,
) -> Vec<ApproxCycle> {
    let n = seq.len();
    // misses[l - l_min][o] counts zeros at units ≡ o (mod l).
    let mut misses: Vec<Vec<u32>> =
        bounds.lengths().map(|l| vec![0u32; l as usize]).collect();
    for zero in seq.iter_zeros() {
        for l in bounds.lengths() {
            misses[(l - bounds.l_min()) as usize][zero % l as usize] += 1;
        }
    }
    let mut out = Vec::new();
    for l in bounds.lengths() {
        for o in 0..l {
            let cycle = Cycle::make(l, o);
            let occurrences = cycle.num_units(n) as u32;
            if occurrences == 0 {
                continue;
            }
            let m = misses[(l - bounds.l_min()) as usize][o as usize];
            if m <= max_misses {
                out.push(ApproxCycle { cycle, misses: m, occurrences });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(s: &str, l_min: u32, l_max: u32, budget: u32) -> Vec<ApproxCycle> {
        detect_approx_cycles(&s.parse().unwrap(), CycleBounds::make(l_min, l_max), budget)
    }

    #[test]
    fn zero_budget_matches_exact_detection() {
        use crate::{detect_cycles, CycleSet};
        for s in ["10101010", "110110", "111000", "0110", "11111"] {
            let bounds = CycleBounds::make(1, 4);
            let seq: BitSeq = s.parse().unwrap();
            let exact: CycleSet = detect_cycles(&seq, bounds);
            let approx = detect_approx_cycles(&seq, bounds, 0);
            let approx_cycles: Vec<_> = approx.iter().map(|a| a.cycle).collect();
            // Every sequence here is at least 4 long, so no vacuous cycles
            // exist within bounds and the sets must agree exactly.
            assert_eq!(approx_cycles, exact.to_vec(), "sequence {s}");
            assert!(approx.iter().all(ApproxCycle::is_exact));
        }
    }

    #[test]
    fn one_miss_is_tolerated() {
        // (2,0) on "10101000" misses at unit 6 only.
        let res = run("10101000", 2, 2, 1);
        let c20 = res.iter().find(|a| a.cycle == Cycle::make(2, 0)).unwrap();
        assert_eq!(c20.misses, 1);
        assert_eq!(c20.occurrences, 4);
        assert!((c20.hit_rate() - 0.75).abs() < 1e-12);
        assert!(!c20.is_exact());
        // (2,1) misses at 1, 3, 5, 7 → 4 misses, over budget.
        assert!(res.iter().all(|a| a.cycle != Cycle::make(2, 1)));
    }

    #[test]
    fn budget_large_enough_returns_all_nonvacuous() {
        let res = run("0000", 1, 4, 4);
        // All cycles with at least one occurrence in 0..4.
        let expected: Vec<Cycle> =
            CycleBounds::make(1, 4).all_cycles().filter(|c| c.num_units(4) > 0).collect();
        assert_eq!(res.iter().map(|a| a.cycle).collect::<Vec<_>>(), expected);
    }

    #[test]
    fn vacuous_cycles_are_excluded() {
        // Sequence of length 3, cycles of length 5 with offsets 3, 4 never
        // occur — they must not be reported even with a generous budget.
        let res = run("111", 5, 5, 10);
        assert_eq!(
            res.iter().map(|a| a.cycle).collect::<Vec<_>>(),
            vec![Cycle::make(5, 0), Cycle::make(5, 1), Cycle::make(5, 2)]
        );
        assert!(res.iter().all(|a| a.occurrences == 1 && a.misses == 0));
    }

    #[test]
    fn miss_counts_match_definition() {
        let s = "110010";
        let res = run(s, 3, 3, 10);
        let seq: BitSeq = s.parse().unwrap();
        for a in res {
            let expected =
                a.cycle.units(seq.len()).filter(|&u| !seq.get(u)).count() as u32;
            assert_eq!(a.misses, expected, "cycle {}", a.cycle);
        }
    }

    #[test]
    fn hit_rate_of_vacuous_is_zero() {
        let a = ApproxCycle { cycle: Cycle::make(5, 4), misses: 0, occurrences: 0 };
        assert_eq!(a.hit_rate(), 0.0);
        assert!(!a.is_exact());
    }
}
