//! Merging per-shard cycle views of the same rule.
//!
//! A sharded deployment mines each item-space partition on its own
//! worker; the router composes the partial views at query time. When the
//! same rule surfaces on more than one shard (item-space purity is a
//! client contract, not an invariant the router can enforce), the
//! merged rule must carry one combined *minimal* cycle list: the union
//! of the per-shard lists with multiples of other retained cycles
//! dropped, sorted by `(length, offset)` — exactly the reporting form a
//! single node produces.

use crate::Cycle;

/// Merges several minimal-cycle lists into one minimal, sorted,
/// duplicate-free list.
///
/// The result is the union of the inputs with exact duplicates removed
/// and any cycle that is a multiple of a *different* retained cycle
/// dropped — re-establishing minimality, which a plain union does not
/// preserve (one shard's minimal cycle may be a multiple of another
/// shard's).
///
/// ```
/// use car_cycles::{merge_minimal_cycle_lists, Cycle};
///
/// let a = vec![Cycle::make(4, 1)]; // a multiple of (2,1)
/// let b = vec![Cycle::make(2, 1), Cycle::make(3, 0)];
/// let merged = merge_minimal_cycle_lists([&a[..], &b[..]]);
/// assert_eq!(merged, vec![Cycle::make(2, 1), Cycle::make(3, 0)]);
/// ```
pub fn merge_minimal_cycle_lists<'a, I>(lists: I) -> Vec<Cycle>
where
    I: IntoIterator<Item = &'a [Cycle]>,
{
    let mut all: Vec<Cycle> = lists.into_iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    // Distinct cycles cannot be mutual multiples (the lengths would have
    // to divide each other, forcing equality), so this filter never
    // removes an entire equivalence class.
    all.iter()
        .copied()
        .filter(|&c| !all.iter().any(|&other| other != c && c.is_multiple_of(other)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_merge_to_empty() {
        assert_eq!(merge_minimal_cycle_lists([]), Vec::new());
        assert_eq!(merge_minimal_cycle_lists([&[][..], &[][..]]), Vec::new());
    }

    #[test]
    fn disjoint_lists_concatenate_sorted() {
        let a = vec![Cycle::make(3, 2)];
        let b = vec![Cycle::make(2, 0)];
        assert_eq!(
            merge_minimal_cycle_lists([&a[..], &b[..]]),
            vec![Cycle::make(2, 0), Cycle::make(3, 2)]
        );
    }

    #[test]
    fn exact_duplicates_collapse() {
        let a = vec![Cycle::make(2, 1)];
        assert_eq!(
            merge_minimal_cycle_lists([&a[..], &a[..], &a[..]]),
            vec![Cycle::make(2, 1)]
        );
    }

    #[test]
    fn multiples_across_lists_are_dropped() {
        // (6,5) and (4,1) are both multiples of (2,1) from another list.
        let a = vec![Cycle::make(6, 5), Cycle::make(4, 1)];
        let b = vec![Cycle::make(2, 1)];
        assert_eq!(merge_minimal_cycle_lists([&a[..], &b[..]]), vec![Cycle::make(2, 1)]);
        // Order of the lists is irrelevant.
        assert_eq!(merge_minimal_cycle_lists([&b[..], &a[..]]), vec![Cycle::make(2, 1)]);
    }

    #[test]
    fn unrelated_cycles_survive_alongside_a_base() {
        let a = vec![Cycle::make(2, 0), Cycle::make(3, 1)];
        let b = vec![Cycle::make(4, 0), Cycle::make(5, 2)];
        assert_eq!(
            merge_minimal_cycle_lists([&a[..], &b[..]]),
            vec![Cycle::make(2, 0), Cycle::make(3, 1), Cycle::make(5, 2)]
        );
    }
}
