use std::fmt;

/// A cycle `(l, o)`: length `l ≥ 1` and offset `0 ≤ o < l`.
///
/// A binary sequence *has* cycle `(l, o)` when it is 1 at every index
/// `i ≡ o (mod l)` within the sequence. Cycle lengths are bounded by the
/// user-supplied [`CycleBounds`](crate::CycleBounds) during mining.
///
/// If a sequence has cycle `(l, o)`, it trivially also has every
/// *multiple* `(k·l, o + j·l)`; only cycles that are not multiples of
/// another detected cycle (*minimal* cycles) are interesting to report.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle {
    length: u32,
    offset: u32,
}

impl Cycle {
    /// Creates a cycle, validating `length ≥ 1` and `offset < length`.
    pub fn new(length: u32, offset: u32) -> Option<Self> {
        if length >= 1 && offset < length {
            Some(Cycle { length, offset })
        } else {
            None
        }
    }

    /// Creates a cycle without returning an `Option`.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0` or `offset >= length`.
    pub fn make(length: u32, offset: u32) -> Self {
        Self::new(length, offset)
            .unwrap_or_else(|| panic!("invalid cycle ({length},{offset})"))
    }

    /// The cycle length `l`.
    #[inline]
    pub const fn length(self) -> u32 {
        self.length
    }

    /// The cycle offset `o`.
    #[inline]
    pub const fn offset(self) -> u32 {
        self.offset
    }

    /// Whether unit `i` lies on this cycle (`i ≡ o (mod l)`).
    #[inline]
    pub fn includes_unit(self, unit: usize) -> bool {
        unit as u64 % self.length as u64 == self.offset as u64
    }

    /// Iterates the units of this cycle that fall in `0..num_units`.
    pub fn units(self, num_units: usize) -> impl Iterator<Item = usize> {
        (self.offset as usize..num_units).step_by(self.length as usize)
    }

    /// Number of units of this cycle within `0..num_units`.
    pub fn num_units(self, num_units: usize) -> usize {
        if (self.offset as usize) >= num_units {
            0
        } else {
            (num_units - self.offset as usize).div_ceil(self.length as usize)
        }
    }

    /// Whether `self` is a multiple of `other`: `other.length` divides
    /// `self.length` and the offsets agree modulo `other.length`.
    ///
    /// Every unit of a multiple is a unit of the base cycle, so a sequence
    /// with cycle `other` automatically has cycle `self`. A cycle is a
    /// multiple of itself.
    pub fn is_multiple_of(self, other: Cycle) -> bool {
        self.length % other.length == 0 && self.offset % other.length == other.offset
    }

    /// The cycle describing the units common to `self` and `other`, if
    /// any.
    ///
    /// The units shared by `(l₁, o₁)` and `(l₂, o₂)` are the solutions of
    /// the congruence system `u ≡ o₁ (mod l₁)`, `u ≡ o₂ (mod l₂)`. By the
    /// Chinese Remainder Theorem a solution exists iff
    /// `gcd(l₁, l₂) | o₁ − o₂`, and then the common units form exactly the
    /// cycle `(lcm(l₁, l₂), o)` for the unique solution `o` below the lcm.
    /// Note the result's length may exceed any
    /// [`CycleBounds`](crate::CycleBounds) in play —
    /// it describes set intersection, not mined candidacy. Returns `None`
    /// both when no unit is shared and when the lcm overflows the `u32`
    /// cycle-length domain (two near-`u32::MAX` coprime lengths), where
    /// no representable cycle exists.
    ///
    /// ```
    /// use car_cycles::Cycle;
    ///
    /// let a = Cycle::make(4, 1); // 1, 5, 9, 13, …
    /// let b = Cycle::make(6, 3); // 3, 9, 15, 21, …
    /// assert_eq!(a.meet(b), Some(Cycle::make(12, 9)));
    /// assert_eq!(a.meet(Cycle::make(2, 0)), None); // odd vs even units
    /// ```
    pub fn meet(self, other: Cycle) -> Option<Cycle> {
        let (l1, o1) = (u64::from(self.length), i64::from(self.offset));
        let (l2, o2) = (u64::from(other.length), i64::from(other.offset));
        let g = gcd(l1, l2);
        if (o1 - o2).rem_euclid(g as i64) != 0 {
            return None;
        }
        let lcm = l1 / g * l2;
        if u32::try_from(lcm).is_err() {
            return None;
        }
        // Solve u ≡ o1 (mod l1), u ≡ o2 (mod l2):
        // u = o1 + l1 * t with t ≡ (o2 - o1)/g * inv(l1/g) (mod l2/g).
        let l1_g = l1 / g;
        let l2_g = l2 / g;
        let diff = ((o2 - o1) / g as i64).rem_euclid(l2_g as i64) as u64;
        let inv = mod_inverse(l1_g % l2_g, l2_g)?;
        let t = diff * inv % l2_g;
        let offset = (o1 as u64 % lcm + l1 % lcm * t) % lcm;
        Some(Cycle::make(lcm as u32, offset as u32))
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Multiplicative inverse of `a` modulo `m` (`m ≥ 1`), when it exists.
fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 1 {
        return Some(0);
    }
    let (mut old_r, mut r) = (a as i64, m as i64);
    let (mut old_s, mut s) = (1i64, 0i64);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    Some(old_s.rem_euclid(m as i64) as u64)
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.length, self.offset)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.length, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Cycle::new(0, 0).is_none());
        assert!(Cycle::new(1, 0).is_some());
        assert!(Cycle::new(3, 2).is_some());
        assert!(Cycle::new(3, 3).is_none());
        assert!(Cycle::new(3, 4).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid cycle")]
    fn make_panics_on_invalid() {
        let _ = Cycle::make(2, 2);
    }

    #[test]
    fn unit_membership() {
        let c = Cycle::make(3, 1);
        assert!(!c.includes_unit(0));
        assert!(c.includes_unit(1));
        assert!(!c.includes_unit(2));
        assert!(!c.includes_unit(3));
        assert!(c.includes_unit(4));
        assert!(c.includes_unit(7));
    }

    #[test]
    fn units_enumeration() {
        let c = Cycle::make(4, 2);
        assert_eq!(c.units(12).collect::<Vec<_>>(), vec![2, 6, 10]);
        assert_eq!(c.num_units(12), 3);
        assert_eq!(c.units(2).count(), 0);
        assert_eq!(c.num_units(2), 0);
        assert_eq!(c.num_units(3), 1);
        // Length-1 cycle covers everything.
        assert_eq!(Cycle::make(1, 0).units(4).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn num_units_matches_enumeration() {
        for l in 1..6u32 {
            for o in 0..l {
                let c = Cycle::make(l, o);
                for n in 0..20usize {
                    assert_eq!(c.num_units(n), c.units(n).count(), "cycle {c} n={n}");
                }
            }
        }
    }

    #[test]
    fn multiples() {
        let base = Cycle::make(2, 1);
        assert!(Cycle::make(2, 1).is_multiple_of(base));
        assert!(Cycle::make(4, 1).is_multiple_of(base));
        assert!(Cycle::make(4, 3).is_multiple_of(base));
        assert!(Cycle::make(6, 5).is_multiple_of(base));
        assert!(!Cycle::make(4, 0).is_multiple_of(base));
        assert!(!Cycle::make(3, 1).is_multiple_of(base));
        assert!(!base.is_multiple_of(Cycle::make(4, 1)));
    }

    #[test]
    fn multiple_units_are_subset_of_base_units() {
        // Semantic check: every unit of a multiple is a unit of the base.
        let base = Cycle::make(3, 2);
        for l in 1..=12u32 {
            for o in 0..l {
                let c = Cycle::make(l, o);
                if c.is_multiple_of(base) {
                    for u in c.units(36) {
                        assert!(base.includes_unit(u), "{c} unit {u} not on {base}");
                    }
                }
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::make(7, 3).to_string(), "(7,3)");
    }

    #[test]
    fn meet_matches_brute_force() {
        // Compare against explicit unit-set intersection on a window far
        // longer than any lcm in range.
        const N: usize = 2_000;
        for l1 in 1..=10u32 {
            for o1 in 0..l1 {
                for l2 in 1..=10u32 {
                    for o2 in 0..l2 {
                        let a = Cycle::make(l1, o1);
                        let b = Cycle::make(l2, o2);
                        let expected: Vec<usize> =
                            a.units(N).filter(|&u| b.includes_unit(u)).collect();
                        match a.meet(b) {
                            None => assert!(
                                expected.is_empty(),
                                "{a} ∧ {b} should be empty, got {expected:?}"
                            ),
                            Some(c) => {
                                assert_eq!(
                                    c.units(N).collect::<Vec<_>>(),
                                    expected,
                                    "{a} ∧ {b} = {c}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn meet_overflow_returns_none() {
        // Two coprime lengths near u32::MAX: the lcm exceeds the cycle
        // domain, so no representable common cycle exists.
        let a = Cycle::make(u32::MAX, 0);
        let b = Cycle::make(u32::MAX - 1, 0);
        assert_eq!(a.meet(b), None);
        // Identical huge cycles still meet themselves.
        assert_eq!(a.meet(a), Some(a));
    }

    #[test]
    fn meet_is_commutative_and_idempotent() {
        let a = Cycle::make(6, 2);
        let b = Cycle::make(9, 5);
        assert_eq!(a.meet(b), b.meet(a));
        assert_eq!(a.meet(a), Some(a));
    }
}
