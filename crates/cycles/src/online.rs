//! Online (push-time) cycle-candidate maintenance for sliding windows.
//!
//! [`detect_cycles`](crate::detect_cycles) is a-posteriori: it walks a
//! finished binary sequence and eliminates candidates at every miss.
//! The elimination rule itself is naturally incremental — a miss at
//! unit `u` kills exactly the candidates `(l, u mod l)` — but a
//! *sliding* window also **forgets**: when the unit that killed a cycle
//! is evicted, that cycle must come back. Destructive elimination (as
//! in [`CycleSet::eliminate`](crate::CycleSet::eliminate)) cannot
//! express that revival, so [`OnlineRuleCycles`] keeps *counts*
//! instead of tombstones.
//!
//! For one rule, `held[l - l_min][r]` counts the retained units with
//! absolute index `≡ r (mod l)` at which the rule held. The retained
//! window is always a contiguous absolute range `[base, base + n)`
//! (`base = total_pushed - n`), so the *total* number of retained
//! units in a residue class needs no storage at all — re-anchored to
//! window coordinates `o = (r - base) mod l`, it is the closed form
//! [`Cycle::num_units`]. A cycle is live iff `held == total`, i.e. the
//! class contains zero misses:
//!
//! * a push where the rule holds increments `held` (and `total`);
//! * a push where the rule misses leaves `held` behind `total` — the
//!   class dies without ever visiting the rule (elimination is
//!   implicit, which is what makes pushes O(rules *present* in the
//!   unit));
//! * evicting a hold decrements both sides; evicting a miss decrements
//!   only `total` — the natural revival that tombstones cannot do.
//!
//! Offsets are stored in absolute coordinates precisely so that
//! eviction is a counter decrement; the re-anchoring to window
//! coordinates happens once per query in [`OnlineRuleCycles::live_cycles`].

use crate::{Cycle, CycleBounds, CycleSet};

/// Per-rule online cycle-candidate state over a sliding unit window.
///
/// Feed it every retained unit at which the rule held
/// ([`record_hold`](Self::record_hold) on push,
/// [`record_evict`](Self::record_evict) when that unit leaves the
/// window), then ask for the surviving cycles of the current window
/// with [`live_cycles`](Self::live_cycles). Units at which the rule
/// did *not* hold are never reported — absence is the miss.
#[derive(Clone, Debug)]
pub struct OnlineRuleCycles {
    bounds: CycleBounds,
    /// `held[l - l_min][r]`: retained holds at absolute units `≡ r (mod l)`.
    held: Vec<Vec<u32>>,
    /// Total retained holds (for cheap emptiness checks).
    holds: usize,
}

impl OnlineRuleCycles {
    /// Creates empty state for cycle lengths within `bounds`.
    pub fn new(bounds: CycleBounds) -> Self {
        OnlineRuleCycles {
            bounds,
            held: bounds.lengths().map(|l| vec![0u32; l as usize]).collect(),
            holds: 0,
        }
    }

    /// The cycle-length bounds this state tracks.
    pub fn bounds(&self) -> CycleBounds {
        self.bounds
    }

    /// Number of retained units at which the rule held.
    pub fn holds(&self) -> usize {
        self.holds
    }

    /// True when no retained unit holds — the rule can be dropped.
    pub fn is_empty(&self) -> bool {
        self.holds == 0
    }

    /// Records that the rule held at absolute unit `abs_unit` (which
    /// just entered the window).
    pub fn record_hold(&mut self, abs_unit: u64) {
        for (row, l) in self.held.iter_mut().zip(self.bounds.lengths()) {
            let r = (abs_unit % u64::from(l)) as usize;
            if let Some(count) = row.get_mut(r) {
                *count = count.saturating_add(1);
            }
        }
        self.holds = self.holds.saturating_add(1);
    }

    /// Records that absolute unit `abs_unit`, at which the rule held,
    /// left the window. Evicted misses need no call — they were never
    /// recorded.
    pub fn record_evict(&mut self, abs_unit: u64) {
        for (row, l) in self.held.iter_mut().zip(self.bounds.lengths()) {
            let r = (abs_unit % u64::from(l)) as usize;
            if let Some(count) = row.get_mut(r) {
                *count = count.saturating_sub(1);
            }
        }
        self.holds = self.holds.saturating_sub(1);
    }

    /// The rule's surviving cycles over the retained window, in window
    /// coordinates (window unit 0 = absolute unit `base`), where the
    /// window retains absolute units `[base, base + len)`.
    ///
    /// Matches `detect_cycles` on the rule's window bit sequence
    /// whenever `bounds.l_max() <= len` — the precondition every
    /// mining query already validates (`CycleBoundExceedsUnits`), which
    /// rules out vacuous offsets `>= len`.
    pub fn live_cycles(&self, base: u64, len: usize) -> CycleSet {
        let mut live = CycleSet::empty(self.bounds);
        for (row, l) in self.held.iter().zip(self.bounds.lengths()) {
            let base_rem = base % u64::from(l);
            for (r, &count) in row.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let offset = ((r as u64 + u64::from(l) - base_rem) % u64::from(l)) as u32;
                let cycle = Cycle::make(l, offset);
                if count as usize == cycle.num_units(len) {
                    live.insert(cycle);
                }
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_cycles, BitSeq};

    /// Brute-force oracle: batch-detect over the retained slice.
    fn batch(history: &[bool], window: usize, bounds: CycleBounds) -> CycleSet {
        let start = history.len().saturating_sub(window);
        detect_cycles(&BitSeq::from_bits(history[start..].iter().copied()), bounds)
    }

    /// Drives a full hold/miss history through the tracker with the
    /// given window size and checks `live_cycles` against the oracle
    /// after every push once the window is at least `l_max` deep.
    fn check_stream(history: &[bool], window: usize, bounds: CycleBounds) {
        let mut state = OnlineRuleCycles::new(bounds);
        for (abs, &held) in history.iter().enumerate() {
            if held {
                state.record_hold(abs as u64);
            }
            if abs >= window && history[abs - window] {
                state.record_evict((abs - window) as u64);
            }
            let len = (abs + 1).min(window);
            if len < bounds.l_max() as usize {
                continue;
            }
            let base = (abs + 1 - len) as u64;
            let live = state.live_cycles(base, len);
            let oracle = batch(&history[..=abs], window, bounds);
            assert_eq!(
                live.to_vec(),
                oracle.to_vec(),
                "window ending at abs {abs} (len {len}, base {base})"
            );
        }
    }

    #[test]
    fn matches_batch_detection_on_simple_streams() {
        let bounds = CycleBounds::make(1, 3);
        // Alternating, all-ones, all-zeros, and an irregular stream.
        check_stream(&[false, true, false, true, false, true, false, true], 4, bounds);
        check_stream(&[true; 10], 5, bounds);
        check_stream(&[false; 10], 5, bounds);
        check_stream(
            &[true, true, false, true, true, true, false, true, true],
            6,
            bounds,
        );
    }

    #[test]
    fn eviction_revives_a_cycle_killed_by_an_old_miss() {
        // Window 4, length-2 cycles. A miss at abs 1 kills (2, 1);
        // once abs 1 slides out, every odd retained unit holds again.
        let bounds = CycleBounds::make(2, 2);
        let history = [true, false, true, true, true, true, true];
        let mut state = OnlineRuleCycles::new(bounds);
        for (abs, &held) in history.iter().enumerate() {
            if held {
                state.record_hold(abs as u64);
            }
            if abs >= 4 && history[abs - 4] {
                state.record_evict((abs - 4) as u64);
            }
        }
        // Retained: abs 3..=6, all holds -> both length-2 cycles live.
        let live = state.live_cycles(3, 4);
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn exhaustive_small_streams_match_batch() {
        // Every 9-unit binary history, window 5, lengths 1..=4.
        let bounds = CycleBounds::make(1, 4);
        for pattern in 0u32..512 {
            let history: Vec<bool> = (0..9).map(|i| pattern & (1 << i) != 0).collect();
            check_stream(&history, 5, bounds);
        }
    }

    #[test]
    fn empty_state_reports_no_cycles_and_is_droppable() {
        let bounds = CycleBounds::make(1, 3);
        let mut state = OnlineRuleCycles::new(bounds);
        assert!(state.is_empty());
        assert_eq!(state.live_cycles(0, 3).len(), 0);
        state.record_hold(7);
        assert!(!state.is_empty());
        state.record_evict(7);
        assert!(state.is_empty());
    }
}
