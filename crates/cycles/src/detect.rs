//! Exact cycle detection over binary sequences and minimal-cycle
//! filtering.

use crate::{BitSeq, Cycle, CycleBounds, CycleSet};

/// Detects every cycle (within `bounds`) of a binary sequence.
///
/// This is the elimination-based procedure of the ICDE'98 paper: begin
/// with every candidate `(l, o)` alive and, for each position where the
/// sequence is 0, eliminate the candidates that include that position.
/// What survives is exactly the set of cycles of the sequence. Detection
/// stops early once no candidate remains.
///
/// The returned set is **unfiltered** — it contains multiples of smaller
/// cycles. Apply [`minimal_cycles`] before presenting results to users;
/// keep the unfiltered set for anti-monotone reasoning inside the miners.
///
/// Note the boundary semantics: a cycle `(l, o)` with no on-cycle unit in
/// `0..seq.len()` (possible only when `o >= seq.len()`) survives
/// vacuously. Mining configurations validate `l_max ≤ num_units` to keep
/// every reported cycle supported by at least one observation.
pub fn detect_cycles(seq: &BitSeq, bounds: CycleBounds) -> CycleSet {
    // Deliberately no span here: this runs once per candidate rule, so a
    // per-call timer would dwarf the detection itself. The stage spans
    // (`mine.seq.cycle_detect`, `mine.int.rule_gen`) time it in bulk.
    let mut set = CycleSet::full(bounds);
    let mut eliminated: u64 = 0;
    for zero in seq.iter_zeros() {
        eliminated += set.eliminate(zero) as u64;
        if set.is_empty() {
            break;
        }
    }
    // Global diagnostic only; deliberately separate from the INTERLEAVED
    // cycle-elimination optimization counter, which must stay zero when
    // this a-posteriori detector is doing the eliminating.
    if eliminated > 0 {
        car_obs::counters::MINE.add_detect_eliminations(eliminated);
    }
    set
}

/// Detects cycles for a batch of sequences, fanning contiguous chunks
/// across scoped worker threads.
///
/// Results are index-aligned with `seqs`. `num_threads == 0` selects
/// the machine's available parallelism; small batches never spawn more
/// threads than sequences, and a single-thread batch runs inline. This
/// is the escalated-confidence query path of the window miner: each
/// rule's sequence is independent, so the work splits into contiguous
/// chunks exactly like `mine_sequential_parallel` splits itemsets.
///
/// If a worker panics, every other worker is still joined before the
/// panic payload is resumed on the caller's thread — no scoped thread
/// outlives the call and no partial result escapes.
pub fn detect_cycles_batch(
    seqs: &[BitSeq],
    bounds: CycleBounds,
    num_threads: usize,
) -> Vec<CycleSet> {
    let n = seqs.len();
    let threads = if num_threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        num_threads
    }
    .clamp(1, n.max(1));
    if threads <= 1 {
        return seqs.iter().map(|s| detect_cycles(s, bounds)).collect();
    }
    let chunk = n.div_ceil(threads);
    let joined: Vec<std::thread::Result<Vec<CycleSet>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = seqs
            .chunks(chunk)
            .map(|piece| {
                scope.spawn(move || {
                    piece.iter().map(|s| detect_cycles(s, bounds)).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut out = Vec::with_capacity(n);
    let mut panicked = None;
    for result in joined {
        match result {
            Ok(sets) => out.extend(sets),
            Err(payload) => {
                if panicked.is_none() {
                    panicked = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }
    out
}

/// Whether the sequence has at least one cycle within `bounds`.
pub fn has_any_cycle(seq: &BitSeq, bounds: CycleBounds) -> bool {
    !detect_cycles(seq, bounds).is_empty()
}

/// Filters a cycle set down to its *minimal* cycles: those that are not a
/// multiple of another cycle in the set.
///
/// If a sequence has cycle `(l, o)`, it automatically has every in-bounds
/// multiple `(k·l, o + j·l)`; reporting those adds no information. The
/// result is sorted by `(length, offset)`.
pub fn minimal_cycles(set: &CycleSet) -> Vec<Cycle> {
    let all = set.to_vec();
    all.iter()
        .copied()
        .filter(|&c| !all.iter().any(|&other| other != c && c.is_multiple_of(other)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect(s: &str, l_min: u32, l_max: u32) -> Vec<Cycle> {
        let seq: BitSeq = s.parse().unwrap();
        detect_cycles(&seq, CycleBounds::make(l_min, l_max)).to_vec()
    }

    fn detect_minimal(s: &str, l_min: u32, l_max: u32) -> Vec<Cycle> {
        let seq: BitSeq = s.parse().unwrap();
        minimal_cycles(&detect_cycles(&seq, CycleBounds::make(l_min, l_max)))
    }

    /// Brute-force reference: check each cycle against the definition.
    fn brute_force(s: &str, l_min: u32, l_max: u32) -> Vec<Cycle> {
        let seq: BitSeq = s.parse().unwrap();
        CycleBounds::make(l_min, l_max)
            .all_cycles()
            .filter(|c| c.units(seq.len()).all(|u| seq.get(u)))
            .collect()
    }

    #[test]
    fn alternating_sequence() {
        assert_eq!(detect("010101", 1, 3), vec![Cycle::make(2, 1)]);
        assert_eq!(detect_minimal("010101", 1, 3), vec![Cycle::make(2, 1)]);
    }

    #[test]
    fn all_ones_has_every_cycle() {
        let got = detect("1111", 1, 2);
        assert_eq!(got, vec![Cycle::make(1, 0), Cycle::make(2, 0), Cycle::make(2, 1)]);
        // Minimal filter keeps only (1,0): the others are its multiples.
        assert_eq!(detect_minimal("1111", 1, 2), vec![Cycle::make(1, 0)]);
    }

    #[test]
    fn all_zeros_has_no_cycles() {
        assert!(detect("0000", 1, 3).is_empty());
        assert!(!has_any_cycle(&"0000".parse().unwrap(), CycleBounds::make(1, 3)));
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        for s in [
            "1",
            "0",
            "10",
            "01",
            "110110",
            "101101",
            "111000111000",
            "100100100100",
            "011011011011",
            "1001001",
            "1110111",
        ] {
            for (lo, hi) in [(1u32, 4u32), (2, 6), (1, 8)] {
                let hi = hi.min(s.len() as u32).max(lo);
                assert_eq!(
                    detect(s, lo, hi),
                    brute_force(s, lo, hi),
                    "sequence {s} bounds [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn minimal_filter_removes_multiples_only() {
        // "10101010": cycles (2,0), (4,0), (4,2) — both length-4 cycles are
        // multiples of (2,0).
        assert_eq!(detect_minimal("10101010", 2, 4), vec![Cycle::make(2, 0)]);

        // "110110": cycles (3,0),(3,1) with bounds [3,3]; neither is a
        // multiple of the other.
        assert_eq!(
            detect_minimal("110110", 3, 3),
            vec![Cycle::make(3, 0), Cycle::make(3, 1)]
        );
    }

    #[test]
    fn vacuous_cycles_survive_only_past_sequence_end() {
        // Length 6 cycle, offset 4, on a 4-long sequence: offset beyond the
        // sequence → vacuously true.
        let got = detect("0000", 6, 6);
        assert_eq!(got, vec![Cycle::make(6, 4), Cycle::make(6, 5)]);
    }

    #[test]
    fn batch_matches_per_sequence_detection() {
        let bounds = CycleBounds::make(1, 4);
        let seqs: Vec<BitSeq> = [
            "10101010", "11111111", "00000000", "110110", "1001001", "1110111",
            "01010101",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let expected: Vec<Vec<Cycle>> =
            seqs.iter().map(|s| detect_cycles(s, bounds).to_vec()).collect();
        for threads in [0, 1, 2, 3, 16] {
            let got: Vec<Vec<Cycle>> = detect_cycles_batch(&seqs, bounds, threads)
                .iter()
                .map(CycleSet::to_vec)
                .collect();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn batch_of_empty_input_is_empty() {
        assert!(detect_cycles_batch(&[], CycleBounds::make(1, 3), 0).is_empty());
    }

    #[test]
    fn minimal_of_empty_set_is_empty() {
        let set = CycleSet::empty(CycleBounds::make(1, 3));
        assert!(minimal_cycles(&set).is_empty());
    }
}
