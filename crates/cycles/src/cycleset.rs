use std::fmt;

use crate::{BitSeq, Cycle, CycleBounds};

const WORD_BITS: usize = 64;

/// A set of candidate cycles within fixed [`CycleBounds`].
///
/// This is the data structure at the heart of the INTERLEAVED algorithm of
/// the ICDE'98 paper. Each itemset under consideration owns a `CycleSet`
/// holding the cycles it could still have; the set only ever shrinks as
/// evidence (a unit where the itemset is not large) arrives. The three
/// optimization techniques of the paper map onto three operations:
///
/// * **cycle elimination** → [`CycleSet::eliminate`]: after observing a
///   miss at `unit`, every candidate `(l, unit mod l)` is removed;
/// * **cycle skipping** → [`CycleSet::includes_unit`]: support counting in
///   a unit can be skipped when the unit lies on no remaining candidate;
/// * **cycle pruning** → [`CycleSet::intersect_with`]: a `k`-itemset's
///   candidates start from the intersection of its `(k−1)`-subsets' sets.
///
/// Internally the set stores one offset-bitmap per length, so all three
/// operations cost `O(l_max − l_min + 1)` word operations.
#[derive(Clone, PartialEq, Eq)]
pub struct CycleSet {
    bounds: CycleBounds,
    /// `offsets[l - l_min]` is the bitmap of live offsets for length `l`.
    offsets: Vec<Vec<u64>>,
    /// Number of live cycles, maintained incrementally.
    count: usize,
}

impl CycleSet {
    /// The empty set over the given bounds.
    pub fn empty(bounds: CycleBounds) -> Self {
        let offsets = bounds
            .lengths()
            .map(|l| vec![0u64; (l as usize).div_ceil(WORD_BITS)])
            .collect();
        CycleSet { bounds, offsets, count: 0 }
    }

    /// The full set: every `(l, o)` with `l` within bounds.
    pub fn full(bounds: CycleBounds) -> Self {
        let mut offsets =
            Vec::with_capacity((bounds.l_max() - bounds.l_min() + 1) as usize);
        for l in bounds.lengths() {
            let l = l as usize;
            let mut words = vec![u64::MAX; l.div_ceil(WORD_BITS)];
            let rem = l % WORD_BITS;
            if rem != 0 {
                *words.last_mut().expect("l >= 1") &= (1u64 << rem) - 1;
            }
            offsets.push(words);
        }
        CycleSet { bounds, offsets, count: bounds.num_cycles() }
    }

    /// The bounds this set ranges over.
    #[inline]
    pub fn bounds(&self) -> CycleBounds {
        self.bounds
    }

    /// Number of live cycles.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no candidate cycles remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    fn row(&self, length: u32) -> &[u64] {
        &self.offsets[(length - self.bounds.l_min()) as usize]
    }

    /// Membership test.
    pub fn contains(&self, c: Cycle) -> bool {
        if !self.bounds.contains(c) {
            return false;
        }
        let o = c.offset() as usize;
        self.row(c.length())[o / WORD_BITS] >> (o % WORD_BITS) & 1 == 1
    }

    /// Inserts a cycle; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if the cycle's length is outside the bounds.
    pub fn insert(&mut self, c: Cycle) -> bool {
        assert!(self.bounds.contains(c), "cycle {c} outside bounds {:?}", self.bounds);
        let l_min = self.bounds.l_min();
        let o = c.offset() as usize;
        let word = &mut self.offsets[(c.length() - l_min) as usize][o / WORD_BITS];
        let mask = 1u64 << (o % WORD_BITS);
        if *word & mask == 0 {
            *word |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Removes a cycle; returns `true` if it was present.
    pub fn remove(&mut self, c: Cycle) -> bool {
        if !self.bounds.contains(c) {
            return false;
        }
        let l_min = self.bounds.l_min();
        let o = c.offset() as usize;
        let word = &mut self.offsets[(c.length() - l_min) as usize][o / WORD_BITS];
        let mask = 1u64 << (o % WORD_BITS);
        if *word & mask != 0 {
            *word &= !mask;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// **Cycle elimination**: removes every candidate `(l, unit mod l)`.
    /// Returns the number of cycles removed.
    ///
    /// Calling this for each unit where a sequence is 0, starting from the
    /// full set, performs exact cycle detection.
    pub fn eliminate(&mut self, unit: usize) -> usize {
        let mut removed = 0;
        for l in self.bounds.lengths() {
            let o = unit % l as usize;
            let word =
                &mut self.offsets[(l - self.bounds.l_min()) as usize][o / WORD_BITS];
            let mask = 1u64 << (o % WORD_BITS);
            if *word & mask != 0 {
                *word &= !mask;
                removed += 1;
            }
        }
        self.count -= removed;
        removed
    }

    /// **Cycle skipping** test: whether `unit` lies on any live candidate
    /// cycle. Units failing this test need no support counting.
    pub fn includes_unit(&self, unit: usize) -> bool {
        for l in self.bounds.lengths() {
            let o = unit % l as usize;
            if self.row(l)[o / WORD_BITS] >> (o % WORD_BITS) & 1 == 1 {
                return true;
            }
        }
        false
    }

    /// **Cycle pruning** primitive: intersects `self` with `other` in
    /// place.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different bounds.
    pub fn intersect_with(&mut self, other: &CycleSet) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot intersect cycle sets with different bounds"
        );
        let mut count = 0;
        for (mine, theirs) in self.offsets.iter_mut().zip(&other.offsets) {
            for (w, &ow) in mine.iter_mut().zip(theirs) {
                *w &= ow;
                count += w.count_ones() as usize;
            }
        }
        self.count = count;
    }

    /// Returns the intersection of two sets.
    pub fn intersection(&self, other: &CycleSet) -> CycleSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Unions `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different bounds.
    pub fn union_with(&mut self, other: &CycleSet) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot union cycle sets with different bounds"
        );
        let mut count = 0;
        for (mine, theirs) in self.offsets.iter_mut().zip(&other.offsets) {
            for (w, &ow) in mine.iter_mut().zip(theirs) {
                *w |= ow;
                count += w.count_ones() as usize;
            }
        }
        self.count = count;
    }

    /// Returns the union of two sets.
    pub fn union(&self, other: &CycleSet) -> CycleSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Whether every cycle of `self` is in `other`.
    pub fn is_subset_of(&self, other: &CycleSet) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        self.offsets
            .iter()
            .zip(&other.offsets)
            .all(|(a, b)| a.iter().zip(b).all(|(&x, &y)| x & !y == 0))
    }

    /// Iterates live cycles in `(length, offset)` order.
    pub fn iter(&self) -> impl Iterator<Item = Cycle> + '_ {
        self.bounds.lengths().flat_map(move |l| {
            let row = self.row(l);
            (0..l as usize)
                .filter(move |&o| row[o / WORD_BITS] >> (o % WORD_BITS) & 1 == 1)
                .map(move |o| Cycle::make(l, o as u32))
        })
    }

    /// Collects live cycles into a vector.
    pub fn to_vec(&self) -> Vec<Cycle> {
        self.iter().collect()
    }

    /// The units in `0..num_units` lying on at least one live cycle, as a
    /// bit sequence. Used to plan which units need support counting.
    pub fn covered_units(&self, num_units: usize) -> BitSeq {
        let mut seq = BitSeq::zeros(num_units);
        for c in self.iter() {
            for u in c.units(num_units) {
                seq.set(u, true);
            }
        }
        seq
    }
}

impl fmt::Debug for CycleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CycleSet{:?}{{", self.bounds)?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> CycleBounds {
        CycleBounds::make(1, 4)
    }

    #[test]
    fn full_and_empty() {
        let full = CycleSet::full(bounds());
        assert_eq!(full.len(), 10); // 1+2+3+4
        assert!(!full.is_empty());
        let empty = CycleSet::empty(bounds());
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert!(empty.is_subset_of(&full));
        assert!(!full.is_subset_of(&empty));
    }

    #[test]
    fn full_has_exactly_the_bound_cycles() {
        let full = CycleSet::full(CycleBounds::make(2, 3));
        assert_eq!(
            full.to_vec(),
            vec![
                Cycle::make(2, 0),
                Cycle::make(2, 1),
                Cycle::make(3, 0),
                Cycle::make(3, 1),
                Cycle::make(3, 2),
            ]
        );
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = CycleSet::empty(bounds());
        let c = Cycle::make(3, 2);
        assert!(!s.contains(c));
        assert!(s.insert(c));
        assert!(!s.insert(c));
        assert!(s.contains(c));
        assert_eq!(s.len(), 1);
        assert!(s.remove(c));
        assert!(!s.remove(c));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside bounds")]
    fn insert_out_of_bounds_panics() {
        let mut s = CycleSet::empty(bounds());
        s.insert(Cycle::make(9, 0));
    }

    #[test]
    fn eliminate_removes_matching_offsets() {
        let mut s = CycleSet::full(bounds());
        // Miss at unit 5 kills (1,0), (2,1), (3,2), (4,1).
        let removed = s.eliminate(5);
        assert_eq!(removed, 4);
        assert_eq!(s.len(), 6);
        assert!(!s.contains(Cycle::make(1, 0)));
        assert!(!s.contains(Cycle::make(2, 1)));
        assert!(!s.contains(Cycle::make(3, 2)));
        assert!(!s.contains(Cycle::make(4, 1)));
        assert!(s.contains(Cycle::make(2, 0)));
        // Eliminating the same unit again removes nothing.
        assert_eq!(s.eliminate(5), 0);
    }

    #[test]
    fn includes_unit_matches_live_cycles() {
        let mut s = CycleSet::empty(bounds());
        s.insert(Cycle::make(4, 3));
        assert!(s.includes_unit(3));
        assert!(s.includes_unit(7));
        assert!(!s.includes_unit(0));
        assert!(!s.includes_unit(4));
        s.insert(Cycle::make(2, 0));
        assert!(s.includes_unit(0));
        assert!(s.includes_unit(4));
        assert!(!s.includes_unit(1));
    }

    #[test]
    fn intersection_behaves_like_set_intersection() {
        let mut a = CycleSet::empty(bounds());
        let mut b = CycleSet::empty(bounds());
        a.insert(Cycle::make(2, 0));
        a.insert(Cycle::make(3, 1));
        a.insert(Cycle::make(4, 2));
        b.insert(Cycle::make(3, 1));
        b.insert(Cycle::make(4, 2));
        b.insert(Cycle::make(4, 3));
        let i = a.intersection(&b);
        assert_eq!(i.to_vec(), vec![Cycle::make(3, 1), Cycle::make(4, 2)]);
        assert_eq!(i.len(), 2);
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn intersect_different_bounds_panics() {
        let mut a = CycleSet::empty(CycleBounds::make(1, 3));
        let b = CycleSet::empty(CycleBounds::make(1, 4));
        a.intersect_with(&b);
    }

    #[test]
    fn covered_units() {
        let mut s = CycleSet::empty(bounds());
        s.insert(Cycle::make(3, 1));
        s.insert(Cycle::make(4, 0));
        let covered = s.covered_units(9);
        // Units of (3,1) in 0..9: 1,4,7; units of (4,0): 0,4,8.
        assert_eq!(covered.iter_ones().collect::<Vec<_>>(), vec![0, 1, 4, 7, 8]);
        assert_eq!(covered.to_string(), "110010011");
    }

    #[test]
    fn detection_via_elimination() {
        // Sequence 101010... has cycle (2,0) and its in-bound multiples.
        let mut s = CycleSet::full(bounds());
        let seq: BitSeq = "10101010".parse().unwrap();
        for z in seq.iter_zeros() {
            s.eliminate(z);
        }
        let got = s.to_vec();
        assert_eq!(got, vec![Cycle::make(2, 0), Cycle::make(4, 0), Cycle::make(4, 2)]);
    }

    #[test]
    fn large_lengths_cross_word_boundary() {
        // Lengths > 64 exercise multi-word offset bitmaps.
        let b = CycleBounds::make(70, 70);
        let mut s = CycleSet::full(b);
        assert_eq!(s.len(), 70);
        assert!(s.contains(Cycle::make(70, 69)));
        s.eliminate(69);
        assert!(!s.contains(Cycle::make(70, 69)));
        assert_eq!(s.len(), 69);
        assert!(s.includes_unit(68));
    }
}
