use std::fmt;

use crate::Cycle;

/// User-supplied bounds `l_min ≤ l ≤ l_max` on interesting cycle lengths.
///
/// The ICDE'98 paper restricts attention to cycles whose length lies within
/// these bounds: too-short cycles are trivial (a length-1 cycle just means
/// "the rule always holds"), while cycles longer than the observation
/// window can never be confirmed. `CycleBounds` is carried by every
/// [`CycleSet`](crate::CycleSet) and by the mining configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CycleBounds {
    l_min: u32,
    l_max: u32,
}

impl CycleBounds {
    /// Creates bounds, requiring `1 ≤ l_min ≤ l_max`.
    pub fn new(l_min: u32, l_max: u32) -> Option<Self> {
        if l_min >= 1 && l_min <= l_max {
            Some(CycleBounds { l_min, l_max })
        } else {
            None
        }
    }

    /// Creates bounds without returning an `Option`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ l_min ≤ l_max`.
    pub fn make(l_min: u32, l_max: u32) -> Self {
        Self::new(l_min, l_max)
            .unwrap_or_else(|| panic!("invalid cycle bounds [{l_min},{l_max}]"))
    }

    /// Minimum cycle length.
    #[inline]
    pub const fn l_min(self) -> u32 {
        self.l_min
    }

    /// Maximum cycle length.
    #[inline]
    pub const fn l_max(self) -> u32 {
        self.l_max
    }

    /// Whether a length lies within the bounds.
    #[inline]
    pub fn contains_length(self, l: u32) -> bool {
        l >= self.l_min && l <= self.l_max
    }

    /// Whether a cycle's length lies within the bounds.
    #[inline]
    pub fn contains(self, c: Cycle) -> bool {
        self.contains_length(c.length())
    }

    /// Iterates the lengths `l_min..=l_max`.
    pub fn lengths(self) -> impl Iterator<Item = u32> {
        self.l_min..=self.l_max
    }

    /// Total number of `(l, o)` cycles within the bounds:
    /// `Σ_{l=l_min}^{l_max} l`.
    pub fn num_cycles(self) -> usize {
        let (a, b) = (self.l_min as usize, self.l_max as usize);
        (a + b) * (b - a + 1) / 2
    }

    /// Enumerates every cycle within the bounds, in `(length, offset)`
    /// lexicographic order.
    pub fn all_cycles(self) -> impl Iterator<Item = Cycle> {
        self.lengths().flat_map(|l| (0..l).map(move |o| Cycle::make(l, o)))
    }
}

impl fmt::Debug for CycleBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.l_min, self.l_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(CycleBounds::new(0, 3).is_none());
        assert!(CycleBounds::new(4, 3).is_none());
        assert!(CycleBounds::new(1, 1).is_some());
        assert!(CycleBounds::new(2, 8).is_some());
    }

    #[test]
    fn num_cycles_counts_offsets() {
        assert_eq!(CycleBounds::make(1, 1).num_cycles(), 1);
        assert_eq!(CycleBounds::make(1, 3).num_cycles(), 6); // 1+2+3
        assert_eq!(CycleBounds::make(2, 4).num_cycles(), 9); // 2+3+4
        for (a, b) in [(1u32, 5u32), (3, 7), (2, 2)] {
            let bounds = CycleBounds::make(a, b);
            assert_eq!(bounds.num_cycles(), bounds.all_cycles().count());
        }
    }

    #[test]
    fn all_cycles_order_and_validity() {
        let cycles: Vec<Cycle> = CycleBounds::make(2, 3).all_cycles().collect();
        assert_eq!(
            cycles,
            vec![
                Cycle::make(2, 0),
                Cycle::make(2, 1),
                Cycle::make(3, 0),
                Cycle::make(3, 1),
                Cycle::make(3, 2),
            ]
        );
    }

    #[test]
    fn containment() {
        let b = CycleBounds::make(2, 4);
        assert!(!b.contains_length(1));
        assert!(b.contains_length(2));
        assert!(b.contains_length(4));
        assert!(!b.contains_length(5));
        assert!(b.contains(Cycle::make(3, 1)));
        assert!(!b.contains(Cycle::make(5, 0)));
    }
}
