use std::fmt;
use std::str::FromStr;

const WORD_BITS: usize = 64;

/// A fixed-length binary sequence, bit-packed into `u64` words.
///
/// In cyclic association rule mining a `BitSeq` records, per time unit,
/// whether a rule held (or an itemset was large) in that unit. Sequences
/// are created all-zero and bits are switched on as units are mined.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSeq {
    len: usize,
    words: Vec<u64>,
}

impl BitSeq {
    /// Creates an all-zero sequence of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitSeq { len, words: vec![0; len.div_ceil(WORD_BITS)] }
    }

    /// Creates an all-one sequence of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut s = BitSeq { len, words: vec![u64::MAX; len.div_ceil(WORD_BITS)] };
        s.clear_tail();
        s
    }

    /// Builds a sequence from booleans.
    pub fn from_bits<I>(bits: I) -> Self
    where
        I: IntoIterator<Item = bool>,
    {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut s = BitSeq::zeros(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                s.set(i, true);
            }
        }
        s
    }

    /// Sequence length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of 1-bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of 1-bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + bit)
                }
            })
        })
    }

    /// Iterates the indices of 0-bits in increasing order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.get(i))
    }

    /// Iterates all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Whether every bit is 1.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Whether every bit is 0.
    pub fn none(&self) -> bool {
        self.count_ones() == 0
    }

    fn clear_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSeq({self})")
    }
}

impl fmt::Display for BitSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

/// Parses a `0`/`1` string, e.g. `"0110"`.
impl FromStr for BitSeq {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut seq = BitSeq::zeros(s.len());
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '0' => {}
                '1' => seq.set(i, true),
                other => return Err(format!("invalid bit character `{other}`")),
            }
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitSeq::zeros(70);
        assert_eq!(z.len(), 70);
        assert!(z.none());
        assert!(!z.all());
        let o = BitSeq::ones(70);
        assert!(o.all());
        assert_eq!(o.count_ones(), 70);
    }

    #[test]
    fn ones_clears_tail_bits() {
        // The last word must not contain stray bits past `len`.
        let o = BitSeq::ones(65);
        assert_eq!(o.count_ones(), 65);
        let o = BitSeq::ones(64);
        assert_eq!(o.count_ones(), 64);
    }

    #[test]
    fn set_get_across_word_boundary() {
        let mut s = BitSeq::zeros(130);
        for &i in &[0usize, 63, 64, 127, 128, 129] {
            assert!(!s.get(i));
            s.set(i, true);
            assert!(s.get(i));
        }
        assert_eq!(s.count_ones(), 6);
        s.set(64, false);
        assert!(!s.get(64));
        assert_eq!(s.count_ones(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitSeq::zeros(3).get(3);
    }

    #[test]
    fn iter_ones_and_zeros() {
        let s: BitSeq = "01101".parse().unwrap();
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![1, 2, 4]);
        assert_eq!(s.iter_zeros().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![false, true, true, false, true]);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for text in ["", "0", "1", "0110", "1010101010101"] {
            let s: BitSeq = text.parse().unwrap();
            assert_eq!(s.to_string(), text);
        }
        assert!("01x".parse::<BitSeq>().is_err());
    }

    #[test]
    fn from_bits_matches_parse() {
        let a = BitSeq::from_bits([true, false, true]);
        let b: BitSeq = "101".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_ones_spans_many_words() {
        let mut s = BitSeq::zeros(200);
        let positions = [0usize, 1, 63, 64, 65, 128, 199];
        for &p in &positions {
            s.set(p, true);
        }
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), positions.to_vec());
    }
}
