//! Periodicity analysis of binary sequences.
//!
//! Exact cycle detection answers "does `(l, o)` hold perfectly?"; an
//! analyst exploring data usually first asks "*which* periodicities are
//! in here at all?". This module provides the two standard exploratory
//! views:
//!
//! * [`spectrum`] — per-`(l, o)` hit rates (the fraction of on-cycle
//!   units that are 1), with the best offset per length summarised by
//!   [`PeriodStrength`]; and
//! * [`autocorrelation`] — the normalised match rate of the sequence
//!   with itself at each lag, whose peaks reveal dominant periods
//!   without fixing an offset.
//!
//! Both are pure sequence computations; they feed the `car detect
//! --spectrum` CLI view and the report module of `car-core`.

use crate::{BitSeq, Cycle, CycleBounds};

/// The strength of one period length: its best offset and hit rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodStrength {
    /// The period length `l`.
    pub length: u32,
    /// The offset with the highest hit rate (smallest offset wins ties).
    pub best_offset: u32,
    /// Hit rate of the best offset in `[0, 1]`.
    pub hit_rate: f64,
    /// On-cycle units of the best offset within the sequence.
    pub occurrences: u32,
}

impl PeriodStrength {
    /// The best cycle of this length.
    pub fn cycle(&self) -> Cycle {
        Cycle::make(self.length, self.best_offset)
    }

    /// Whether the best offset is a perfect (exact) cycle.
    pub fn is_exact(&self) -> bool {
        self.occurrences > 0 && (self.hit_rate - 1.0).abs() < f64::EPSILON
    }
}

/// Computes the per-length periodicity spectrum of `seq` within
/// `bounds`: for each length, the offset whose on-cycle units hit most
/// often. Lengths whose every offset has zero occurrences (possible only
/// when `l > seq.len()`) report a hit rate of 0 at offset 0.
///
/// Runs in `O(seq.len() · (l_max − l_min + 1))`.
pub fn spectrum(seq: &BitSeq, bounds: CycleBounds) -> Vec<PeriodStrength> {
    let n = seq.len();
    let mut out = Vec::with_capacity((bounds.l_max() - bounds.l_min() + 1) as usize);
    for l in bounds.lengths() {
        // hits[o], occurrences[o] per offset.
        let l_us = l as usize;
        let mut hits = vec![0u32; l_us];
        let mut occ = vec![0u32; l_us];
        for i in 0..n {
            occ[i % l_us] += 1;
            if seq.get(i) {
                hits[i % l_us] += 1;
            }
        }
        let mut best = PeriodStrength {
            length: l,
            best_offset: 0,
            hit_rate: 0.0,
            occurrences: occ[0],
        };
        for o in 0..l_us {
            if occ[o] == 0 {
                continue;
            }
            let rate = f64::from(hits[o]) / f64::from(occ[o]);
            if rate > best.hit_rate + f64::EPSILON {
                best = PeriodStrength {
                    length: l,
                    best_offset: o as u32,
                    hit_rate: rate,
                    occurrences: occ[o],
                };
            }
        }
        out.push(best);
    }
    out
}

/// The binary autocorrelation of `seq` at lags `1..=max_lag`: entry
/// `lag - 1` is the fraction of positions `i < n - lag` where
/// `seq[i] == seq[i + lag]`. A strongly periodic sequence peaks at
/// multiples of its period.
///
/// Returns an empty vector when `seq.len() < 2`. `max_lag` is clamped to
/// `seq.len() - 1`.
pub fn autocorrelation(seq: &BitSeq, max_lag: usize) -> Vec<f64> {
    let n = seq.len();
    if n < 2 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    let mut out = Vec::with_capacity(max_lag);
    for lag in 1..=max_lag {
        let matches = (0..n - lag).filter(|&i| seq.get(i) == seq.get(i + lag)).count();
        out.push(matches as f64 / (n - lag) as f64);
    }
    out
}

/// The lag in `1..=max_lag` with the highest autocorrelation (smallest
/// lag wins ties); `None` when the sequence is too short.
pub fn dominant_period(seq: &BitSeq, max_lag: usize) -> Option<usize> {
    let ac = autocorrelation(seq, max_lag);
    if ac.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, &v) in ac.iter().enumerate() {
        if v > ac[best] + f64::EPSILON {
            best = i;
        }
    }
    Some(best + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> BitSeq {
        s.parse().unwrap()
    }

    #[test]
    fn spectrum_finds_perfect_cycle() {
        let s = seq("100100100100");
        let spec = spectrum(&s, CycleBounds::make(2, 4));
        let l3 = spec.iter().find(|p| p.length == 3).unwrap();
        assert_eq!(l3.best_offset, 0);
        assert!(l3.is_exact());
        assert_eq!(l3.cycle(), Cycle::make(3, 0));
        assert_eq!(l3.occurrences, 4);
        // Length 2 is at best 50%.
        let l2 = spec.iter().find(|p| p.length == 2).unwrap();
        assert!(l2.hit_rate < 0.6);
        assert!(!l2.is_exact());
    }

    #[test]
    fn spectrum_matches_exact_detection() {
        use crate::detect_cycles;
        for s_str in ["0101010101", "110110110", "111111", "010010010"] {
            let s = seq(s_str);
            let bounds = CycleBounds::make(1, 4);
            let exact = detect_cycles(&s, bounds);
            for p in spectrum(&s, bounds) {
                assert_eq!(
                    p.is_exact(),
                    exact.iter().any(|c| c.length() == p.length),
                    "sequence {s_str} length {}",
                    p.length
                );
            }
        }
    }

    #[test]
    fn spectrum_hit_rates_are_exact_fractions() {
        // "1010 1000": (2,0) hits 3 of 4.
        let s = seq("10101000");
        let spec = spectrum(&s, CycleBounds::make(2, 2));
        assert_eq!(spec.len(), 1);
        assert_eq!(spec[0].best_offset, 0);
        assert!((spec[0].hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(spec[0].occurrences, 4);
    }

    #[test]
    fn spectrum_prefers_smallest_offset_on_ties() {
        let s = seq("1111");
        let spec = spectrum(&s, CycleBounds::make(2, 2));
        assert_eq!(spec[0].best_offset, 0);
        assert!(spec[0].is_exact());
    }

    #[test]
    fn autocorrelation_peaks_at_period() {
        let s = seq("101010101010");
        let ac = autocorrelation(&s, 6);
        // Lag 2 matches perfectly, lag 1 not at all.
        assert!((ac[1] - 1.0).abs() < 1e-12);
        assert!(ac[0] < 0.01);
        assert_eq!(dominant_period(&s, 6), Some(2));

        let s3 = seq("100100100100");
        assert_eq!(dominant_period(&s3, 6), Some(3));
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert!(autocorrelation(&seq("1"), 5).is_empty());
        assert!(autocorrelation(&BitSeq::zeros(0), 5).is_empty());
        assert_eq!(dominant_period(&seq("1"), 5), None);
        // Clamped max lag.
        assert_eq!(autocorrelation(&seq("1010"), 100).len(), 3);
    }

    #[test]
    fn constant_sequences_correlate_everywhere() {
        let ones = seq("111111");
        for v in autocorrelation(&ones, 5) {
            assert!((v - 1.0).abs() < 1e-12);
        }
        // Dominant period of a constant sequence is the smallest lag.
        assert_eq!(dominant_period(&ones, 5), Some(1));
    }
}
