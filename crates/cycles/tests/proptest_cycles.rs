//! Property-based tests: cycle detection against a brute-force oracle and
//! `CycleSet` against a naive set model.

use std::collections::BTreeSet;

use car_cycles::{
    detect_approx_cycles, detect_cycles, minimal_cycles, BitSeq, Cycle, CycleBounds,
    CycleSet,
};
use proptest::prelude::*;

fn arb_seq() -> impl Strategy<Value = BitSeq> {
    proptest::collection::vec(any::<bool>(), 1..80).prop_map(BitSeq::from_bits)
}

fn arb_bounds() -> impl Strategy<Value = CycleBounds> {
    (1u32..6, 0u32..8).prop_map(|(lo, extra)| CycleBounds::make(lo, lo + extra))
}

/// Definition-level oracle for cycle detection.
fn oracle(seq: &BitSeq, bounds: CycleBounds) -> Vec<Cycle> {
    bounds.all_cycles().filter(|c| c.units(seq.len()).all(|u| seq.get(u))).collect()
}

proptest! {
    #[test]
    fn detection_matches_oracle(seq in arb_seq(), bounds in arb_bounds()) {
        let got = detect_cycles(&seq, bounds).to_vec();
        prop_assert_eq!(got, oracle(&seq, bounds));
    }

    #[test]
    fn minimal_cycles_cover_all_detected(seq in arb_seq(), bounds in arb_bounds()) {
        let set = detect_cycles(&seq, bounds);
        let minimal = minimal_cycles(&set);
        // Every minimal cycle is detected; every detected cycle is a
        // multiple of some minimal cycle.
        for c in &minimal {
            prop_assert!(set.contains(*c));
        }
        for c in set.iter() {
            prop_assert!(
                minimal.iter().any(|&m| c.is_multiple_of(m)),
                "detected {} not covered by any minimal cycle", c
            );
        }
        // No minimal cycle is a multiple of another.
        for &a in &minimal {
            for &b in &minimal {
                if a != b {
                    prop_assert!(!a.is_multiple_of(b));
                }
            }
        }
    }

    #[test]
    fn approx_with_zero_budget_equals_exact_on_nonvacuous(
        seq in arb_seq(),
        bounds in arb_bounds(),
    ) {
        let exact: BTreeSet<Cycle> = detect_cycles(&seq, bounds)
            .iter()
            .filter(|c| c.num_units(seq.len()) > 0)
            .collect();
        let approx: BTreeSet<Cycle> = detect_approx_cycles(&seq, bounds, 0)
            .iter()
            .map(|a| a.cycle)
            .collect();
        prop_assert_eq!(approx, exact);
    }

    #[test]
    fn approx_miss_counts_match_definition(
        seq in arb_seq(),
        bounds in arb_bounds(),
        budget in 0u32..10,
    ) {
        for a in detect_approx_cycles(&seq, bounds, budget) {
            let misses = a.cycle.units(seq.len()).filter(|&u| !seq.get(u)).count() as u32;
            prop_assert_eq!(a.misses, misses);
            prop_assert!(a.misses <= budget);
            prop_assert_eq!(a.occurrences as usize, a.cycle.num_units(seq.len()));
        }
    }

    #[test]
    fn cycleset_tracks_model_under_random_ops(
        bounds in arb_bounds(),
        ops in proptest::collection::vec((0u8..4, 0usize..64), 0..60),
    ) {
        let mut set = CycleSet::full(bounds);
        let mut model: BTreeSet<Cycle> = bounds.all_cycles().collect();
        for (op, arg) in ops {
            match op {
                0 => {
                    // eliminate(unit)
                    set.eliminate(arg);
                    model.retain(|c| !c.includes_unit(arg));
                }
                1 => {
                    // remove a specific cycle derived from arg
                    let cycles: Vec<Cycle> = bounds.all_cycles().collect();
                    let c = cycles[arg % cycles.len()];
                    let was = set.remove(c);
                    prop_assert_eq!(was, model.remove(&c));
                }
                2 => {
                    // re-insert a cycle
                    let cycles: Vec<Cycle> = bounds.all_cycles().collect();
                    let c = cycles[arg % cycles.len()];
                    let added = set.insert(c);
                    prop_assert_eq!(added, model.insert(c));
                }
                _ => {
                    // includes_unit query
                    let expect = model.iter().any(|c| c.includes_unit(arg));
                    prop_assert_eq!(set.includes_unit(arg), expect);
                }
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
        }
        let collected: BTreeSet<Cycle> = set.iter().collect();
        prop_assert_eq!(collected, model);
    }

    #[test]
    fn intersection_matches_model(
        bounds in arb_bounds(),
        kill_a in proptest::collection::vec(0usize..40, 0..12),
        kill_b in proptest::collection::vec(0usize..40, 0..12),
    ) {
        let mut a = CycleSet::full(bounds);
        let mut b = CycleSet::full(bounds);
        for u in kill_a { a.eliminate(u); }
        for u in kill_b { b.eliminate(u); }
        let inter = a.intersection(&b);
        let model: BTreeSet<Cycle> = a
            .iter()
            .collect::<BTreeSet<_>>()
            .intersection(&b.iter().collect())
            .copied()
            .collect();
        prop_assert_eq!(inter.iter().collect::<BTreeSet<_>>(), model);
        prop_assert!(inter.is_subset_of(&a));
        prop_assert!(inter.is_subset_of(&b));
    }

    #[test]
    fn union_matches_model(
        bounds in arb_bounds(),
        kill_a in proptest::collection::vec(0usize..40, 0..12),
        kill_b in proptest::collection::vec(0usize..40, 0..12),
    ) {
        let mut a = CycleSet::full(bounds);
        let mut b = CycleSet::full(bounds);
        for u in kill_a { a.eliminate(u); }
        for u in kill_b { b.eliminate(u); }
        let u = a.union(&b);
        let model: BTreeSet<Cycle> = a
            .iter()
            .collect::<BTreeSet<_>>()
            .union(&b.iter().collect())
            .copied()
            .collect();
        prop_assert_eq!(u.iter().collect::<BTreeSet<_>>(), model);
        prop_assert_eq!(u.len(), u.iter().count());
        prop_assert!(a.is_subset_of(&u));
        prop_assert!(b.is_subset_of(&u));
        // De Morgan-ish sanity: intersection ⊆ union.
        prop_assert!(a.intersection(&b).is_subset_of(&u));
    }

    #[test]
    fn covered_units_matches_cycles(bounds in arb_bounds(), kills in proptest::collection::vec(0usize..30, 0..10), n in 1usize..50) {
        let mut set = CycleSet::full(bounds);
        for u in kills { set.eliminate(u); }
        let covered = set.covered_units(n);
        for i in 0..n {
            prop_assert_eq!(covered.get(i), set.includes_unit(i), "unit {}", i);
        }
    }

    #[test]
    fn elimination_scan_is_idempotent(seq in arb_seq(), bounds in arb_bounds()) {
        // Running detection twice over the same zeros changes nothing.
        let mut set = detect_cycles(&seq, bounds);
        let snapshot = set.to_vec();
        for z in seq.iter_zeros() {
            set.eliminate(z);
        }
        prop_assert_eq!(set.to_vec(), snapshot);
    }
}
