//! Durability integration tests: a real daemon with a data directory,
//! restarted (and attacked) between runs.
//!
//! The load-bearing property extends the serving guarantee across
//! process lifetimes: after a restart, `GET /v1/rules` still equals
//! batch-mining the acknowledged window — whether the window came back
//! from a snapshot, a WAL replay, or both, and even when the WAL tail
//! was torn by a crash.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use car_core::sequential::mine_sequential;
use car_core::{CyclicRule, MiningConfig};
use car_datagen::{generate_cyclic, CyclicConfig};
use car_itemset::{ItemSet, SegmentedDb};
use car_serve::json::Json;
use car_serve::persist::fault::{append_garbage, FaultPlan};
use car_serve::persist::wal::{encode_record_into, list_segments};
use car_serve::{serve, Client, PersistConfig, ServerConfig, ServerHandle};

const WINDOW: usize = 8;

fn mining_config(min_confidence: f64) -> MiningConfig {
    MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(min_confidence)
        .cycle_bounds(2, 4)
        .build()
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "car-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_server(dir: &Path, tweak: impl FnOnce(&mut PersistConfig)) -> ServerHandle {
    let mut persist = PersistConfig::new(dir);
    tweak(&mut persist);
    serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 3,
        window: WINDOW,
        queue_capacity: 32,
        mining: mining_config(0.6),
        io_timeout: Duration::from_secs(5),
        persist: Some(persist),
        ..ServerConfig::default()
    })
    .expect("server boots on an ephemeral port")
}

/// Polls `/v1/health` until the daemon reports ready (recovery done),
/// returning the final health document.
fn wait_ready(client: &mut Client) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.request("GET", "/v1/health", None).expect("health");
        assert_eq!(resp.status, 200);
        let doc = Json::parse(&resp.body_text()).unwrap();
        if doc.get("ready").and_then(Json::as_bool) == Some(true) {
            return doc;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn unit_json(unit: &[ItemSet]) -> Json {
    let transactions = Json::Array(
        unit.iter()
            .map(|tx| Json::Array(tx.iter().map(|item| Json::from(item.id())).collect()))
            .collect(),
    );
    Json::Object(vec![("transactions".to_string(), transactions)])
}

fn unit_body(unit: &[ItemSet]) -> Vec<u8> {
    unit_json(unit).render().into_bytes()
}

fn served_rules(doc: &Json) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    doc.get("rules")
        .and_then(Json::as_array)
        .expect("rules array")
        .iter()
        .map(|r| {
            let name = r.get("rule").and_then(Json::as_str).unwrap().to_string();
            let cycles = r
                .get("cycles")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|c| {
                    (
                        c.get("length").and_then(Json::as_u64).unwrap(),
                        c.get("offset").and_then(Json::as_u64).unwrap(),
                    )
                })
                .collect();
            (name, cycles)
        })
        .collect()
}

fn batch_rules(rules: &[CyclicRule]) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    rules
        .iter()
        .map(|r| {
            (
                r.rule.to_string(),
                r.cycles
                    .iter()
                    .map(|c| (u64::from(c.length()), u64::from(c.offset())))
                    .collect(),
            )
        })
        .collect()
}

fn fetch_rules(client: &mut Client) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    let resp = client.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    served_rules(&Json::parse(&resp.body_text()).unwrap())
}

/// Batch-mines units `range` of `db` the way the daemon's window sees
/// them.
fn mine_window(db: &SegmentedDb, range: std::ops::Range<usize>) -> Vec<CyclicRule> {
    let units: Vec<Vec<ItemSet>> = range.map(|i| db.unit(i).to_vec()).collect();
    let window_db = SegmentedDb::from_unit_itemsets(units);
    mine_sequential(&window_db, &mining_config(0.6)).unwrap().rules
}

fn test_data(units: usize) -> car_datagen::GeneratedData {
    generate_cyclic(
        &CyclicConfig::default()
            .with_units(units)
            .with_transactions_per_unit(60)
            .with_num_cyclic_patterns(4)
            .with_cycle_length_range(2, 4),
        42,
    )
}

#[test]
fn rules_survive_a_graceful_restart() {
    let dir = temp_dir("graceful");
    let data = test_data(12);

    let handle = durable_server(&dir, |_| {});
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    wait_ready(&mut client);
    for i in 0..data.db.num_units() {
        let resp = client
            .request("POST", "/v1/units?wait=true", Some(&unit_body(data.db.unit(i))))
            .expect("ingest");
        assert_eq!(resp.status, 200, "unit {i}: {}", resp.body_text());
    }
    let before = fetch_rules(&mut client);
    assert!(!before.is_empty(), "test data should produce cyclic rules");
    handle.trigger_shutdown();
    handle.wait();

    // Same data directory, fresh process state.
    let handle = durable_server(&dir, |_| {});
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    let health = wait_ready(&mut client);

    // Graceful shutdown left a snapshot of the full window, so recovery
    // is snapshot-only: nothing replayed, nothing truncated.
    let recovery = health.get("recovery").expect("recovery block in health");
    assert_eq!(recovery.get("complete").and_then(Json::as_bool), Some(true));
    assert_eq!(
        recovery.get("snapshot_units").and_then(Json::as_u64),
        Some(WINDOW as u64)
    );
    assert_eq!(recovery.get("replayed_units").and_then(Json::as_u64), Some(0));
    assert_eq!(recovery.get("truncated_records").and_then(Json::as_u64), Some(0));
    assert_eq!(health.get("units_retained").and_then(Json::as_u64), Some(WINDOW as u64));

    let after = fetch_rules(&mut client);
    assert_eq!(after, before, "restart must not change the served rules");
    let expected =
        mine_window(&data.db, data.db.num_units() - WINDOW..data.db.num_units());
    assert_eq!(after, batch_rules(&expected));

    // Sequence numbers continue across the restart.
    let resp = client
        .request("POST", "/v1/units?wait=true", Some(&unit_body(data.db.unit(0))))
        .unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("unit_seq").and_then(Json::as_u64), Some(13));

    handle.trigger_shutdown();
    handle.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_is_truncated_counted_and_survived() {
    let dir = temp_dir("torn");
    let data = test_data(13);

    let handle = durable_server(&dir, |_| {});
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    wait_ready(&mut client);
    for i in 0..12 {
        let resp = client
            .request("POST", "/v1/units?wait=true", Some(&unit_body(data.db.unit(i))))
            .expect("ingest");
        assert_eq!(resp.status, 200, "unit {i}: {}", resp.body_text());
    }
    handle.trigger_shutdown();
    handle.wait();

    // Simulate a crash after the shutdown snapshot: one more unit made
    // it into the WAL (seq 13 = unit index 12), and then the crash tore
    // the record after it.
    let newest = list_segments(&dir).unwrap().pop().expect("a live segment");
    let mut tail = Vec::new();
    encode_record_into(13, data.db.unit(12), &mut tail);
    let mut file = std::fs::OpenOptions::new().append(true).open(&newest.path).unwrap();
    file.write_all(&tail).unwrap();
    file.sync_all().unwrap();
    drop(file);
    append_garbage(&newest.path, 24).unwrap();

    let handle = durable_server(&dir, |_| {});
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    let health = wait_ready(&mut client);
    let recovery = health.get("recovery").expect("recovery block in health");
    assert_eq!(
        recovery.get("snapshot_units").and_then(Json::as_u64),
        Some(WINDOW as u64)
    );
    assert_eq!(
        recovery.get("replayed_units").and_then(Json::as_u64),
        Some(1),
        "the intact tail record replays"
    );
    assert_eq!(
        recovery.get("truncated_records").and_then(Json::as_u64),
        Some(1),
        "the torn tail is truncated, not trusted"
    );

    // The window is now units 5..=12 (snapshot tail + the replayed one).
    let expected = mine_window(&data.db, 5..13);
    assert_eq!(fetch_rules(&mut client), batch_rules(&expected));

    let resp = client.request("GET", "/metrics", None).unwrap();
    let text = resp.body_text();
    assert!(text.contains("car_recovery_truncated_records 1"), "{text}");

    // A second restart sees a clean (already truncated) log.
    handle.trigger_shutdown();
    handle.wait();
    let handle = durable_server(&dir, |_| {});
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    let health = wait_ready(&mut client);
    let recovery = health.get("recovery").expect("recovery block");
    assert_eq!(recovery.get("truncated_records").and_then(Json::as_u64), Some(0));
    assert_eq!(fetch_rules(&mut client), batch_rules(&expected));
    handle.trigger_shutdown();
    handle.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsync_failure_refuses_acknowledgements() {
    let dir = temp_dir("fsync");
    let plan = FaultPlan::new();
    let handle = durable_server(&dir, |p| p.faults = Some(plan.clone()));
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    wait_ready(&mut client);

    let unit = vec![ItemSet::from_ids([1u32, 2]); 3];
    let resp = client.request("POST", "/v1/units", Some(&unit_body(&unit))).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body_text());

    // From here every fsync fails: the daemon must stop acknowledging.
    plan.fail_fsync_from(2);
    let resp = client.request("POST", "/v1/units", Some(&unit_body(&unit))).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_text());
    assert!(resp.body_text().contains("durability failure"), "{}", resp.body_text());

    // The failure is sticky — a batch is refused per-unit with the
    // persistence label, not silently dropped.
    let batch =
        Json::Array(vec![unit_json(&unit), unit_json(&unit)]).render().into_bytes();
    let resp = client.request("POST", "/v1/units", Some(&batch)).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("accepted").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("rejected").and_then(Json::as_u64), Some(2));
    let first = doc.get("units").and_then(Json::as_array).unwrap().first().unwrap();
    assert_eq!(first.get("error").and_then(Json::as_str), Some("persistence_failure"));

    // Reads still serve: the daemon degrades, it does not die.
    let resp = client.request("GET", "/v1/health", None).unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.request("GET", "/metrics", None).unwrap();
    assert!(resp.body_text().contains("car_wal_errors_total"), "errors are visible");

    handle.trigger_shutdown();
    handle.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_ingest_applies_like_sequential_ingest_and_survives_restart() {
    let dir = temp_dir("batch");
    let data = test_data(12);

    let handle = durable_server(&dir, |_| {});
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    wait_ready(&mut client);

    let body = Json::Array(
        (0..data.db.num_units()).map(|i| unit_json(data.db.unit(i))).collect(),
    )
    .render()
    .into_bytes();
    let resp = client.request("POST", "/v1/units?wait=true", Some(&body)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("accepted").and_then(Json::as_u64), Some(12));
    assert_eq!(doc.get("rejected").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("applied").and_then(Json::as_bool), Some(true));
    let per_unit = doc.get("units").and_then(Json::as_array).unwrap();
    let seqs: Vec<u64> = per_unit
        .iter()
        .map(|u| u.get("unit_seq").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(seqs, (1..=12).collect::<Vec<u64>>(), "batch seqs are consecutive");

    // One WAL append for the whole batch: a single fsync under `always`.
    let resp = client.request("GET", "/metrics", None).unwrap();
    assert!(resp.body_text().contains("car_wal_fsyncs_total 1"), "{}", resp.body_text());

    let expected =
        mine_window(&data.db, data.db.num_units() - WINDOW..data.db.num_units());
    assert_eq!(fetch_rules(&mut client), batch_rules(&expected));
    handle.trigger_shutdown();
    handle.wait();

    // The batch-written WAL recovers like any other.
    let handle = durable_server(&dir, |_| {});
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    wait_ready(&mut client);
    assert_eq!(fetch_rules(&mut client), batch_rules(&expected));
    handle.trigger_shutdown();
    handle.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}
