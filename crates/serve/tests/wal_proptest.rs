//! Property tests for the WAL wire format.
//!
//! Recovery trusts `parse_records` to draw the line between "what
//! happened" and "what a crash left behind", so the properties here
//! pin down that line exactly: any full-frame prefix of a log parses
//! to exactly those records, any cut inside a frame is flagged as
//! corruption at a record boundary, and no single-bit flip ever
//! produces a phantom record.

use car_itemset::ItemSet;
use car_serve::persist::wal::{
    decode_payload, encode_payload, encode_record_into, parse_records,
};
use proptest::prelude::*;

fn arb_unit() -> impl Strategy<Value = Vec<ItemSet>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..10_000, 0..6).prop_map(ItemSet::from_ids),
        0..6,
    )
}

/// Encodes `units` as consecutive records (seqs starting at `first_seq`)
/// and returns the buffer plus the frame boundaries, starting with 0.
fn encode_log(units: &[Vec<ItemSet>], first_seq: u64) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::new();
    let mut boundaries = vec![0usize];
    for (i, unit) in units.iter().enumerate() {
        encode_record_into(first_seq + i as u64, unit, &mut buf);
        boundaries.push(buf.len());
    }
    (buf, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn payload_round_trips_and_rejects_every_truncation(
        seq in 0u64..1_000_000_000,
        unit in arb_unit(),
    ) {
        let payload = encode_payload(seq, &unit);
        prop_assert_eq!(decode_payload(&payload), Some((seq, unit)));
        // Every strict prefix is malformed: the decoder must never
        // hallucinate a unit out of a partially-written payload.
        for cut in 0..payload.len() {
            prop_assert_eq!(decode_payload(&payload[..cut]), None, "cut {}", cut);
        }
        // So is trailing garbage.
        let mut long = payload.clone();
        long.push(0);
        prop_assert_eq!(decode_payload(&long), None);
    }

    #[test]
    fn parse_keeps_exactly_the_fully_framed_prefix(
        units in proptest::collection::vec(arb_unit(), 1..6),
        cut_fraction in 0.0f64..=1.0,
    ) {
        let (buf, boundaries) = encode_log(&units, 100);
        // Truncate at an arbitrary byte — a crash does not respect
        // record boundaries.
        let cut = (((buf.len() as f64) * cut_fraction).round() as usize).min(buf.len());
        let parsed = parse_records(&buf[..cut]);

        // Exactly the records whose full frames fit survive…
        let fit = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(parsed.records.len(), fit);
        // …the valid prefix ends on the last surviving frame boundary…
        prop_assert_eq!(parsed.valid_len, boundaries[fit] as u64);
        // …and corruption is reported iff the cut fell inside a frame.
        let at_boundary = boundaries.contains(&cut);
        prop_assert_eq!(parsed.corruption.is_some(), !at_boundary);

        for (i, (seq, unit)) in parsed.records.iter().enumerate() {
            prop_assert_eq!(*seq, 100 + i as u64);
            prop_assert_eq!(unit, &units[i]);
        }
    }

    #[test]
    fn single_bit_flip_never_yields_phantom_records(
        units in proptest::collection::vec(arb_unit(), 1..5),
        byte_sel in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let (buf, boundaries) = encode_log(&units, 1);
        let offset = byte_sel % buf.len();
        let mut flipped = buf.clone();
        flipped[offset] ^= 1 << bit;

        // The record containing the flipped byte.
        let damaged = boundaries.iter().filter(|&&b| b > 0 && b <= offset).count();
        let parsed = parse_records(&flipped);

        // Records before the damaged one are untouched and parse
        // intact; the checksum (or framing) stops the scan at the
        // damaged record, and nothing after it is trusted.
        prop_assert_eq!(parsed.records.len(), damaged);
        prop_assert!(parsed.corruption.is_some());
        prop_assert_eq!(parsed.valid_len, boundaries[damaged] as u64);
        for (i, (seq, unit)) in parsed.records.iter().enumerate() {
            prop_assert_eq!(*seq, 1 + i as u64);
            prop_assert_eq!(unit, &units[i]);
        }
    }
}
