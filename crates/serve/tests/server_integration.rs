//! End-to-end tests: a real daemon on an ephemeral port, driven over
//! real sockets, checked against batch mining.
//!
//! The load-bearing property is the serving guarantee: after ingesting a
//! stream of units, `GET /v1/rules` returns exactly the cyclic rules
//! that batch-mining the retained window produces — the daemon is a
//! faithful online view of the paper's SEQUENTIAL algorithm.

use std::collections::BTreeSet;
use std::time::Duration;

use car_core::sequential::mine_sequential;
use car_core::{CyclicRule, MiningConfig};
use car_datagen::{generate_cyclic, CyclicConfig};
use car_itemset::{ItemSet, SegmentedDb};
use car_serve::json::Json;
use car_serve::{serve, Client, ServerConfig};

const WINDOW: usize = 8;

fn mining_config(min_confidence: f64) -> MiningConfig {
    MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(min_confidence)
        .cycle_bounds(2, 4)
        .build()
        .unwrap()
}

fn test_server(queue_capacity: usize) -> car_serve::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 3,
        window: WINDOW,
        queue_capacity,
        mining: mining_config(0.6),
        io_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("server boots on an ephemeral port")
}

/// Renders one time unit as the ingest wire format.
fn unit_body(unit: &[ItemSet]) -> Vec<u8> {
    let transactions = Json::Array(
        unit.iter()
            .map(|tx| Json::Array(tx.iter().map(|item| Json::from(item.id())).collect()))
            .collect(),
    );
    Json::Object(vec![("transactions".to_string(), transactions)]).render().into_bytes()
}

/// Canonicalises a rules payload (server JSON) for comparison.
fn served_rules(doc: &Json) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    doc.get("rules")
        .and_then(Json::as_array)
        .expect("rules array")
        .iter()
        .map(|r| {
            let name = r.get("rule").and_then(Json::as_str).unwrap().to_string();
            let cycles = r
                .get("cycles")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|c| {
                    (
                        c.get("length").and_then(Json::as_u64).unwrap(),
                        c.get("offset").and_then(Json::as_u64).unwrap(),
                    )
                })
                .collect();
            (name, cycles)
        })
        .collect()
}

/// Canonicalises batch-mined rules the same way.
fn batch_rules(rules: &[CyclicRule]) -> BTreeSet<(String, Vec<(u64, u64)>)> {
    rules
        .iter()
        .map(|r| {
            (
                r.rule.to_string(),
                r.cycles
                    .iter()
                    .map(|c| (u64::from(c.length()), u64::from(c.offset())))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn served_rules_match_batch_mining_the_retained_window() {
    let data = generate_cyclic(
        &CyclicConfig::default()
            .with_units(12)
            .with_transactions_per_unit(60)
            .with_num_cyclic_patterns(4)
            .with_cycle_length_range(2, 4),
        42,
    );
    let handle = test_server(16);
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();

    for i in 0..data.db.num_units() {
        let body = unit_body(data.db.unit(i));
        let resp =
            client.request("POST", "/v1/units?wait=true", Some(&body)).expect("ingest");
        assert_eq!(resp.status, 200, "unit {i}: {}", resp.body_text());
    }

    // The daemon retains the last WINDOW units; batch-mine exactly those.
    let start = data.db.num_units() - WINDOW;
    let retained: Vec<Vec<ItemSet>> =
        (start..data.db.num_units()).map(|i| data.db.unit(i).to_vec()).collect();
    let window_db = SegmentedDb::from_unit_itemsets(retained);

    let resp = client.request("GET", "/v1/rules", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(doc.get("units_retained").and_then(Json::as_u64), Some(WINDOW as u64));
    let batch = mine_sequential(&window_db, &mining_config(0.6)).unwrap();
    assert_eq!(
        served_rules(&doc),
        batch_rules(&batch.rules),
        "server must agree with batch mining the retained window"
    );
    assert!(!batch.rules.is_empty(), "test data should produce cyclic rules");

    // Query-time confidence escalation must equal batch mining at the
    // stricter threshold.
    let resp = client.request("GET", "/v1/rules?min_confidence=0.8", None).unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.body_text()).unwrap();
    let strict = mine_sequential(&window_db, &mining_config(0.8)).unwrap();
    assert_eq!(served_rules(&doc), batch_rules(&strict.rules));

    // Cycle-length filtering: every returned cycle has the asked length,
    // and the rule set is exactly the batch rules restricted to it.
    let resp = client.request("GET", "/v1/rules?length=2", None).unwrap();
    let doc = Json::parse(&resp.body_text()).unwrap();
    let expected: BTreeSet<_> = batch_rules(&batch.rules)
        .into_iter()
        .filter_map(|(name, cycles)| {
            let kept: Vec<_> = cycles.into_iter().filter(|&(l, _)| l == 2).collect();
            (!kept.is_empty()).then_some((name, kept))
        })
        .collect();
    assert_eq!(served_rules(&doc), expected);

    // Metrics reflect the ingest.
    let resp = client.request("GET", "/metrics", None).unwrap();
    let text = resp.body_text();
    assert!(text.contains("car_units_ingested_total 12"), "{text}");
    assert!(text.contains(&format!("car_window_units_retained {WINDOW}")), "{text}");
    assert!(text.contains("car_window_evictions_total 4"), "{text}");
    assert!(text.contains(&format!("car_rules_current {}", batch.rules.len())), "{text}");

    handle.trigger_shutdown();
    let stats = handle.wait();
    assert_eq!(stats.units_ingested, 12);
    assert_eq!(stats.units_retained, WINDOW);
    assert_eq!(stats.evictions, 4);
}

#[test]
fn full_queue_applies_backpressure_then_recovers() {
    let handle = test_server(2);
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    let body = unit_body(&[ItemSet::from_ids([1u32, 2]), ItemSet::from_ids([1u32, 2])]);

    // Hold the miner write lock so the applier stalls and the queue
    // actually fills.
    {
        let state = handle.state().clone();
        let guard = state.miner.write().unwrap();
        let mut saw_503 = false;
        for _ in 0..4 {
            let resp = client.request("POST", "/v1/units", Some(&body)).unwrap();
            match resp.status {
                202 => {}
                503 => saw_503 = true,
                other => panic!("unexpected status {other}"),
            }
        }
        assert!(saw_503, "queue of capacity 2 must shed the 4th unit");
        drop(guard);
    }

    // Once the applier drains, ingest works again.
    let resp = client.request("POST", "/v1/units?wait=true", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    let resp = client.request("GET", "/metrics", None).unwrap();
    assert!(resp.body_text().contains("car_ingest_rejected_total"));
    handle.trigger_shutdown();
    handle.wait();
}

#[test]
fn malformed_requests_get_clean_4xx_not_hangs() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let handle = test_server(4);
    let addr = handle.addr;

    let exchange = |raw: &[u8]| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        stream.write_all(raw).unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    };

    let resp = exchange(b"NONSENSE\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    let resp = exchange(b"POST /v1/units HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

    let resp = exchange(b"POST /v1/units HTTP/1.1\r\ncontent-length: 7\r\n\r\nnot json");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    let resp = exchange(b"GET /v1/rules HTTP/2\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 505"), "{resp}");

    // The daemon is still healthy afterwards.
    let mut client = Client::connect(&addr.to_string()).unwrap();
    let resp = client.request("GET", "/v1/health", None).unwrap();
    assert_eq!(resp.status, 200);

    handle.trigger_shutdown();
    handle.wait();
}

#[test]
fn hostile_bodies_are_rejected_and_the_worker_survives() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let handle = test_server(4);
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();

    // A body nested beyond the JSON parser's depth limit must come back
    // as a clean 400 — the recursive parser bails at MAX_DEPTH instead
    // of overflowing the worker's stack.
    let deep = format!("{{\"transactions\": {}{}}}", "[".repeat(300), "]".repeat(300));
    let resp = client.request("POST", "/v1/units", Some(deep.as_bytes())).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body_text());

    // Keep-alive means the next request rides the same connection, and a
    // connection is pinned to one pool worker — a 200 here proves that
    // worker survived the hostile body.
    let resp = client.request("GET", "/v1/health", None).unwrap();
    assert_eq!(resp.status, 200);

    // Malformed JSON: clean 400, worker still alive.
    let resp = client.request("POST", "/v1/units", Some(b"{not json")).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body_text());
    let resp = client.request("GET", "/v1/health", None).unwrap();
    assert_eq!(resp.status, 200);

    // Oversized body: 413 rejected from the declared length alone (the
    // parse error closes that connection by design).
    let mut stream = TcpStream::connect(handle.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream
        .write_all(b"POST /v1/units HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 413"), "{out}");

    // The daemon as a whole still serves; nothing leaked or wedged.
    let resp = client.request("GET", "/v1/health", None).unwrap();
    assert_eq!(resp.status, 200);

    handle.trigger_shutdown();
    handle.wait();
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let handle = test_server(8);
    let mut client = Client::connect(&handle.addr.to_string()).unwrap();
    let body = unit_body(&vec![ItemSet::from_ids([5u32, 6]); 3]);
    for _ in 0..3 {
        let resp = client.request("POST", "/v1/units", Some(&body)).unwrap();
        assert_eq!(resp.status, 202);
    }
    let resp = client.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    let stats = handle.wait();
    // Everything accepted before shutdown is applied, never dropped.
    assert_eq!(stats.units_ingested, 3);
    assert_eq!(stats.units_retained, 3);
    assert_eq!(stats.requests, 4);
}
