//! Prometheus text-exposition conformance for `/metrics`.
//!
//! Scrapes a live daemon under load and checks the properties a real
//! Prometheus server relies on: each metric family is declared exactly
//! once, every sample belongs to a declared family and uses only the
//! sample shapes its type allows, every value parses, and counters are
//! monotone across consecutive scrapes.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use car_serve::json::Json;
use car_serve::{serve, Client, ServerConfig};

fn test_server() -> car_serve::ServerHandle {
    let mining = car_core::MiningConfig::builder()
        .min_support_fraction(0.2)
        .min_confidence(0.6)
        .cycle_bounds(2, 4)
        .build()
        .expect("valid mining config");
    serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        window: 8,
        queue_capacity: 32,
        mining,
        io_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("server boots on an ephemeral port")
}

/// One parsed exposition: family name → declared type, and full sample
/// key (name + labels) → value.
struct Exposition {
    types: BTreeMap<String, String>,
    samples: BTreeMap<String, f64>,
}

/// Parses the exposition text, failing the test on any malformed line,
/// duplicate declaration, or sample that does not fit its family's type.
fn parse_and_check(text: &str) -> Exposition {
    let mut helps = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a metric");
            assert!(helps.insert(name.to_string()), "duplicate HELP for {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a metric").to_string();
            let kind = parts.next().expect("TYPE declares a kind").to_string();
            assert!(
                ["counter", "gauge", "histogram", "summary"].contains(&kind.as_str()),
                "unknown metric type `{kind}` for {name}"
            );
            assert!(
                types.insert(name.clone(), kind).is_none(),
                "duplicate TYPE for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unrecognised comment line: {line}");

        // Sample: `name value` or `name{labels} value`.
        let (key, value_text) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("malformed sample: {line}"));
        let value: f64 =
            value_text.parse().unwrap_or_else(|_| panic!("unparseable value in: {line}"));
        let base = key.split('{').next().expect("sample has a name");

        // Resolve the owning family and check the sample shape fits the
        // declared type.
        let family = family_candidates(base)
            .find(|candidate| types.contains_key(candidate))
            .unwrap_or_else(|| panic!("sample `{base}` has no TYPE declaration"));
        let kind = types.get(&family).expect("family resolved above").as_str();
        let suffix = base.strip_prefix(family.as_str()).expect("family is a prefix");
        let allowed: &[&str] = match kind {
            "counter" | "gauge" => &[""],
            "histogram" => &["_bucket", "_sum", "_count"],
            "summary" => &["", "_sum", "_count"],
            _ => unreachable!(),
        };
        assert!(
            allowed.contains(&suffix),
            "sample `{base}` (suffix `{suffix}`) not allowed for {kind} `{family}`"
        );
        if kind == "counter" {
            assert!(value >= 0.0, "negative counter in: {line}");
        }
        assert!(
            samples.insert(key.to_string(), value).is_none(),
            "duplicate sample key: {key}"
        );
    }

    // Every declared family has a matching HELP (and vice versa).
    let type_names: BTreeSet<String> = types.keys().cloned().collect();
    assert_eq!(helps, type_names, "HELP and TYPE declarations must pair up");
    Exposition { types, samples }
}

/// Family names a sample base name could belong to: itself, then itself
/// minus each cumulative-sample suffix.
fn family_candidates(base: &str) -> impl Iterator<Item = String> + '_ {
    std::iter::once(base.to_string()).chain(
        ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(move |s| base.strip_suffix(s).map(str::to_string)),
    )
}

/// The family a sample key belongs to, resolved against declared types.
fn family_of<'a>(key: &str, types: &'a BTreeMap<String, String>) -> (&'a str, &'a str) {
    let base = key.split('{').next().expect("sample has a name");
    for candidate in family_candidates(base) {
        if let Some((name, kind)) = types.get_key_value(&candidate) {
            return (name.as_str(), kind.as_str());
        }
    }
    panic!("sample `{key}` has no family");
}

fn scrape(client: &mut Client) -> String {
    let resp = client.request("GET", "/metrics", None).expect("scrape /metrics");
    assert_eq!(resp.status, 200);
    resp.body_text()
}

fn drive_load(client: &mut Client, addr: &str, units: std::ops::Range<u64>) {
    for seq in units {
        let tx = Json::Array(vec![
            Json::Array(vec![Json::from(1u64), Json::from(2u64)]),
            Json::Array(vec![Json::from(3u64)]),
        ]);
        let body =
            Json::Object(vec![("transactions".to_string(), tx)]).render().into_bytes();
        let resp = client
            .request("POST", "/v1/units?wait=true", Some(&body))
            .expect("ingest unit");
        assert_eq!(resp.status, 200, "unit {seq}: {}", resp.body_text());
    }
    for path in ["/v1/health", "/v1/rules", "/v1/debug/profile", "/v1/debug/events"] {
        let resp = client.request("GET", path, None).expect("query");
        assert_eq!(resp.status, 200, "{path}: {}", resp.body_text());
    }
    // One malformed request, so the parse-error path shows up in the
    // request counters too (satellite S1).
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"garbage\r\n\r\n").expect("write garbage");
    let mut reply = String::new();
    let _ = raw.read_to_string(&mut reply);
    assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply}");
}

#[test]
fn metrics_exposition_is_conformant_and_counters_are_monotonic() {
    let handle = test_server();
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr).expect("client connects");

    drive_load(&mut client, &addr, 0..6);
    let first = parse_and_check(&scrape(&mut client));
    drive_load(&mut client, &addr, 6..12);
    let second = parse_and_check(&scrape(&mut client));

    assert_eq!(first.types, second.types, "family declarations must be stable");

    // Counters (and histogram/summary cumulative samples) never move
    // backwards between scrapes.
    for (key, &v1) in &first.samples {
        let (family, kind) = family_of(key, &first.types);
        if kind == "gauge" {
            continue;
        }
        let v2 = *second
            .samples
            .get(key)
            .unwrap_or_else(|| panic!("{kind} sample `{key}` vanished"));
        assert!(
            v2 >= v1,
            "{kind} `{family}` sample `{key}` went backwards: {v1} -> {v2}"
        );
    }

    // The load must actually be visible: requests counted (including the
    // malformed one under the catch-all route), units ingested, and the
    // paper's mining counter families present.
    let served: f64 = second
        .samples
        .iter()
        .filter(|(k, _)| k.starts_with("car_http_requests_total"))
        .map(|(_, v)| *v)
        .sum();
    assert!(served >= 20.0, "expected the driven load in request totals: {served}");
    assert!(second.samples.get("car_http_parse_errors_total") > Some(&0.0));
    assert!(
        second.samples.get("car_http_requests_total{route=\"other\",status=\"4xx\"}")
            > Some(&0.0),
        "parse failures must appear under the catch-all route"
    );
    assert!(second.samples.get("car_units_ingested_total") >= Some(&12.0));
    for family in [
        "car_mine_candidates_pruned_total",
        "car_mine_unit_counts_skipped_total",
        "car_mine_cycles_eliminated_total",
        "car_span_duration_seconds",
    ] {
        assert!(second.types.contains_key(family), "missing family {family}");
    }

    handle.trigger_shutdown();
    handle.wait();
}
