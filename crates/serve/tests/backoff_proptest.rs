//! Property tests for the retry backoff schedule.
//!
//! Both `RetryingClient` and the shard router's fan-out legs sleep
//! through `backoff_delay` between attempts; if its bounds drift, every
//! resilience timeout in the system is tuned against the wrong curve.
//! The properties: the delay always lands in `[base, base + base/2)`
//! where `base = min(50ms << (attempt-1), 2s)`, the base is monotone in
//! the attempt number (pre-cap, the *whole* jittered range is), and a
//! fixed seed replays the exact same schedule.

use std::time::Duration;

use car_serve::client::backoff_delay;
use proptest::prelude::*;

/// The deterministic base for an attempt: 50ms doubling, capped at 2s.
fn base_ms(attempt: u32) -> u64 {
    (50u64 << attempt.saturating_sub(1).min(6)).min(2_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn delay_stays_within_base_and_jitter_cap(
        attempt in 1u32..40,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let delay = backoff_delay(attempt, &mut state);
        let base = base_ms(attempt);
        let ms = u64::try_from(delay.as_millis()).unwrap_or(u64::MAX);
        prop_assert!(ms >= base, "attempt {attempt}: {ms}ms under base {base}ms");
        prop_assert!(
            ms < base + (base / 2).max(1),
            "attempt {attempt}: {ms}ms exceeds jittered cap for base {base}ms"
        );
        // Global ceiling: base caps at 2s, jitter at +50%.
        prop_assert!(delay < Duration::from_millis(3_000));
    }

    #[test]
    fn backoff_is_monotone_in_attempt(
        attempt in 1u32..12,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        // The base doubles until the 2s cap, and jitter is bounded by
        // base/2 — so below the cap even the *worst-case* jittered
        // delay of attempt N stays under the *best-case* delay of
        // attempt N+1, regardless of jitter state.
        prop_assert!(base_ms(attempt) <= base_ms(attempt + 1));
        let mut a = seed_a;
        let mut b = seed_b;
        let earlier = backoff_delay(attempt, &mut a);
        let later = backoff_delay(attempt + 1, &mut b);
        if base_ms(attempt + 1) < 2_000 {
            prop_assert!(
                earlier < later,
                "attempt {attempt}: {earlier:?} !< {later:?}"
            );
        } else {
            prop_assert!(later >= Duration::from_millis(base_ms(attempt + 1)));
        }
    }

    #[test]
    fn fixed_seed_replays_the_same_schedule(
        seed in any::<u64>(),
        attempts in 1u32..10,
    ) {
        let mut a = seed;
        let mut b = seed;
        for attempt in 1..=attempts {
            prop_assert_eq!(
                backoff_delay(attempt, &mut a),
                backoff_delay(attempt, &mut b)
            );
        }
        prop_assert_eq!(a, b);
    }
}
