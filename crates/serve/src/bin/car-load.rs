//! `car-load` — a load generator for the car-serve daemon.
//!
//! Drives a running daemon over real sockets with N concurrent
//! keep-alive connections and reports throughput and latency
//! percentiles:
//!
//! ```text
//! car-load --addr 127.0.0.1:7878 --connections 8 --requests 500 --mode mixed
//! ```
//!
//! Modes: `rules` (GET /v1/rules), `health` (GET /v1/health), `ingest`
//! (POST /v1/units with synthetic cyclic baskets), `mixed` (random mix,
//! ingest-light). Synthetic ingest bodies alternate two basket
//! populations so the daemon actually finds cyclic rules under load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use car_serve::{FailureClass, RetryPolicy, RetryingClient};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Options {
    addr: String,
    connections: usize,
    requests_per_connection: usize,
    mode: Mode,
    seed: u64,
    max_retries: u32,
    timeout: Duration,
    /// Print the trace ids of the N slowest answered requests at the
    /// summary (0 disables). Feed them to `car trace --id` or
    /// `/v1/debug/traces?trace_id=` to see where the time went.
    trace_slowest: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Rules,
    Health,
    Ingest,
    Mixed,
}

const USAGE: &str = "\
car-load — load generator for the car-serve daemon

USAGE:
    car-load --addr HOST:PORT [--connections N] [--requests N]
             [--mode rules|health|ingest|mixed] [--seed S]
             [--max-retries N] [--timeout-ms MS] [--trace-slowest N]

    --addr         daemon address (required)
    --connections  concurrent keep-alive connections   [default: 4]
    --requests     requests per connection             [default: 250]
    --mode         request mix                         [default: mixed]
    --seed         RNG seed for bodies and mixing      [default: 7]
    --max-retries  retries per request on 503 or a     [default: 4]
                   broken connection (exponential
                   backoff with jitter)
    --timeout-ms   per-request connect/read/write      [default: 5000]
                   timeout, in milliseconds
    --trace-slowest  print the trace ids of the N      [default: 0]
                   slowest answered requests (from the
                   x-car-trace-id response header) for
                   `car trace --id` / /v1/debug/traces
";

fn parse_options() -> Result<Options, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        addr: String::new(),
        connections: 4,
        requests_per_connection: 250,
        mode: Mode::Mixed,
        seed: 7,
        max_retries: 4,
        timeout: Duration::from_millis(5_000),
        trace_slowest: 0,
    };
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("missing value for {}", argv[i]))
        };
        match argv[i].as_str() {
            "--addr" => opts.addr = need_value(i)?.to_string(),
            "--connections" => {
                opts.connections = need_value(i)?
                    .parse()
                    .map_err(|_| "invalid --connections".to_string())?;
            }
            "--requests" => {
                opts.requests_per_connection = need_value(i)?
                    .parse()
                    .map_err(|_| "invalid --requests".to_string())?;
            }
            "--mode" => {
                opts.mode = match need_value(i)? {
                    "rules" => Mode::Rules,
                    "health" => Mode::Health,
                    "ingest" => Mode::Ingest,
                    "mixed" => Mode::Mixed,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--seed" => {
                opts.seed =
                    need_value(i)?.parse().map_err(|_| "invalid --seed".to_string())?;
            }
            "--max-retries" => {
                opts.max_retries = need_value(i)?
                    .parse()
                    .map_err(|_| "invalid --max-retries".to_string())?;
            }
            "--timeout-ms" => {
                let ms: u64 = need_value(i)?
                    .parse()
                    .map_err(|_| "invalid --timeout-ms".to_string())?;
                if ms == 0 {
                    return Err("--timeout-ms must be positive".to_string());
                }
                opts.timeout = Duration::from_millis(ms);
            }
            "--trace-slowest" => {
                opts.trace_slowest = need_value(i)?
                    .parse()
                    .map_err(|_| "invalid --trace-slowest".to_string())?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    if opts.addr.is_empty() {
        return Err("missing required --addr".to_string());
    }
    if opts.connections == 0 || opts.requests_per_connection == 0 {
        return Err("--connections and --requests must be positive".to_string());
    }
    Ok(opts)
}

/// A synthetic time unit: even units sell {1,2,3} baskets, odd units
/// {7,8}. Some noise items keep the body realistic.
fn unit_body(rng: &mut StdRng, unit_index: u64) -> Vec<u8> {
    let mut body = String::from("{\"transactions\": [");
    let baskets = 20 + rng.gen_range(0usize..10);
    for b in 0..baskets {
        if b > 0 {
            body.push(',');
        }
        if unit_index % 2 == 0 {
            body.push_str("[1,2,3");
        } else {
            body.push_str("[7,8");
        }
        let noise = rng.gen_range(0usize..3);
        for _ in 0..noise {
            body.push_str(&format!(",{}", rng.gen_range(100u32..200)));
        }
        body.push(']');
    }
    body.push_str("]}");
    body.into_bytes()
}

/// Final outcomes bucketed by failure class, so a chaos or overload run
/// reads as *what* went wrong — connections refused, deadlines blown,
/// server errors, or deliberate shedding — not a single error count.
#[derive(Default)]
struct FailureCounts {
    /// Connect/read/write deadline expired (transport).
    timeout: u64,
    /// TCP connection could not be established (transport).
    connect: u64,
    /// Other transport failure: reset mid-exchange, bad response.
    transport: u64,
    /// 5xx answer that was not a shed (includes 503s without
    /// `retry-after`).
    http_5xx: u64,
    /// Admission-gate shed: `503` carrying `retry-after`.
    shed: u64,
}

impl FailureCounts {
    fn total(&self) -> u64 {
        self.timeout + self.connect + self.transport + self.http_5xx + self.shed
    }

    fn merge(&mut self, other: &FailureCounts) {
        self.timeout += other.timeout;
        self.connect += other.connect;
        self.transport += other.transport;
        self.http_5xx += other.http_5xx;
        self.shed += other.shed;
    }
}

struct WorkerReport {
    latencies_us: Vec<u64>,
    failed_latencies_us: Vec<u64>,
    failures: FailureCounts,
    non_2xx: u64,
    retries: u64,
    /// `(latency, trace id)` for each answered request whose response
    /// carried an `x-car-trace-id` header — feeds `--trace-slowest`.
    traced: Vec<(u64, String)>,
}

fn run_worker(opts: &Options, worker: usize, ingest_counter: &AtomicU64) -> WorkerReport {
    let worker_seed = opts.seed ^ (worker as u64).wrapping_mul(0x9E37);
    let mut rng = StdRng::seed_from_u64(worker_seed);
    let mut report = WorkerReport {
        latencies_us: Vec::with_capacity(opts.requests_per_connection),
        failed_latencies_us: Vec::new(),
        failures: FailureCounts::default(),
        non_2xx: 0,
        retries: 0,
        traced: Vec::new(),
    };
    let policy = RetryPolicy { max_retries: opts.max_retries, timeout: opts.timeout };
    let mut client = RetryingClient::with_seed(&opts.addr, policy, worker_seed);
    for _ in 0..opts.requests_per_connection {
        let mode = match opts.mode {
            Mode::Mixed => match rng.gen_range(0u32..10) {
                0..=5 => Mode::Rules,
                6..=7 => Mode::Health,
                8 => Mode::Ingest,
                _ => Mode::Health,
            },
            fixed => fixed,
        };
        let started = Instant::now();
        let result = match mode {
            Mode::Rules => client.request("GET", "/v1/rules", None),
            Mode::Health => client.request("GET", "/v1/health", None),
            Mode::Ingest => {
                let n = ingest_counter.fetch_add(1, Ordering::Relaxed);
                let body = unit_body(&mut rng, n);
                client.request("POST", "/v1/units", Some(&body))
            }
            Mode::Mixed => unreachable!(),
        };
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        match result {
            Some(resp) if (200..300).contains(&resp.status) => {
                report.latencies_us.push(us);
                if opts.trace_slowest > 0 {
                    if let Some(id) = resp.header("x-car-trace-id") {
                        report.traced.push((us, id.to_string()));
                    }
                }
            }
            // A 503 carrying `retry-after` is the admission gate
            // shedding; other 5xx are server failures. Anything else
            // non-2xx (409 warming up, 4xx) is a daemon answer, not a
            // failure — it still measures a served round-trip.
            Some(resp) if resp.status == 503 && resp.header("retry-after").is_some() => {
                report.failed_latencies_us.push(us);
                report.failures.shed += 1;
            }
            Some(resp) if (500..600).contains(&resp.status) => {
                report.failed_latencies_us.push(us);
                report.failures.http_5xx += 1;
            }
            Some(_) => {
                report.latencies_us.push(us);
                report.non_2xx += 1;
            }
            None => {
                report.failed_latencies_us.push(us);
                match client.last_failure() {
                    Some(FailureClass::Timeout) => report.failures.timeout += 1,
                    Some(FailureClass::Connect) => report.failures.connect += 1,
                    Some(FailureClass::Transport) | None => {
                        report.failures.transport += 1;
                    }
                }
            }
        }
    }
    report.retries = client.retries();
    report
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Client-side latency histogram over the same bucket bounds as the
/// daemon's `car_http_request_duration_seconds` (the shared const in
/// car-obs), so the two distributions can be compared bucket for
/// bucket. Returns one count per bound plus the overflow bucket.
fn client_histogram(
    latencies_us: &[u64],
) -> [u64; car_obs::LATENCY_BUCKET_BOUNDS_US.len() + 1] {
    let mut counts = [0u64; car_obs::LATENCY_BUCKET_BOUNDS_US.len() + 1];
    for &us in latencies_us {
        let bucket = car_obs::LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(car_obs::LATENCY_BUCKET_BOUNDS_US.len());
        counts[bucket] += 1;
    }
    counts
}

fn print_histogram(label: &str, latencies_us: &[u64]) {
    let counts = client_histogram(latencies_us);
    println!("  {label} latency histogram (daemon-shared bucket bounds):");
    let mut cumulative = 0u64;
    for (count, bound) in counts.iter().zip(car_obs::LATENCY_BUCKET_BOUNDS_US.iter()) {
        cumulative += count;
        println!("    le {:>9}µs  {:>7}  (cumulative {cumulative})", bound, count);
    }
    let overflow = counts[car_obs::LATENCY_BUCKET_BOUNDS_US.len()];
    cumulative += overflow;
    println!("    le      +Inf   {overflow:>7}  (cumulative {cumulative})");
}

fn main() {
    let opts = match parse_options() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let ingest_counter = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.connections)
            .map(|w| {
                let opts = &opts;
                let counter = Arc::clone(&ingest_counter);
                scope.spawn(move || run_worker(opts, w, &counter))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> =
        reports.iter().flat_map(|r| r.latencies_us.iter().copied()).collect();
    latencies.sort_unstable();
    let mut failed_latencies: Vec<u64> =
        reports.iter().flat_map(|r| r.failed_latencies_us.iter().copied()).collect();
    failed_latencies.sort_unstable();
    let answered = latencies.len() as u64;
    let mut failures = FailureCounts::default();
    for report in &reports {
        failures.merge(&report.failures);
    }
    let non_2xx: u64 = reports.iter().map(|r| r.non_2xx).sum();
    let retries: u64 = reports.iter().map(|r| r.retries).sum();
    let throughput = answered as f64 / elapsed.as_secs_f64().max(1e-9);

    println!("car-load against {}", opts.addr);
    println!(
        "  connections: {}   requests/conn: {}",
        opts.connections, opts.requests_per_connection
    );
    println!(
        "  ok (2xx): {}   failed: {}   other answers: {non_2xx}   retries: {retries}",
        answered.saturating_sub(non_2xx),
        failures.total()
    );
    println!(
        "  failures: timeout {}   connect {}   transport {}   5xx {}   shed {}",
        failures.timeout,
        failures.connect,
        failures.transport,
        failures.http_5xx,
        failures.shed
    );
    println!(
        "  wall time: {:.3}s   throughput: {throughput:.0} req/s",
        elapsed.as_secs_f64()
    );
    if !latencies.is_empty() {
        println!(
            "  latency: p50 {}µs   p95 {}µs   p99 {}µs   max {}µs",
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.95),
            percentile(&latencies, 0.99),
            latencies[latencies.len() - 1]
        );
        print_histogram("answered", &latencies);
    }
    if !failed_latencies.is_empty() {
        print_histogram("failed", &failed_latencies);
    }
    if opts.trace_slowest > 0 {
        let mut traced: Vec<(u64, String)> =
            reports.into_iter().flat_map(|r| r.traced).collect();
        traced.sort_unstable_by(|a, b| b.0.cmp(&a.0));
        traced.truncate(opts.trace_slowest);
        if traced.is_empty() {
            println!("  no answered request carried an x-car-trace-id header");
        } else {
            println!(
                "  slowest traced requests (car trace --addr {} --id HEX):",
                opts.addr
            );
            for (us, id) in &traced {
                println!("    {us:>9}µs  {id}");
            }
        }
    }
    // Sheds and 5xx are daemon answers under stress — the run still
    // measured something. Transport-level failure means the run could
    // not talk to the daemon at all; that is the failing exit.
    if failures.timeout + failures.connect + failures.transport > 0 {
        std::process::exit(1);
    }
}
