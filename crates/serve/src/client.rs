//! A minimal blocking HTTP/1.1 client for driving the daemon.
//!
//! Used by the `car-load` load generator and the integration tests; not
//! a general-purpose client. Supports exactly what the daemon's server
//! side emits: status line, headers, `Content-Length` bodies, keep-alive.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response from `reader`.
///
/// # Errors
///
/// I/O failures and malformed status lines / headers surface as
/// [`io::Error`] with `InvalidData`.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status =
        status_line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).ok_or_else(
            || {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            },
        )?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad header {line:?}"))
        })?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse { status, headers, body })
}

/// A keep-alive connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (any `ToSocketAddrs` string form).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Connects to `addr` with `timeout` bounding the connection attempt
    /// and every subsequent read and write, so a stalled daemon (e.g.
    /// mid-recovery) surfaces as a timed-out request instead of a hang.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; `TimedOut` when the deadline
    /// passes, `AddrNotAvailable` when `addr` resolves to nothing.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> io::Result<Client> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("{addr} resolved to no addresses"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends a request and reads the response on the same connection.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures in either direction.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or(b"");
        write!(
            self.writer,
            "{method} {target} HTTP/1.1\r\nhost: car-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                    content-length: 2\r\n\r\n{}";
        let resp = read_response(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_text(), "{}");
    }

    #[test]
    fn rejects_garbage_status_line() {
        let raw = b"garbage\r\n\r\n";
        assert!(read_response(&mut Cursor::new(raw.to_vec())).is_err());
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let raw = b"HTTP/1.1 204 No Content\r\n\r\n";
        let resp = read_response(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(resp.status, 204);
        assert!(resp.body.is_empty());
    }
}
