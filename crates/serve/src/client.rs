//! A minimal blocking HTTP/1.1 client for driving the daemon.
//!
//! Used by the `car-load` load generator, the shard router, and the
//! integration tests; not a general-purpose client. Supports exactly
//! what the daemon's server side emits: status line, headers,
//! `Content-Length` bodies, keep-alive.
//!
//! [`RetryingClient`] layers the retry machinery every driver needs on
//! top of the raw [`Client`]: exponential backoff with jitter on
//! transport errors and `503`s, in-place reconnection when the
//! connection dies, and a per-request timeout. `car-load` and the
//! `car shard` router share this one implementation.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response from `reader`.
///
/// # Errors
///
/// I/O failures and malformed status lines / headers surface as
/// [`io::Error`] with `InvalidData`.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status =
        status_line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).ok_or_else(
            || {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            },
        )?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad header {line:?}"))
        })?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse { status, headers, body })
}

/// A keep-alive connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (any `ToSocketAddrs` string form).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Connects to `addr` with `timeout` bounding the connection attempt
    /// and every subsequent read and write, so a stalled daemon (e.g.
    /// mid-recovery) surfaces as a timed-out request instead of a hang.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; `TimedOut` when the deadline
    /// passes, `AddrNotAvailable` when `addr` resolves to nothing.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> io::Result<Client> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("{addr} resolved to no addresses"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Re-arms the socket read/write timeouts (used by deadline-capped
    /// retries on a reused connection).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_io_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.writer.set_read_timeout(Some(timeout))?;
        self.writer.set_write_timeout(Some(timeout))
    }

    /// Sends a request and reads the response on the same connection.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures in either direction.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.try_request(method, target, &[], body).map_err(|e| e.error)
    }

    /// Sends a request with extra headers, tracking whether any request
    /// byte may have reached the wire — the fact the idempotency-aware
    /// retry decision hinges on.
    ///
    /// # Errors
    ///
    /// A [`SendError`] carrying the transport error plus the `written`
    /// flag. `written` is conservative: once the first socket write
    /// returns, the bytes are presumed on the wire.
    pub fn try_request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, String)],
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, SendError> {
        let body = body.unwrap_or(b"");
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nhost: car-serve\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut request = head.into_bytes();
        request.extend_from_slice(body);

        let mut written = false;
        let mut remaining: &[u8] = &request;
        while !remaining.is_empty() {
            match self.writer.write(remaining) {
                Ok(0) => {
                    return Err(SendError {
                        written,
                        error: io::Error::new(
                            io::ErrorKind::WriteZero,
                            "connection closed mid-request",
                        ),
                    })
                }
                Ok(n) => {
                    written = true;
                    remaining = remaining.get(n..).unwrap_or(&[]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(SendError { written, error: e }),
            }
        }
        if let Err(error) = self.writer.flush() {
            return Err(SendError { written: true, error });
        }
        read_response(&mut self.reader)
            .map_err(|error| SendError { written: true, error })
    }
}

/// A failed request exchange, recording whether any request bytes may
/// have reached the wire. A non-idempotent request that failed with
/// `written == true` must not be blindly retried: the server may
/// already have executed it.
#[derive(Debug)]
pub struct SendError {
    /// `true` once any byte of the request may have been written.
    pub written: bool,
    /// The underlying transport error.
    pub error: io::Error,
}

/// Coarse class of a failed exchange, for load generators and
/// dashboards that bucket failures instead of lumping them into one
/// "error" count. A timed-out connect counts as [`Timeout`], not
/// [`Connect`]: the interesting split is "nothing listening" versus
/// "something too slow".
///
/// [`Timeout`]: FailureClass::Timeout
/// [`Connect`]: FailureClass::Connect
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// A connect, read, or write deadline expired.
    Timeout,
    /// The TCP connection could not be established (refused,
    /// unreachable, no address).
    Connect,
    /// Any other transport failure: reset mid-exchange, EOF before the
    /// status line, malformed response.
    Transport,
}

impl FailureClass {
    /// Classifies an I/O error, given whether it happened while still
    /// establishing the connection.
    fn of(error: &io::Error, connecting: bool) -> FailureClass {
        match error.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => FailureClass::Timeout,
            _ if connecting => FailureClass::Connect,
            _ => FailureClass::Transport,
        }
    }
}

/// Retry configuration for [`RetryingClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try exactly once).
    pub max_retries: u32,
    /// Per-request connect/read/write timeout.
    pub timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 4, timeout: Duration::from_millis(5_000) }
    }
}

/// Exponential backoff with jitter before retry `attempt` (1-based):
/// 50ms doubling per attempt, capped at 2s, plus up to 50% jitter so
/// concurrent callers don't retry in lockstep against a recovering
/// daemon. `jitter_state` is advanced in place (xorshift64*), keeping
/// the schedule deterministic for a given seed.
pub fn backoff_delay(attempt: u32, jitter_state: &mut u64) -> Duration {
    let base_ms = (50u64 << attempt.saturating_sub(1).min(6)).min(2_000);
    let mut x = (*jitter_state).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *jitter_state = x;
    let jitter = x % ((base_ms >> 1).max(1));
    Duration::from_millis(base_ms + jitter)
}

/// A keep-alive connection with retry, backoff, and reconnection.
///
/// Retries on transport errors (dropping and re-establishing the
/// connection) and on `503` responses (daemon recovering, shedding
/// load, or restarting — the connection is kept). Any other response,
/// including 4xx, is returned as-is: those are answers, not failures.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    jitter_state: u64,
    retries: u64,
    last_failure: Option<FailureClass>,
}

impl RetryingClient {
    /// Creates a client for `addr`; no connection is made until the
    /// first request. The jitter seed is derived from the address so
    /// distinct clients de-synchronize naturally.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryingClient {
        let addr = addr.into();
        let seed = addr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        Self::with_seed(addr, policy, seed)
    }

    /// Creates a client with an explicit jitter seed (deterministic
    /// backoff schedules for tests and load generators).
    pub fn with_seed(
        addr: impl Into<String>,
        policy: RetryPolicy,
        seed: u64,
    ) -> RetryingClient {
        RetryingClient {
            addr: addr.into(),
            policy,
            conn: None,
            jitter_state: seed.max(1),
            retries: 0,
            last_failure: None,
        }
    }

    /// The address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Total retries performed since construction.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The class of the transport failure that ended the most recent
    /// request, when that request returned `None`. `None` after a
    /// request that produced a response (even a 5xx — that is an
    /// answer, not a transport failure).
    pub fn last_failure(&self) -> Option<FailureClass> {
        self.last_failure
    }

    /// Drops the current connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Whether a method is safe to retry after its bytes may have
    /// reached the wire.
    fn idempotent(method: &str) -> bool {
        matches!(method, "GET" | "HEAD")
    }

    /// Issues one request, retrying per the policy. Returns the final
    /// response — possibly a `503` that outlasted every retry — or
    /// `None` when every attempt failed at the transport level.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> Option<ClientResponse> {
        self.request_with(method, target, &[], body, None)
    }

    /// Issues one request with extra headers and an optional hard
    /// deadline, retrying per the policy.
    ///
    /// Retries are **idempotency-aware**: GET/HEAD retry on any
    /// transport failure, but a non-idempotent request (e.g. an ingest
    /// POST) is only retried when the failure happened before any
    /// request byte reached the wire — otherwise the server may have
    /// executed it, and a blind retry could apply it twice. Retryable
    /// `503` answers are a server-side promise that nothing was
    /// processed, so they retry for every method.
    ///
    /// A `deadline` caps the whole exchange: each attempt's socket
    /// timeout shrinks to the remaining budget and no attempt (or
    /// backoff sleep) starts past it.
    pub fn request_with(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, String)],
        body: Option<&[u8]>,
        deadline: Option<Instant>,
    ) -> Option<ClientResponse> {
        self.last_failure = None;
        let mut last_response = None;
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                let delay = backoff_delay(attempt, &mut self.jitter_state);
                if deadline.is_some_and(|d| Instant::now() + delay >= d) {
                    break;
                }
                self.retries += 1;
                std::thread::sleep(delay);
            }
            let timeout = match deadline {
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    self.policy.timeout.min(remaining)
                }
                None => self.policy.timeout,
            };
            if self.conn.is_none() {
                match Client::connect_with_timeout(&self.addr, timeout) {
                    Ok(conn) => self.conn = Some(conn),
                    Err(e) => {
                        self.last_failure = Some(FailureClass::of(&e, true));
                    }
                }
            } else if deadline.is_some() {
                // A reused connection still carries the policy timeout;
                // shrink it to the remaining budget.
                if self.conn.as_ref().is_some_and(|c| c.set_io_timeout(timeout).is_err())
                {
                    self.conn = None;
                    continue;
                }
            }
            let Some(conn) = self.conn.as_mut() else { continue };
            match conn.try_request(method, target, headers, body) {
                Ok(resp) if resp.status == 408 => {
                    // A 408 on a reused keep-alive connection is almost
                    // always the server's parting shot after an *idle*
                    // timeout, buffered before it closed — it answers
                    // the wait, not the request just written. Either
                    // way a 408 promises the request was never
                    // executed, so drop the poisoned connection and
                    // retry on a fresh one (safe for any method).
                    self.conn = None;
                    last_response = Some(resp);
                }
                Ok(resp) if resp.status == 503 => {
                    // Retryable daemon answer (recovering / backpressure
                    // / shutting down); keep the connection, back off,
                    // retry.
                    last_response = Some(resp);
                }
                Ok(resp) => {
                    self.last_failure = None;
                    return Some(resp);
                }
                Err(e) => {
                    // Connection reset (daemon died?): drop it and retry
                    // with a fresh connection after backoff — unless the
                    // request may have been executed.
                    self.conn = None;
                    self.last_failure = Some(FailureClass::of(&e.error, false));
                    if e.written && !Self::idempotent(method) {
                        return None;
                    }
                }
            }
        }
        if last_response.is_some() {
            // The caller gets an answer (a 503 that outlasted the
            // retries); transport hiccups along the way are history.
            self.last_failure = None;
        }
        last_response
    }

    /// Issues one request without any retry (a single attempt over the
    /// existing or a fresh connection). Used for probes where the caller
    /// owns the retry cadence.
    pub fn request_once(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> Option<ClientResponse> {
        self.request_once_with(method, target, &[], body)
    }

    /// [`request_once`](Self::request_once) with extra headers — the
    /// shard router's health probes use it to stamp trace context on
    /// probe traffic without engaging the retry machinery.
    pub fn request_once_with(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, String)],
        body: Option<&[u8]>,
    ) -> Option<ClientResponse> {
        if self.conn.is_none() {
            self.conn =
                Client::connect_with_timeout(&self.addr, self.policy.timeout).ok();
        }
        let conn = self.conn.as_mut()?;
        match conn.try_request(method, target, headers, body) {
            Ok(resp) => {
                if resp.status == 408 {
                    // Stale keep-alive artifact (see `request_with`):
                    // the server closed after answering its idle wait.
                    // Reconnect on the next call.
                    self.conn = None;
                }
                Some(resp)
            }
            Err(_) => {
                self.conn = None;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                    content-length: 2\r\n\r\n{}";
        let resp = read_response(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_text(), "{}");
    }

    #[test]
    fn rejects_garbage_status_line() {
        let raw = b"garbage\r\n\r\n";
        assert!(read_response(&mut Cursor::new(raw.to_vec())).is_err());
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let raw = b"HTTP/1.1 204 No Content\r\n\r\n";
        let resp = read_response(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(resp.status, 204);
        assert!(resp.body.is_empty());
    }

    /// A server whose idle timeout fired writes a courtesy `408` and
    /// closes; that response sits buffered in the client's pooled
    /// connection and would otherwise be read as the answer to the
    /// *next* request. The retrying client must discard it, reconnect,
    /// and return the real answer.
    #[test]
    fn stale_keep_alive_408_is_retried_on_a_fresh_connection() {
        use std::io::{Read, Write};
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Connection 1: the idle-timeout parting shot — answer 408
            // before any request arrives, then close.
            let (mut first, _) = listener.accept().unwrap();
            first
                .write_all(
                    b"HTTP/1.1 408 Request Timeout\r\nconnection: close\r\n\
                      content-length: 0\r\n\r\n",
                )
                .unwrap();
            drop(first);
            // Connection 2: a real exchange.
            let (mut second, _) = listener.accept().unwrap();
            let mut scratch = [0u8; 1024];
            let _ = second.read(&mut scratch).unwrap();
            second.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok").unwrap();
        });

        let policy = RetryPolicy { max_retries: 2, timeout: Duration::from_secs(5) };
        let mut client = RetryingClient::with_seed(&addr, policy, 1);
        let resp = client.request("GET", "/v1/health", None).expect("answered");
        assert_eq!(resp.status, 200, "the stale 408 must not be the answer");
        assert_eq!(resp.body_text(), "ok");
        server.join().unwrap();
    }
}
