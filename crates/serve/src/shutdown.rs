//! SIGINT → graceful-shutdown bridge.
//!
//! The daemon exits cleanly on Ctrl-C: a signal handler sets a process-
//! wide flag, and the accept loop polls it between accepts. The handler
//! body is a single relaxed atomic store — async-signal-safe by
//! construction.
//!
//! This is the only module in the workspace with unsafe code: installing
//! the handler goes through libc's `signal(2)` directly (no external
//! crates are available in this build environment). Non-Unix targets get
//! a no-op install and a flag that can only be set programmatically.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or injected via
/// [`raise`]).
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::Relaxed)
}

/// Sets the flag as if a signal had arrived (tests, embedders).
pub fn raise() {
    SIGNALLED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn on_signal(_signum: c_int) {
        super::SIGNALLED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    /// Installs the SIGINT/SIGTERM handler. Idempotent.
    pub fn install() {
        // SAFETY: `signal` is installing an async-signal-safe handler
        // (one relaxed atomic store, no allocation, no locks) for
        // signals whose default disposition would kill the process
        // anyway. The handler stays valid for the program's lifetime
        // (it is a static fn item).
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal support on this target; shutdown still works via the
    /// endpoint and [`super::raise`].
    pub fn install() {}
}

/// Installs handlers so SIGINT/SIGTERM trigger graceful shutdown.
pub fn install_signal_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_sets_flag() {
        // Note: the flag is process-wide; this test is the only one
        // allowed to set it (the server tests use AppState shutdown).
        assert!(!signalled());
        raise();
        assert!(signalled());
    }

    #[test]
    fn install_is_safe_to_call() {
        install_signal_handlers();
        install_signal_handlers();
    }
}
